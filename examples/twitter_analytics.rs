//! Streaming analytics over a synthetic Twitter stream: extract every
//! shared URL and tweet text from a multi-megabyte record sequence, the
//! workload class that motivates the paper's introduction.
//!
//! Run with: `cargo run --release --example twitter_analytics [mib]`

use std::time::Instant;

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonski::JsonSki;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = GenConfig {
        target_bytes: mib * 1024 * 1024,
        seed: 2022,
    };
    println!("generating ~{mib} MiB of tweet records...");
    let data = Dataset::Tt.generate_small(&cfg);
    println!(
        "{} records, {:.1} MiB",
        data.records().len(),
        data.bytes().len() as f64 / (1024.0 * 1024.0)
    );

    // TT1: every URL shared in the stream.
    let urls = JsonSki::compile("$[*].en.urls[*].url")?;
    let start = Instant::now();
    let mut url_count = 0usize;
    let mut sample = None;
    for record in data.iter() {
        urls.run(record, |m| {
            if sample.is_none() {
                // Typed on-demand decoding: unquotes and unescapes only
                // this one match, never the rest of the stream.
                sample = m.value().as_str().ok().map(|s| s.into_owned());
            }
            url_count += 1;
        })?;
    }
    let elapsed = start.elapsed();
    let gbps = data.bytes().len() as f64 / elapsed.as_secs_f64() / 1e9;
    println!(
        "TT1 ($[*].en.urls[*].url): {url_count} urls in {:.3}s ({gbps:.2} GB/s); e.g. {}",
        elapsed.as_secs_f64(),
        sample.as_deref().unwrap_or("-")
    );

    // TT2: every tweet text, with aggregate word count as the "analytics".
    let texts = JsonSki::compile("$[*].text")?;
    let start = Instant::now();
    let mut tweets = 0usize;
    let mut words = 0usize;
    for record in data.iter() {
        texts.run(record, |m| {
            tweets += 1;
            words += m.bytes().split(|&b| b == b' ').count();
        })?;
    }
    let elapsed = start.elapsed();
    println!(
        "TT2 ($[*].text): {tweets} tweets, {words} words, in {:.3}s ({:.2} GB/s)",
        elapsed.as_secs_f64(),
        data.bytes().len() as f64 / elapsed.as_secs_f64() / 1e9
    );
    Ok(())
}
