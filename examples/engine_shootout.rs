//! Run all five engines (paper Table 2) on one dataset/query pair and
//! compare wall-clock time — a miniature, single-case Figure 10.
//!
//! Run with: `cargo run --release --example engine_shootout [QUERY_ID] [mib]`
//! where `QUERY_ID` is one of TT1 TT2 BB1 BB2 GMD1 GMD2 NSPL1 NSPL2 WM1 WM2
//! WP1 WP2 (default BB1).

use std::time::Instant;

use jsonski_repro::datagen::GenConfig;
use jsonski_repro::harness::engines::all_engines;
use jsonski_repro::harness::scenario::cases;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = std::env::args().nth(1).unwrap_or_else(|| "BB1".into());
    let mib: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let case = cases()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("unknown query id {id}; try BB1, TT1, WP2, ..."))?;
    let cfg = GenConfig {
        target_bytes: mib * 1024 * 1024,
        seed: 42,
    };
    println!(
        "dataset {} (~{mib} MiB, single record), query {} = {}",
        case.dataset.name(),
        case.id,
        case.query
    );
    let data = case.dataset.generate_large(&cfg);
    let record = data.bytes();

    let mut baseline = None;
    for engine in all_engines(&case.path) {
        let start = Instant::now();
        let n = engine
            .count(record)
            .map_err(|e| format!("{}: {e}", engine.name()))?;
        let elapsed = start.elapsed().as_secs_f64();
        match baseline {
            None => baseline = Some((n, elapsed)),
            Some((n0, _)) => assert_eq!(n, n0, "{} disagrees", engine.name()),
        }
        println!(
            "  {:<10} {:>9.4}s  ({} matches, {:>6.2} GB/s)",
            engine.name(),
            elapsed,
            n,
            record.len() as f64 / elapsed / 1e9
        );
    }
    Ok(())
}
