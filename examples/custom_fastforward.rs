//! Using the fast-forward functions directly, outside the JSONPath engine.
//!
//! The paper notes that "developers may exploit these fast-forward functions
//! for more opportunities in their own JSON analytics". This example builds
//! a tiny custom analytic with the raw G1/G2 primitives: count the top-level
//! records of a huge array and extract only the byte-size of each, without
//! ever tokenizing record contents.
//!
//! Run with: `cargo run --release --example custom_fastforward [mib]`

use std::time::Instant;

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonski::cursor::Cursor;
use jsonski_repro::jsonski::fastforward::{go_over_ary, go_over_obj, go_over_primitive};
use jsonski_repro::jsonski::{FastForwardStats, Group, StreamError};

/// Walks a top-level JSON array, fast-forwarding over every element and
/// reporting per-element byte sizes — a "record sizer" that never parses
/// record internals.
fn size_elements(input: &[u8]) -> Result<(usize, usize, FastForwardStats), StreamError> {
    let mut cur = Cursor::new(input);
    let mut stats = FastForwardStats::new();
    stats.add_total(input.len() as u64);
    cur.expect(b'[', "`[`")?;
    let mut count = 0usize;
    let mut largest = 0usize;
    loop {
        let t = cur.peek_token("element or `]`")?;
        if t == b']' {
            break;
        }
        let (start, end) = match t {
            b'{' => go_over_obj(&mut cur, &mut stats, Group::G2)?,
            b'[' => go_over_ary(&mut cur, &mut stats, Group::G2)?,
            _ => go_over_primitive(&mut cur, &mut stats, Group::G2)?,
        };
        count += 1;
        largest = largest.max(end - start);
        match cur.peek_token("`,` or `]`")? {
            b',' => cur.bump(),
            b']' => break,
            _ => unreachable!("delimiter"),
        }
    }
    Ok((count, largest, stats))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let data = Dataset::Wp.generate_large(&GenConfig {
        target_bytes: mib * 1024 * 1024,
        seed: 99,
    });
    let input = data.bytes();
    let start = Instant::now();
    let (count, largest, stats) = size_elements(input)?;
    let elapsed = start.elapsed();
    println!(
        "sized {count} records ({largest} B largest) from {:.1} MiB in {:.3}s ({:.2} GB/s)",
        input.len() as f64 / (1024.0 * 1024.0),
        elapsed.as_secs_f64(),
        input.len() as f64 / elapsed.as_secs_f64() / 1e9,
    );
    println!(
        "{:.2}% of the stream was fast-forwarded, never tokenized",
        100.0 * stats.overall_ratio()
    );
    Ok(())
}
