//! Range queries over a product catalog (the paper's BB1 workload):
//! extract the second and third category-path entries of every product
//! with `$.pd[*].cp[1:3].id`, exercising the G5 index-range fast-forward.
//!
//! Run with: `cargo run --release --example product_catalog [mib]`

use std::time::Instant;

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonski::{Group, JsonSki};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = GenConfig {
        target_bytes: mib * 1024 * 1024,
        seed: 7_2022,
    };
    println!("generating ~{mib} MiB Best-Buy-like catalog (single record)...");
    let data = Dataset::Bb.generate_large(&cfg);
    let record = data.bytes();

    let query = JsonSki::compile("$.pd[*].cp[1:3].id")?;
    let start = Instant::now();
    let mut ids = 0usize;
    let mut id_chars = 0usize;
    // Matches are lazy handles: `as_str` decodes the span on demand, and
    // these escape-free category ids borrow straight from the input —
    // no allocation per match.
    let stats = query.run(record, |m| {
        ids += 1;
        id_chars += m.value().as_str().map_or(0, |s| s.chars().count());
    })?;
    let elapsed = start.elapsed();

    println!(
        "BB1: {ids} category ids ({id_chars} chars) from {:.1} MiB in {:.3}s ({:.2} GB/s)",
        record.len() as f64 / (1024.0 * 1024.0),
        elapsed.as_secs_f64(),
        record.len() as f64 / elapsed.as_secs_f64() / 1e9,
    );
    println!(
        "fast-forwarded: G1 {:.1}% | G4 {:.1}% | G5 {:.1}% | overall {:.2}%",
        100.0 * stats.ratio(Group::G1),
        100.0 * stats.ratio(Group::G4),
        100.0 * stats.ratio(Group::G5),
        100.0 * stats.overall_ratio(),
    );

    // Cross-check against the DOM baseline (slower, but validates counts).
    let start = Instant::now();
    let dom = jsonski_repro::domparser::Dom::parse(record)?;
    let dom_ids = dom.count(&"$.pd[*].cp[1:3].id".parse()?);
    println!(
        "DOM baseline agrees: {dom_ids} ids (in {:.3}s — the preprocessing tax)",
        start.elapsed().as_secs_f64()
    );
    assert_eq!(ids, dom_ids);
    Ok(())
}
