//! Quickstart: evaluate the paper's running example (`$.place.name` over a
//! geo-referenced tweet, Figure 1) and show the fast-forward accounting.
//!
//! Run with: `cargo run --example quickstart`

use jsonski_repro::jsonski::{Group, JsonSki};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tweet = br#"{
        "coordinates": [40.74118764, -73.9998279],
        "user": {"id": 6253282},
        "place": {
            "name": "Manhattan",
            "bounding_box": {
                "type": "Polygon",
                "pos": [[-74.026675, 40.683935], [-74.026675, 40.877483],
                        [-73.910408, 40.877483], [-73.910408, 40.683935]]
            }
        }
    }"#;

    let query = JsonSki::compile("$.place.name")?;
    println!("query: {}", query.path());

    let mut matches = Vec::new();
    let stats = query.run(tweet, |m| {
        matches.push(String::from_utf8_lossy(m).into_owned())
    })?;

    println!("matches: {matches:?}");
    println!();
    println!("fast-forward accounting (paper Table 6 metric):");
    for (name, g) in [
        ("G1 (to type-matched attr/elem)", Group::G1),
        ("G2 (over unmatched value)     ", Group::G2),
        ("G3 (over value, with output)  ", Group::G3),
        ("G4 (to end of object)         ", Group::G4),
        ("G5 (over out-of-range elems)  ", Group::G5),
    ] {
        println!(
            "  {name}: {:6} chars ({:5.2}%)",
            stats.skipped(g),
            100.0 * stats.ratio(g)
        );
    }
    println!(
        "  overall: {:.2}% of {} bytes never tokenized",
        100.0 * stats.overall_ratio(),
        stats.total()
    );
    Ok(())
}
