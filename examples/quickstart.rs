//! Quickstart: evaluate the paper's running example (`$.place.name` over a
//! geo-referenced tweet, Figure 1), decode the match on demand, and show
//! the fast-forward accounting.
//!
//! Run with: `cargo run --example quickstart`

use jsonski_repro::jsonski::{get, Group, JsonSki};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tweet = br#"{
        "coordinates": [40.74118764, -73.9998279],
        "user": {"id": 6253282},
        "place": {
            "name": "Manhattan",
            "bounding_box": {
                "type": "Polygon",
                "pos": [[-74.026675, 40.683935], [-74.026675, 40.877483],
                        [-73.910408, 40.877483], [-73.910408, 40.683935]]
            }
        }
    }"#;

    let query = JsonSki::compile("$.place.name")?;
    println!("query: {}", query.path());

    // Matches arrive as lazy handles over the input buffer: `bytes()` is
    // the raw span (zero-copy), `value().as_str()` decodes on demand.
    let mut matches = Vec::new();
    let stats = query.run(tweet, |m| {
        matches.push(m.value().as_str().map(|s| s.into_owned()));
    })?;
    println!("matches: {matches:?}");

    // Point lookups skip the query language entirely: a JSON pointer walks
    // straight to the value in a single pass, fast-forwarding siblings.
    let id = get(tweet, "/user/id")?.expect("user id present");
    println!("user id: {:?}", id.as_i64());

    println!();
    println!("fast-forward accounting (paper Table 6 metric):");
    for (name, g) in [
        ("G1 (to type-matched attr/elem)", Group::G1),
        ("G2 (over unmatched value)     ", Group::G2),
        ("G3 (over value, with output)  ", Group::G3),
        ("G4 (to end of object)         ", Group::G4),
        ("G5 (over out-of-range elems)  ", Group::G5),
    ] {
        println!(
            "  {name}: {:6} chars ({:5.2}%)",
            stats.skipped(g),
            100.0 * stats.ratio(g)
        );
    }
    println!(
        "  overall: {:.2}% of {} bytes never tokenized",
        100.0 * stats.overall_ratio(),
        stats.total()
    );
    Ok(())
}
