#!/usr/bin/env bash
# Regenerates every paper table/figure into results/ (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --workspace
mkdir -p results
for b in table4 fig10 fig11 fig12 fig13 fig14 table6; do
  echo "== $b =="
  ./target/release/$b | tee results/$b.txt
done
