//! RFC 9535-style compliance suite: checked-in `(query, document,
//! expected match stream)` triples from `tests/corpus/jsonpath/*.cases`,
//! replayed table-driven against all five engines in both validation
//! modes. JPStream — the automaton that evaluates descendant and filter
//! steps natively — doubles as the in-matrix oracle: every engine must
//! equal the checked-in stream, so every engine must equal JPStream.
//!
//! Corpus format: see `tests/corpus/jsonpath/README.md`.

use std::ops::ControlFlow;

use jsonski_repro::jsonpath::Path;
use jsonski_repro::jsonski::{
    EngineConfig, Evaluate, Match, MatchSink, RecordOutcome, ValidationMode,
};

/// One corpus triple.
#[derive(Debug)]
struct Case {
    file: String,
    line: usize,
    query: String,
    doc: Vec<u8>,
    expected: Vec<Vec<u8>>,
}

/// Parses one `.cases` file: blocks of `query:` / `doc:` / `match:` lines
/// separated by blank lines, `#` comments ignored.
fn parse_cases(file: &str, text: &str) -> Vec<Case> {
    let mut out = Vec::new();
    let mut cur: Option<Case> = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            if let Some(c) = cur.take() {
                out.push(c);
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(": ")
            .or_else(|| line.split_once(':').map(|(k, _)| (k, "")))
            .unwrap_or_else(|| panic!("{file}:{ln}: not a `key: value` line: {line:?}"));
        match key {
            "query" => {
                assert!(cur.is_none(), "{file}:{ln}: `query:` inside an open case");
                cur = Some(Case {
                    file: file.to_string(),
                    line: ln,
                    query: value.to_string(),
                    doc: Vec::new(),
                    expected: Vec::new(),
                });
            }
            "doc" => {
                let c = cur.as_mut().unwrap_or_else(|| {
                    panic!("{file}:{ln}: `doc:` before `query:`");
                });
                assert!(c.doc.is_empty(), "{file}:{ln}: second `doc:` in one case");
                c.doc = value.as_bytes().to_vec();
            }
            "match" => {
                let c = cur.as_mut().unwrap_or_else(|| {
                    panic!("{file}:{ln}: `match:` before `query:`");
                });
                c.expected.push(value.as_bytes().to_vec());
            }
            other => panic!("{file}:{ln}: unknown key {other:?}"),
        }
    }
    out.extend(cur);
    for c in &out {
        assert!(
            !c.doc.is_empty(),
            "{}:{}: case has no `doc:` line",
            c.file,
            c.line
        );
    }
    out
}

fn load_corpus() -> Vec<Case> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/jsonpath");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus/jsonpath missing")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cases"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "compliance corpus too small: {files:?}");
    let mut cases = Vec::new();
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        cases.extend(parse_cases(&name, &text));
    }
    assert!(cases.len() >= 60, "only {} corpus cases", cases.len());
    cases
}

#[derive(Default)]
struct Recorder(Vec<Vec<u8>>);

impl MatchSink for Recorder {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.0.push(m.bytes().to_vec());
        ControlFlow::Continue(())
    }
}

/// All ten engine instances: the five engines, permissive and Strict.
fn engines(path: &Path) -> Vec<(String, Box<dyn Evaluate>)> {
    let mut out: Vec<(String, Box<dyn Evaluate>)> = Vec::new();
    let strict = ValidationMode::Strict;
    for mode in ["permissive", "strict"] {
        let s = mode == "strict";
        let ski = if s {
            jsonski_repro::jsonski::JsonSki::new(path.clone())
                .with_config(EngineConfig::builder().strict().build())
        } else {
            jsonski_repro::jsonski::JsonSki::new(path.clone())
        };
        out.push((format!("JSONSki/{mode}"), Box::new(ski)));
        let jp = jsonski_repro::jpstream::JpStream::new(path.clone());
        out.push((
            format!("JPStream/{mode}"),
            Box::new(if s { jp.with_validation(strict) } else { jp }),
        ));
        let dom = jsonski_repro::domparser::DomQuery::new(path.clone());
        out.push((
            format!("DOM/{mode}"),
            Box::new(if s { dom.with_validation(strict) } else { dom }),
        ));
        let tape = jsonski_repro::tapeparser::TapeQuery::new(path.clone());
        out.push((
            format!("Tape/{mode}"),
            Box::new(if s {
                tape.with_validation(strict)
            } else {
                tape
            }),
        ));
        let pison = jsonski_repro::pison::PisonQuery::new(path.clone());
        out.push((
            format!("Pison/{mode}"),
            Box::new(if s {
                pison.with_validation(strict)
            } else {
                pison
            }),
        ));
    }
    out
}

#[test]
fn compliance_corpus_passes_on_all_engines() {
    for case in load_corpus() {
        let ctx = format!("{}:{} {}", case.file, case.line, case.query);
        let path: Path = case
            .query
            .parse()
            .unwrap_or_else(|e| panic!("{ctx}: query does not parse: {e}"));
        for (name, engine) in engines(&path) {
            let mut sink = Recorder::default();
            match engine.evaluate(&case.doc, 0, &mut sink) {
                RecordOutcome::Complete { matches } => {
                    assert_eq!(matches, sink.0.len(), "{ctx}: {name} count mismatch");
                }
                other => panic!("{ctx}: {name} returned {other:?}"),
            }
            assert_eq!(
                sink.0,
                case.expected,
                "{ctx}: {name} stream diverges from corpus\n got: {:?}\nwant: {:?}",
                sink.0
                    .iter()
                    .map(|b| String::from_utf8_lossy(b).into_owned())
                    .collect::<Vec<_>>(),
                case.expected
                    .iter()
                    .map(|b| String::from_utf8_lossy(b).into_owned())
                    .collect::<Vec<_>>(),
            );
        }
    }
}

#[test]
fn compliance_corpus_is_well_formed() {
    // Every checked-in document must itself be valid JSON (the suite tests
    // query semantics, not error recovery) and every expected match must
    // appear as a byte span of its document.
    for case in load_corpus() {
        let ctx = format!("{}:{} {}", case.file, case.line, case.query);
        assert_eq!(
            jsonski_repro::jsonski::validate_record(&case.doc),
            None,
            "{ctx}: corpus document is not valid JSON"
        );
        for m in &case.expected {
            assert!(
                case.doc
                    .windows(m.len().min(case.doc.len()).max(1))
                    .any(|w| w == &m[..]),
                "{ctx}: expected match {:?} is not a span of the document",
                String::from_utf8_lossy(m)
            );
        }
    }
}
