//! Cross-engine differential conformance suite over the sink API.
//!
//! Where `cross_engine.rs` compares match *counts* through each engine's
//! native interface, this suite drives all five engines through the unified
//! [`Evaluate`] sink API and asserts the full match *sequences* — every
//! `(record index, match bytes)` pair, byte for byte — are identical. It
//! covers every dataset family crossed with its paper queries (the twelve
//! queries of Table 5) plus hand-written edge-case documents, and pins the
//! instrumented path (`evaluate_metered`) to the plain one so metrics can
//! never change what a query matches.

use std::ops::ControlFlow;

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonpath::Path;
use jsonski_repro::jsonski::{
    EngineConfig, EngineError, Evaluate, InvalidReason, Kernel, Match, MatchSink, Metrics,
    RecordOutcome, ValidationMode,
};

/// One observed match: record index, normalized in-record span, and the
/// match bytes. Comparing the full triple across engines pins not just
/// *what* each engine matched but *where* it says the match lives — the
/// span-normalization contract centralized in `Match::new`.
type Observed = (u64, (usize, usize), Vec<u8>);

/// Sink that records the full match stream.
#[derive(Default)]
struct Recorder(Vec<Observed>);

impl MatchSink for Recorder {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        let (s, e) = m.span();
        // The span must address the delivered bytes within the record —
        // true for every engine because `Match::new` is the single
        // normalization point.
        assert_eq!(&m.record()[s..e], m.bytes(), "span disagrees with bytes");
        self.0.push((m.record_idx(), (s, e), m.bytes().to_vec()));
        ControlFlow::Continue(())
    }
}

/// The five engines of the paper's evaluation, behind the unified API.
fn engines(path: &Path) -> Vec<Box<dyn Evaluate>> {
    vec![
        Box::new(jsonski_repro::jsonski::JsonSki::new(path.clone())),
        Box::new(jsonski_repro::jpstream::JpStream::new(path.clone())),
        Box::new(jsonski_repro::domparser::DomQuery::new(path.clone())),
        Box::new(jsonski_repro::tapeparser::TapeQuery::new(path.clone())),
        Box::new(jsonski_repro::pison::PisonQuery::new(path.clone())),
    ]
}

/// The same five engines with Strict input validation enabled.
fn strict_engines(path: &Path) -> Vec<Box<dyn Evaluate>> {
    let strict = ValidationMode::Strict;
    vec![
        Box::new(
            jsonski_repro::jsonski::JsonSki::new(path.clone())
                .with_config(EngineConfig::builder().strict().build()),
        ),
        Box::new(jsonski_repro::jpstream::JpStream::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::domparser::DomQuery::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::tapeparser::TapeQuery::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::pison::PisonQuery::new(path.clone()).with_validation(strict)),
    ]
}

/// Runs `records` through one engine via the sink API, panicking on any
/// record failure (all conformance inputs are well-formed).
fn match_stream(engine: &dyn Evaluate, records: &[&[u8]], ctx: &str) -> Vec<Observed> {
    let mut sink = Recorder::default();
    for (i, record) in records.iter().enumerate() {
        match engine.evaluate(record, i as u64, &mut sink) {
            RecordOutcome::Complete { .. } => {}
            other => panic!("{ctx}: {} returned {other:?} on record {i}", engine.name()),
        }
    }
    sink.0
}

/// Asserts all five engines produce the identical match sequence for
/// `query` over `records`; returns that agreed sequence.
fn assert_conformance(records: &[&[u8]], query: &str, ctx: &str) -> Vec<Observed> {
    let path: Path = query
        .parse()
        .unwrap_or_else(|e| panic!("{ctx}: {query}: {e}"));
    let engines = engines(&path);
    let reference = match_stream(engines[0].as_ref(), records, ctx);
    for e in &engines[1..] {
        let got = match_stream(e.as_ref(), records, ctx);
        assert_eq!(
            got,
            reference,
            "{ctx}: {} disagrees with {} on {query}",
            e.name(),
            engines[0].name()
        );
    }
    reference
}

#[test]
fn paper_queries_agree_on_generated_record_streams() {
    // Every dataset family crossed with its two paper queries, evaluated
    // record by record over the small-record corpus form.
    let cfg = GenConfig {
        target_bytes: 64 * 1024,
        seed: 4242,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        let records: Vec<&[u8]> = data.iter().collect();
        assert!(
            records.len() > 1,
            "{}: want a multi-record corpus",
            ds.name()
        );
        for (id, query) in ds.queries() {
            if ds.large_only_queries().contains(&id) {
                continue;
            }
            assert_conformance(&records, query, id);
        }
    }
}

#[test]
fn paper_queries_agree_on_generated_large_records() {
    // The same twelve queries against the single-large-record form, which
    // exercises the deep skips (G1/G2) the small form cannot.
    let cfg = GenConfig {
        target_bytes: 48 * 1024,
        seed: 99,
    };
    for ds in Dataset::all() {
        let data = ds.generate_large(&cfg);
        let records = [data.bytes()];
        for (id, query) in ds.queries() {
            let agreed = assert_conformance(&records, query, id);
            // The headline per-record queries must find something even at
            // this tiny scale (same guarantee cross_engine.rs relies on).
            if matches!(id, "TT2" | "BB1" | "GMD1" | "NSPL2" | "WM2") {
                assert!(!agreed.is_empty(), "{id} found nothing");
            }
        }
    }
}

#[test]
fn edge_documents_agree() {
    // Hand-written documents targeting the syntactic corners that break
    // structural-index and streaming parsers differently: escaped quotes,
    // deep nesting, empty containers, and multibyte UTF-8 keys.
    let escaped: &[u8] =
        r#"{"s": "he said \"hi\"", "t": "brace } quote \" comma ,", "a": [1, "\\\"", 3], "u": "é\\"}"#
            .as_bytes();
    let mut deep = String::new();
    for _ in 0..24 {
        deep.push_str("{\"d\": [");
    }
    deep.push_str("42");
    for _ in 0..24 {
        deep.push_str("]}");
    }
    let empties: &[u8] = br#"{"a": [], "b": {}, "c": [[], {}, [{}]], "d": [0], "e": {"f": []}}"#;
    let unicode = "{\"café\": {\"日本語\": [1, 2]}, \"χ\": \"ψ\", \"emoji🦀\": [true]}".as_bytes();
    let cases: &[(&[u8], &[&str])] = &[
        (escaped, &["$.s", "$.t", "$.a[*]", "$.a[1]", "$.u", "$.*"]),
        (
            deep.as_bytes(),
            &[
                "$.d[0].d[0].d",
                "$.d[*]",
                "$.d[0].d[0].d[0].d[0].d[0].d[0].d[0].d",
            ],
        ),
        (
            empties,
            &[
                "$.a[*]",
                "$.b.x",
                "$.c[*]",
                "$.c[2][*]",
                "$.d[*]",
                "$.e.f",
                "$.*",
            ],
        ),
        (
            unicode,
            &[
                "$['café']['日本語'][*]",
                "$['café']['日本語']",
                "$['χ']",
                "$['emoji🦀'][0]",
                "$.*",
            ],
        ),
    ];
    for (doc, queries) in cases {
        for query in *queries {
            assert_conformance(&[doc], query, "edge");
        }
    }
}

#[test]
fn multi_record_edge_stream_agrees() {
    // A heterogeneous record stream: match record indices must line up
    // across engines, not just the match bytes.
    let records: &[&[u8]] = &[
        br#"{"a": [1, 2]}"#,
        br#"{"b": 0}"#,
        br#"{"a": []}"#,
        br#"{"a": [{"a": [3]}]}"#,
        b"  {\"a\": [4]}  ",
    ];
    let agreed = assert_conformance(records, "$.a[*]", "multi-record");
    let idxs: Vec<u64> = agreed.iter().map(|(i, _, _)| *i).collect();
    assert_eq!(idxs, vec![0, 0, 3, 4]);
}

#[test]
fn strict_engines_agree_on_clean_input() {
    // With Strict validation on, well-formed input must still produce the
    // exact match streams of the permissive engines.
    let cfg = GenConfig {
        target_bytes: 16 * 1024,
        seed: 1313,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        let records: Vec<&[u8]> = data.iter().collect();
        for (id, query) in ds.queries() {
            if ds.large_only_queries().contains(&id) {
                continue;
            }
            let path: Path = query.parse().unwrap();
            let reference = match_stream(engines(&path)[0].as_ref(), &records, id);
            for e in strict_engines(&path) {
                let got = match_stream(e.as_ref(), &records, id);
                assert_eq!(got, reference, "{id}: strict {} diverges", e.name());
            }
        }
    }
}

#[test]
fn rejection_conformance_matrix() {
    // Adversarial documents crossed with all five engines: in Strict mode
    // every engine must reject each document as `EngineError::Invalid` with
    // the *identical* byte offset and reason. The streaming engine discovers
    // these mid-skip; the baselines via the shared pre-pass — agreement here
    // pins the two detection strategies to each other.
    let cases: &[(&[u8], usize, InvalidReason, &str)] = &[
        (
            b"{\"skip\": \"a\xFFb\", \"a\": 1}",
            11,
            InvalidReason::Utf8,
            "bad utf8 lead",
        ),
        (
            b"{\"skip\": \"\xC3(\", \"a\": 1}",
            11,
            InvalidReason::Utf8,
            "bad continuation",
        ),
        (
            b"{\"skip\": \"\xED\xA0\x80\", \"a\": 1}",
            11,
            InvalidReason::Utf8,
            "utf8 surrogate",
        ),
        (
            b"{\"a\": \"\xF0\x9F\x98",
            10,
            InvalidReason::Utf8,
            "truncated 4-byte",
        ),
        (
            br#"{"skip": "\uD83D", "a": 1}"#,
            10,
            InvalidReason::LoneSurrogate,
            "lone high",
        ),
        (
            br#"{"skip": "\uDC00", "a": 1}"#,
            10,
            InvalidReason::LoneSurrogate,
            "lone low",
        ),
        (
            br#"{"skip": "\uD83Dx", "a": 1}"#,
            10,
            InvalidReason::LoneSurrogate,
            "broken pair",
        ),
        (
            br#"{"skip": "\q", "a": 1}"#,
            11,
            InvalidReason::BadEscape,
            "bad escape",
        ),
        (
            br#"{"skip": "\u12g4", "a": 1}"#,
            14,
            InvalidReason::BadUnicodeEscape,
            "bad hex",
        ),
        (
            br#"{"skip": "\u12"#,
            14,
            InvalidReason::UnterminatedString,
            "truncated escape",
        ),
        (
            b"{\"skip\": \"a\x08b\", \"a\": 1}",
            11,
            InvalidReason::ControlChar,
            "raw backspace",
        ),
        (
            br#"{"a": 1} {"b": 2}"#,
            9,
            InvalidReason::TrailingGarbage,
            "second document",
        ),
        (
            br#"{"a": 1}]"#,
            8,
            InvalidReason::TrailingGarbage,
            "closer after root",
        ),
        (
            br#"{"a": [1, 2"#,
            11,
            InvalidReason::Unbalanced,
            "unclosed array",
        ),
        (
            br#"{"a": "unterminated"#,
            19,
            InvalidReason::UnterminatedString,
            "unclosed string",
        ),
    ];
    let path: Path = "$.a".parse().unwrap();
    for &(doc, want_offset, want_reason, ctx) in cases {
        for e in strict_engines(&path) {
            let mut sink = Recorder::default();
            match e.evaluate(doc, 0, &mut sink) {
                RecordOutcome::Failed(EngineError::Invalid { offset, reason }) => {
                    assert_eq!(
                        (offset, reason),
                        (want_offset, want_reason),
                        "{ctx}: {} verdict",
                        e.name()
                    );
                }
                other => panic!("{ctx}: strict {} returned {other:?}", e.name()),
            }
        }
        // The same documents sail through a permissive scan when the fault
        // is inside a skipped span — that contrast is the point of Strict.
        for e in engines(&path) {
            let mut sink = Recorder::default();
            let _ = e.evaluate(doc, 0, &mut sink);
        }
    }
}

#[test]
fn forced_kernels_are_byte_identical_on_conformance_matrix() {
    // `--kernel` forcing (EngineConfig::kernel) must not change a single
    // match byte: every supported kernel replays the full dataset × query
    // matrix and is compared against the auto-selected kernel's stream.
    let cfg = GenConfig {
        target_bytes: 16 * 1024,
        seed: 2024,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        let records: Vec<&[u8]> = data.iter().collect();
        for (id, query) in ds.queries() {
            if ds.large_only_queries().contains(&id) {
                continue;
            }
            let path: Path = query.parse().unwrap();
            let auto = jsonski_repro::jsonski::JsonSki::new(path.clone());
            let reference = match_stream(&auto, &records, id);
            for &k in Kernel::all() {
                if !k.is_supported() {
                    continue;
                }
                for strict in [false, true] {
                    let mut builder = EngineConfig::builder().kernel(Some(k));
                    if strict {
                        builder = builder.strict();
                    }
                    let forced = jsonski_repro::jsonski::JsonSki::new(path.clone())
                        .with_config(builder.build());
                    let got = match_stream(&forced, &records, id);
                    assert_eq!(
                        got, reference,
                        "{id}: kernel {k:?} (strict={strict}) diverges"
                    );
                }
            }
        }
    }
}

/// Extended-grammar conformance rows: descendant `..`, wildcards, unions,
/// and comparison filters. Paired with documents whose shapes make each
/// construct do real work (recursion, duplicate-depth names, nested
/// arrays). Used by both extended-grammar tests below.
fn extended_grammar_matrix() -> Vec<(&'static [u8], Vec<&'static str>)> {
    let store: &[u8] = br#"{"store": {"book": [{"id": 1, "price": 8.95, "tags": ["a"]}, {"id": 2, "price": 12.99, "tags": ["b", "c"]}], "bicycle": {"id": 3, "price": 19.95}}, "id": 0}"#;
    let recursive: &[u8] =
        br#"{"a": {"a": {"a": [1, 2]}, "b": [{"a": 3}, 4]}, "c": [[5], [6, {"a": 7}]]}"#;
    let records: &[u8] = br#"[{"id": 4, "name": "x"}, {"id": 9, "name": "y"}, {"id": 2}, 11, "z"]"#;
    vec![
        (
            store,
            vec![
                "$..id",
                "$..price",
                "$.store..id",
                "$..book[*].id",
                "$..book[0,1].price",
                "$..book[?(@.id > 1)].tags",
                "$.store['book','bicycle']..id",
                "$..tags[0]",
                "$..*",
            ],
        ),
        (
            recursive,
            vec![
                "$..a",
                "$..a..a",
                "$..[0]",
                "$..a[1]",
                "$.c[*][?(@ > 5)]",
                "$['a','c']..*",
            ],
        ),
        (
            records,
            vec![
                "$[?(@.id > 3)]",
                "$[?(@.id > 3)].name",
                "$[?(@ == 11)]",
                "$[?(@.name == 'y')]",
                "$[?(@.name != 'y')]",
                "$[0,3]",
                "$..name",
            ],
        ),
    ]
}

#[test]
fn extended_grammar_queries_agree_across_engines() {
    // The PR-7 grammar (descendant, wildcard, unions, filters) through the
    // same five-engine agreement harness as the paper queries, in both
    // validation modes. Rows with a known non-empty answer assert it so a
    // silently-empty agreement cannot pass.
    for (doc, queries) in extended_grammar_matrix() {
        let records = [doc];
        for query in queries {
            let agreed = assert_conformance(&records, query, "extended");
            if !query.contains("!=") {
                assert!(!agreed.is_empty(), "{query} found nothing");
            }
            let path: Path = query.parse().unwrap();
            for e in strict_engines(&path) {
                let got = match_stream(e.as_ref(), &records, query);
                assert_eq!(got, agreed, "{query}: strict {} diverges", e.name());
            }
        }
    }
}

#[test]
fn extended_grammar_is_kernel_invariant() {
    // Every supported kernel × both validation modes must replay the
    // extended-grammar rows byte-identically: fast-forward legality is
    // decided per automaton state, never per kernel.
    for (doc, queries) in extended_grammar_matrix() {
        let records = [doc];
        for query in queries {
            let path: Path = query.parse().unwrap();
            let auto = jsonski_repro::jsonski::JsonSki::new(path.clone());
            let reference = match_stream(&auto, &records, query);
            for &k in Kernel::all() {
                if !k.is_supported() {
                    continue;
                }
                for strict in [false, true] {
                    let mut builder = EngineConfig::builder().kernel(Some(k));
                    if strict {
                        builder = builder.strict();
                    }
                    let forced = jsonski_repro::jsonski::JsonSki::new(path.clone())
                        .with_config(builder.build());
                    let got = match_stream(&forced, &records, query);
                    assert_eq!(
                        got, reference,
                        "{query}: kernel {k:?} (strict={strict}) diverges"
                    );
                }
            }
        }
    }
}

#[test]
fn instrumented_evaluation_is_conformant() {
    // `evaluate_metered` must produce the exact same match stream as plain
    // `evaluate` for every engine, and the evaluated-side counters must
    // account for every record and match it saw.
    let cfg = GenConfig {
        target_bytes: 16 * 1024,
        seed: 7,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        let records: Vec<&[u8]> = data.iter().collect();
        let total_bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
        for (id, query) in ds.queries() {
            if ds.large_only_queries().contains(&id) {
                continue;
            }
            let path: Path = query.parse().unwrap();
            for engine in engines(&path) {
                let plain = match_stream(engine.as_ref(), &records, id);
                let metrics = Metrics::new();
                let mut sink = Recorder::default();
                for (i, record) in records.iter().enumerate() {
                    let outcome = engine.evaluate_metered(record, i as u64, &mut sink, &metrics);
                    assert!(
                        matches!(outcome, RecordOutcome::Complete { .. }),
                        "{id}: {} metered outcome {outcome:?}",
                        engine.name()
                    );
                }
                assert_eq!(sink.0, plain, "{id}: {} metered diverges", engine.name());
                let snap = metrics.snapshot();
                assert_eq!(snap.records_evaluated, records.len() as u64, "{id}");
                assert_eq!(snap.matches_emitted, plain.len() as u64, "{id}");
                assert_eq!(snap.bytes_evaluated, total_bytes, "{id}");
                assert_eq!(snap.records_failed, 0, "{id}");
            }
        }
    }
}
