//! Property-based tests: random JSON documents and random queries, with
//! the DOM engine as the executable specification for the streaming
//! engines, plus serial/parallel equivalence for the Pison index builder.

use proptest::prelude::*;

use jsonski_repro::jsonpath::Path;

/// Strategy for arbitrary JSON values, rendered directly to text.
/// Depth-bounded; strings draw from a JSON-safe alphabet plus escape pairs.
fn json_value(depth: u32) -> BoxedStrategy<String> {
    let scalar = prop_oneof![
        Just("null".to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        (-1_000_000i64..1_000_000).prop_map(|n| n.to_string()),
        (0u64..1_000_000, 0u64..1000).prop_map(|(a, b)| format!("{a}.{b}")),
        json_string(),
    ];
    scalar
        .prop_recursive(depth, 64, 6, |inner| {
            prop_oneof![
                // Arrays.
                prop::collection::vec(inner.clone(), 0..6)
                    .prop_map(|vs| format!("[{}]", vs.join(","))),
                // Objects with distinct keys.
                prop::collection::btree_map(key_name(), inner, 0..6).prop_map(|m| {
                    let fields: Vec<String> =
                        m.into_iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
                    format!("{{{}}}", fields.join(","))
                }),
            ]
        })
        .boxed()
}

/// JSON string literal contents: safe chars plus escape pairs and
/// metacharacters that must be masked by the classifiers.
fn json_string() -> BoxedStrategy<String> {
    prop::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("Z".to_string()),
            Just(" ".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just(":".to_string()),
            Just(",".to_string()),
            Just("\\\"".to_string()),
            Just("\\\\".to_string()),
            Just("\\n".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| format!("\"{}\"", parts.concat()))
    .boxed()
}

/// Keys the query generator can also produce, so queries sometimes match.
fn key_name() -> BoxedStrategy<String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("name".to_string()),
        Just("items".to_string()),
    ]
    .boxed()
}

/// Comparison filters `[?(@ op lit)]` over the same key universe, so the
/// `@`-path sometimes resolves against generated documents.
fn filter_step() -> BoxedStrategy<String> {
    let target = prop_oneof![
        Just("@".to_string()),
        key_name().prop_map(|k| format!("@.{k}")),
        (0usize..3).prop_map(|i| format!("@[{i}]")),
    ];
    let op = prop_oneof![
        Just("=="),
        Just("!="),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ];
    let lit = prop_oneof![
        (-50i64..50).prop_map(|n| n.to_string()),
        key_name().prop_map(|k| format!("'{k}'")),
        Just("true".to_string()),
        Just("null".to_string()),
    ];
    (target, op, lit)
        .prop_map(|(t, o, l)| format!("[?({t} {o} {l})]"))
        .boxed()
}

/// Random queries over the same key universe, covering the full grammar:
/// child/index/slice/wildcards plus descendant `..`, name and index
/// unions, and comparison filters.
fn query() -> BoxedStrategy<String> {
    let simple = prop_oneof![
        3 => key_name().prop_map(|k| format!(".{k}")),
        1 => Just(".*".to_string()),
        2 => (0usize..4).prop_map(|i| format!("[{i}]")),
        1 => (0usize..3, 1usize..3).prop_map(|(a, d)| format!("[{a}:{}]", a + d)),
        1 => Just("[*]".to_string()),
        1 => prop::collection::vec(key_name(), 2..4).prop_map(|ks| {
            let names: Vec<String> = ks.into_iter().map(|k| format!("'{k}'")).collect();
            format!("[{}]", names.join(","))
        }),
        1 => prop::collection::vec(0usize..5, 2..4).prop_map(|is| {
            let idx: Vec<String> = is.into_iter().map(|i| i.to_string()).collect();
            format!("[{}]", idx.join(","))
        }),
        1 => filter_step(),
    ];
    // Descendant wraps the same inner selectors the parser accepts after
    // `..`: a name, `*`, or a bracketed selector.
    let descendant = prop_oneof![
        key_name().prop_map(|k| format!("..{k}")),
        Just("..*".to_string()),
        (0usize..3).prop_map(|i| format!("..[{i}]")),
    ];
    let step = prop_oneof![5 => simple, 1 => descendant];
    prop::collection::vec(step, 0..5)
        .prop_map(|steps| format!("${}", steps.concat()))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn streaming_engines_match_dom_reference(doc in json_value(4), q in query()) {
        let record = doc.as_bytes();
        let path: Path = q.parse().unwrap();
        let reference = jsonski_repro::domparser::Dom::parse(record)
            .expect("generated JSON is well-formed")
            .count(&path);

        let ski = jsonski_repro::jsonski::JsonSki::new(path.clone())
            .count(record)
            .expect("jsonski accepts well-formed input");
        prop_assert_eq!(ski, reference, "JSONSki vs DOM: doc={} q={}", doc, q);

        let jp = jsonski_repro::jpstream::JpStream::new(path.clone())
            .count(record)
            .expect("jpstream accepts well-formed input");
        prop_assert_eq!(jp, reference, "JPStream vs DOM: doc={} q={}", doc, q);

        let tape = jsonski_repro::tapeparser::Tape::build(record)
            .expect("tape accepts well-formed input")
            .count(&path);
        prop_assert_eq!(tape, reference, "tape vs DOM: doc={} q={}", doc, q);

        let levels = jsonski_repro::pison::LeveledIndex::levels_for(record, &path);
        let pison = jsonski_repro::pison::LeveledIndex::build(record, levels).count(&path);
        prop_assert_eq!(pison, reference, "Pison vs DOM: doc={} q={}", doc, q);
    }

    #[test]
    fn pison_parallel_equals_serial(doc in json_value(4), threads in 1usize..6) {
        let record = doc.as_bytes();
        let serial = jsonski_repro::pison::LeveledIndex::build(record, 4);
        let parallel = jsonski_repro::pison::build_parallel(record, 4, threads);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn matched_spans_are_valid_json_values(doc in json_value(3), q in query()) {
        // Every span JSONSki emits must itself parse as a JSON value.
        let record = doc.as_bytes();
        let ski = jsonski_repro::jsonski::JsonSki::compile(&q).unwrap();
        for m in ski.matches(record).unwrap() {
            prop_assert!(
                jsonski_repro::domparser::Dom::parse(m.as_raw()).is_ok(),
                "emitted span is not standalone JSON: {:?} (doc={}, q={})",
                String::from_utf8_lossy(m.as_raw()), doc, q
            );
        }
    }

    #[test]
    fn structural_stats_never_panic_and_depth_bounded(doc in json_value(4)) {
        let st = jsonski_repro::datagen::structural_stats(doc.as_bytes());
        prop_assert!(st.depth <= 16);
        prop_assert_eq!(st.bytes, doc.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_engines_emit_identical_match_bytes(doc in json_value(4), q in query()) {
        // Stronger than count agreement: the exact byte spans must match.
        let record = doc.as_bytes();
        let path: Path = q.parse().unwrap();
        let dom = jsonski_repro::domparser::Dom::parse(record).unwrap();
        let want: Vec<&[u8]> = dom
            .query(&path)
            .into_iter()
            .map(|v| dom.text(v).as_bytes())
            .collect();

        let ski = jsonski_repro::jsonski::JsonSki::new(path.clone())
            .matches(record)
            .unwrap();
        prop_assert_eq!(&ski, &want, "JSONSki spans: doc={} q={}", doc, q);

        let jp = jsonski_repro::jpstream::JpStream::new(path.clone())
            .matches(record)
            .unwrap();
        prop_assert_eq!(&jp, &want, "JPStream spans: doc={} q={}", doc, q);

        let tape = jsonski_repro::tapeparser::Tape::build(record).unwrap();
        let tq = tape.query(&path);
        prop_assert_eq!(&tq, &want, "tape spans: doc={} q={}", doc, q);

        let levels = jsonski_repro::pison::LeveledIndex::levels_for(record, &path);
        let pison = jsonski_repro::pison::LeveledIndex::build(record, levels);
        let pq = pison.query(&path);
        prop_assert_eq!(&pq, &want, "Pison spans: doc={} q={}", doc, q);
    }

    #[test]
    fn legality_restricted_run_equals_fast_forwards_disabled(doc in json_value(4), q in query()) {
        // The per-state legality analysis decides which fast-forward
        // groups each automaton state may use. Whatever it allows, the
        // match stream must be byte-identical to a run with every
        // toggleable group (G1/G4/G5) hard-disabled — i.e. legality can
        // only ever skip bytes that could not change the output.
        let record = doc.as_bytes();
        let path: Path = q.parse().unwrap();
        let restricted = jsonski_repro::jsonski::JsonSki::new(path.clone())
            .matches(record)
            .unwrap();
        let disabled = jsonski_repro::jsonski::JsonSki::new(path)
            .with_config(
                jsonski_repro::jsonski::EngineConfig::builder()
                    .g1(false)
                    .g4(false)
                    .g5(false)
                    .build(),
            )
            .matches(record)
            .unwrap();
        prop_assert_eq!(restricted, disabled, "doc={} q={}", doc, q);
    }

    #[test]
    fn multiquery_agrees_with_individual_engines(
        doc in json_value(4),
        q1 in query(),
        q2 in query(),
        q3 in query(),
    ) {
        let record = doc.as_bytes();
        let queries = [q1.as_str(), q2.as_str(), q3.as_str()];
        let mq = jsonski_repro::jsonski::MultiQuery::compile(&queries).unwrap();
        let got = mq.counts(record).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let single = jsonski_repro::jsonski::JsonSki::compile(q)
                .unwrap()
                .count(record)
                .unwrap();
            prop_assert_eq!(got[i], single, "doc={} q={}", doc, q);
        }
    }

    #[test]
    fn chunked_reader_equals_split_records(doc in proptest::collection::vec(json_value(3), 0..8), chunk in 16usize..200) {
        let mut stream = Vec::new();
        for d in &doc {
            stream.extend_from_slice(d.as_bytes());
            stream.push(b'\n');
        }
        let spans = jsonski_repro::jsonski::split_records(&stream).unwrap();
        let want: Vec<Vec<u8>> = spans.iter().map(|&(s, e)| stream[s..e].to_vec()).collect();
        let mut got = Vec::new();
        let mut r = jsonski_repro::jsonski::ChunkedRecords::with_buffer_size(&stream[..], chunk);
        while let Some(rec) = r.next_record().unwrap() {
            got.push(rec.to_vec());
        }
        prop_assert_eq!(got, want);
    }
}
