//! Differential fuzz smoke: seeded structure-aware cases replayed through
//! all five engines, both validation modes, and every supported bitmap
//! kernel. Gated behind the `faults` feature (like the torture suite) so
//! tier-1 `cargo test` stays fast; CI runs it as the `fuzz-smoke` job.
//!
//! The oracle is class-aware (see `jsonski::fuzz`):
//!
//! * **valid** documents: all engines × modes × kernels must produce
//!   byte-identical match streams;
//! * **labeled faults**: every Strict engine must reject with exactly the
//!   injected `(offset, reason)` verdict;
//! * **unlabeled mutations**: kernel invariance is unconditional; the four
//!   pre-pass baselines must agree with the standalone validator, and the
//!   streaming engine's Strict verdict must equal the validator's whenever
//!   it reports one (token-level garbage outside Strict's scope may still
//!   surface as a structural error — that asymmetry is documented, not a
//!   divergence).
#![cfg(feature = "faults")]

use std::ops::ControlFlow;

use jsonski_repro::jsonpath::Path;
use jsonski_repro::jsonski::fuzz::{self, CaseLabel};
use jsonski_repro::jsonski::{
    validate_record, EngineConfig, EngineError, Evaluate, JsonSki, Kernel, MatchSink,
    RecordOutcome, StreamError, ValidationMode,
};

/// Queries rotated across cases — chosen to hit the generator's fixed key
/// pool so matching, seeking (G1/G4) and skipping (G2/G5) all fire. The
/// back half exercises the extended grammar (descendant, wildcard, unions,
/// filters), where legality analysis disables some groups instead.
const QUERIES: &[&str] = &[
    "$.a",
    "$.b",
    "$.user.id",
    "$[*].x",
    "$.tags[1:3]",
    "$.c[*]",
    "$..a",
    "$..id",
    "$.user..x",
    "$..[0]",
    "$..*.name",
    "$['a','c']",
    "$[0,2].x",
    "$[?(@.id > 0)]",
    "$[?(@ == null)]",
    "$.tags[?(@.x != 'y')]..b",
];

#[derive(Default)]
struct Recorder(Vec<Vec<u8>>);

impl MatchSink for Recorder {
    fn on_match(&mut self, m: jsonski_repro::jsonski::Match<'_>) -> ControlFlow<()> {
        self.0.push(m.bytes().to_vec());
        ControlFlow::Continue(())
    }
}

/// An engine run collapsed to a comparable value: the match stream on
/// success, or the failure rendered as a string.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Matches(Vec<Vec<u8>>),
    Rejected(String),
}

fn verdict(engine: &dyn Evaluate, record: &[u8]) -> Verdict {
    let mut sink = Recorder::default();
    match engine.evaluate(record, 0, &mut sink) {
        RecordOutcome::Complete { .. } | RecordOutcome::Stopped { .. } => Verdict::Matches(sink.0),
        RecordOutcome::Failed(e) => Verdict::Rejected(e.to_string()),
    }
}

fn strict_invalid(
    engine: &dyn Evaluate,
    record: &[u8],
) -> Option<(usize, jsonski_repro::jsonski::InvalidReason)> {
    let mut sink = Recorder::default();
    match engine.evaluate(record, 0, &mut sink) {
        RecordOutcome::Failed(EngineError::Invalid { offset, reason }) => Some((offset, reason)),
        _ => None,
    }
}

fn permissive_engines(path: &Path) -> Vec<Box<dyn Evaluate>> {
    vec![
        Box::new(JsonSki::new(path.clone())),
        Box::new(jsonski_repro::jpstream::JpStream::new(path.clone())),
        Box::new(jsonski_repro::domparser::DomQuery::new(path.clone())),
        Box::new(jsonski_repro::tapeparser::TapeQuery::new(path.clone())),
        Box::new(jsonski_repro::pison::PisonQuery::new(path.clone())),
    ]
}

fn strict_engines(path: &Path) -> Vec<Box<dyn Evaluate>> {
    let strict = ValidationMode::Strict;
    vec![
        Box::new(JsonSki::new(path.clone()).with_config(EngineConfig::builder().strict().build())),
        Box::new(jsonski_repro::jpstream::JpStream::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::domparser::DomQuery::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::tapeparser::TapeQuery::new(path.clone()).with_validation(strict)),
        Box::new(jsonski_repro::pison::PisonQuery::new(path.clone()).with_validation(strict)),
    ]
}

/// The full class-aware oracle for one record. `check_kernels` additionally
/// sweeps the streaming engine across every supported kernel (slightly
/// slower, so the bulk loop samples it).
fn check_record(bytes: &[u8], label: CaseLabel, query: &str, check_kernels: bool, ctx: &str) {
    let path: Path = query.parse().unwrap();
    let strict = strict_engines(&path);

    match label {
        CaseLabel::Valid => {
            // Everyone accepts with identical match streams, in both modes.
            let reference = verdict(permissive_engines(&path)[0].as_ref(), bytes);
            assert!(
                matches!(reference, Verdict::Matches(_)),
                "{ctx}: JSONSki rejected a generated document: {reference:?}"
            );
            for e in permissive_engines(&path).iter().skip(1) {
                assert_eq!(verdict(e.as_ref(), bytes), reference, "{ctx}: {}", e.name());
            }
            for e in &strict {
                assert_eq!(
                    verdict(e.as_ref(), bytes),
                    reference,
                    "{ctx}: strict {}",
                    e.name()
                );
            }
        }
        CaseLabel::Fault { reason, offset } => {
            // Every Strict engine rejects with the predicted verdict.
            for e in &strict {
                assert_eq!(
                    strict_invalid(e.as_ref(), bytes),
                    Some((offset, reason)),
                    "{ctx}: strict {} verdict",
                    e.name()
                );
            }
        }
        CaseLabel::Mutated => {
            // No validity prediction. The pre-pass engines must mirror the
            // standalone validator exactly; the streaming engine's Invalid
            // verdicts must match it too.
            let expected = validate_record(bytes);
            for e in strict.iter().skip(1) {
                if let Some(v) = expected {
                    assert_eq!(
                        strict_invalid(e.as_ref(), bytes),
                        Some(v),
                        "{ctx}: strict {} pre-pass",
                        e.name()
                    );
                }
            }
            let ski = JsonSki::compile(query)
                .unwrap()
                .with_config(EngineConfig::builder().strict().build());
            match ski.matches(bytes) {
                Ok(_) => assert_eq!(expected, None, "{ctx}: streaming accepted invalid bytes"),
                Err(StreamError::Invalid { pos, reason }) => {
                    assert_eq!(expected, Some((pos, reason)), "{ctx}: streaming verdict")
                }
                // Structural/token-level error outside Strict's scope: legal
                // only when the validator found nothing.
                Err(_) => assert_eq!(expected, None, "{ctx}: structural error masks Invalid"),
            }
            // If the document is actually fine, everyone must agree on it.
            if expected.is_none() {
                let dom = &permissive_engines(&path)[2];
                if let Verdict::Matches(reference) = verdict(dom.as_ref(), bytes) {
                    let mut all = permissive_engines(&path);
                    all.extend(strict_engines(&path));
                    for e in &all {
                        assert_eq!(
                            verdict(e.as_ref(), bytes),
                            Verdict::Matches(reference.clone()),
                            "{ctx}: {} on DOM-accepted mutation",
                            e.name()
                        );
                    }
                }
            }
        }
    }

    if check_kernels {
        // Kernel invariance is unconditional: whatever the outcome, it must
        // be bit-identical under every supported kernel, in both modes.
        for strict_mode in [false, true] {
            let mut reference = None;
            for &k in Kernel::all() {
                if !k.is_supported() {
                    continue;
                }
                let mut builder = EngineConfig::builder().kernel(Some(k));
                if strict_mode {
                    builder = builder.strict();
                }
                let e = JsonSki::new(path.clone()).with_config(builder.build());
                let got = verdict(&e, bytes);
                match &reference {
                    None => reference = Some(got),
                    Some(r) => assert_eq!(
                        &got, r,
                        "{ctx}: kernel {k:?} (strict={strict_mode}) diverges"
                    ),
                }
            }
        }
    }
}

#[test]
fn fuzz_smoke_differential() {
    // Fixed-seed budget: ≥10k documents through the full oracle. The
    // kernel sweep runs on every 5th case to keep the smoke fast; the core
    // crate's fuzz tests cover kernels densely at smaller scale.
    const CASES: u64 = 10_000;
    let mut valid = 0u64;
    let mut faults = 0u64;
    let mut mutated = 0u64;
    for seed in 0..CASES {
        let case = fuzz::case(seed);
        match case.label {
            CaseLabel::Valid => valid += 1,
            CaseLabel::Fault { .. } => faults += 1,
            CaseLabel::Mutated => mutated += 1,
        }
        // Odd seeds draw a generated full-grammar query; even seeds rotate
        // the fixed list, so both spaces stay densely covered.
        let generated;
        let query = if seed % 2 == 1 {
            generated = fuzz::QueryGen::new(seed).query();
            generated.as_str()
        } else {
            QUERIES[(seed / 2 % QUERIES.len() as u64) as usize]
        };
        check_record(
            &case.bytes,
            case.label,
            query,
            seed % 5 == 0,
            &format!("seed {seed}"),
        );
    }
    // The case mix must actually exercise all three oracle arms.
    assert!(valid > CASES / 5, "only {valid} valid cases");
    assert!(faults > CASES / 5, "only {faults} labeled-fault cases");
    assert!(mutated > CASES / 10, "only {mutated} mutated cases");
}

#[test]
fn corpus_replays_clean() {
    // Checked-in regression inputs (shrunken fuzz findings and hand-made
    // adversarial documents) replay through the weakest-assumption oracle
    // with the kernel sweep always on.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut n = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus missing")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file()) // tests/corpus/jsonpath/ is a compliance suite, not raw records
        .collect();
    entries.sort();
    for path in entries {
        let bytes = std::fs::read(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for query in QUERIES {
            check_record(&bytes, CaseLabel::Mutated, query, true, &name);
        }
        n += 1;
    }
    assert!(n >= 10, "corpus unexpectedly small: {n} files");
}

#[test]
fn shrinker_minimizes_a_corpus_class_witness() {
    // End-to-end shrink: take a labeled fuzz finding, shrink it against the
    // oracle predicate, and confirm the minimized case still reproduces and
    // replays identically across all strict engines.
    let doc = fuzz::Gen::new(4242).document();
    let (bytes, _) = fuzz::inject(
        &doc,
        jsonski_repro::jsonski::InvalidReason::LoneSurrogate,
        99,
    )
    .expect("no injection site in generated doc");
    let fails = |b: &[u8]| {
        matches!(
            validate_record(b),
            Some((_, jsonski_repro::jsonski::InvalidReason::LoneSurrogate))
        )
    };
    let small = fuzz::shrink(&bytes, fails);
    assert!(fails(&small));
    assert!(small.len() <= bytes.len());
    let path: Path = "$.a".parse().unwrap();
    let expected = validate_record(&small);
    for e in strict_engines(&path) {
        assert_eq!(strict_invalid(e.as_ref(), &small), expected, "{}", e.name());
    }
}
