//! Regression tests for the paper's *qualitative* claims, checked on the
//! synthetic datasets at small scale. These encode the shape of Table 6 and
//! the memory argument of Figure 13 so a refactor that silently loses a
//! fast-forward opportunity fails loudly.

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonski::{Group, JsonSki};

fn stats_for(ds: Dataset, query: &str) -> jsonski_repro::jsonski::FastForwardStats {
    let cfg = GenConfig {
        target_bytes: 256 * 1024,
        seed: 0x5eed_0001,
    };
    let data = ds.generate_large(&cfg);
    let q = JsonSki::compile(query).unwrap();
    q.run(data.bytes(), |_| {}).unwrap()
}

#[test]
fn overall_fast_forward_ratio_is_high_for_every_query() {
    // Paper Table 6: "the overall fast-forward ratios ... are very high
    // across all the evaluated queries — all above 95%". The synthetic
    // datasets are a little less skippable than the real dumps (shorter
    // strings), so assert a slightly looser floor.
    for ds in Dataset::all() {
        for (id, query) in ds.queries() {
            let st = stats_for(ds, query);
            assert!(
                st.overall_ratio() > 0.85,
                "{id}: overall fast-forward ratio only {:.2}%",
                100.0 * st.overall_ratio()
            );
        }
    }
}

#[test]
fn g4_dominates_where_the_paper_says() {
    // TT2, NSPL1, WM2: the match is an early attribute of each record and
    // G4 skips the rest (paper: 95.62%, 99.99%, 96.56%).
    for (ds, query) in [
        (Dataset::Tt, "$[*].text"),
        (Dataset::Nspl, "$.mt.vw.co[*].nm"),
        (Dataset::Wm, "$.it[*].nm"),
    ] {
        let st = stats_for(ds, query);
        let g4 = st.ratio(Group::G4);
        for g in [Group::G1, Group::G2, Group::G3, Group::G5] {
            assert!(
                g4 >= st.ratio(g),
                "{query}: G4 ({g4:.3}) should dominate {g:?} ({:.3})",
                st.ratio(g)
            );
        }
    }
}

#[test]
fn g2_dominates_for_rare_attribute_queries() {
    // GMD2 ($[*].atm): almost every record fails the name match and its
    // whole body is G2-skipped (paper: 99.97%).
    let st = stats_for(Dataset::Gmd, "$[*].atm");
    assert!(st.ratio(Group::G2) > 0.9, "{st}");
}

#[test]
fn g5_dominates_for_index_constrained_queries() {
    // WP2 ($[10:21]...): everything outside the window is G5-skipped
    // (paper: 99.96%). NSPL2's [2:4] also leans on G5 (paper: 10.94% with
    // G1 at 83.45%; ours keeps the two groups dominant together).
    let st = stats_for(Dataset::Wp, "$[10:21].cl.P150[*].ms.pty");
    assert!(st.ratio(Group::G5) > 0.9, "{st}");
    let st = stats_for(Dataset::Nspl, "$.dt[*][*][2:4]");
    assert!(st.ratio(Group::G5) + st.ratio(Group::G1) > 0.5, "{st}");
}

#[test]
fn g1_contributes_for_type_directed_queries() {
    // WM1 and BB2: the queried attribute is rare, and the G1 seek skips the
    // non-matching-type attributes around it (paper: 97.97% / 89.24%).
    let st = stats_for(Dataset::Wm, "$.it[*].bmrpr.pr");
    assert!(st.ratio(Group::G1) > 0.3, "{st}");
    let st = stats_for(Dataset::Bb, "$.pd[*].vc[*].cha");
    assert!(st.ratio(Group::G1) > 0.3, "{st}");
}

#[test]
fn streaming_engines_allocate_nothing_per_record() {
    // Figure 13's core claim, expressible without the counting allocator:
    // JSONSki's state is O(depth), so counting matches over a large record
    // must not scale memory with input. We verify behaviorally: counts over
    // slices of doubling size succeed and the engine object is reusable.
    let cfg = GenConfig {
        target_bytes: 512 * 1024,
        seed: 9,
    };
    let data = Dataset::Bb.generate_large(&cfg);
    let q = JsonSki::compile("$.pd[*].cp[1:3].id").unwrap();
    let n1 = q.count(data.bytes()).unwrap();
    let n2 = q.count(data.bytes()).unwrap();
    assert_eq!(n1, n2);
    assert!(n1 > 0);
}

#[test]
fn fig14_linearity_shape() {
    // Figure 14: execution effort grows linearly with input size. Time is
    // noisy on shared CI hosts, so check the deterministic proxy: the
    // fast-forward totals scale with the input.
    let q = JsonSki::compile("$.pd[*].cp[1:3].id").unwrap();
    let mut totals = Vec::new();
    for mult in [1usize, 2, 4] {
        let cfg = GenConfig {
            target_bytes: 64 * 1024 * mult,
            seed: 3,
        };
        let data = Dataset::Bb.generate_large(&cfg);
        let st = q.run(data.bytes(), |_| {}).unwrap();
        totals.push((data.bytes().len() as f64, st.total() as f64));
    }
    for w in totals.windows(2) {
        let ratio = (w[1].1 / w[0].1) / (w[1].0 / w[0].0);
        assert!((0.99..1.01).contains(&ratio), "non-linear: {totals:?}");
    }
}
