//! The unified sink-based evaluation API, exercised across all five
//! engines, plus pipeline determinism and error-policy behaviour on
//! corrupt-record streams.

use std::ops::ControlFlow;

use jsonski_repro::harness::all_engines;
use jsonski_repro::jsonpath::Path;
use jsonski_repro::jsonski::{
    CountSink, ErrorPolicy, Match, MatchSink, Pipeline, RecordOutcome, SliceRecords,
};

/// Per-engine capture: the match bytes and the per-record outcome keys.
type EngineCapture = (Vec<(u64, Vec<u8>)>, Vec<(&'static str, usize)>);

/// Records every sink callback, for byte-exact cross-engine comparison.
#[derive(Default)]
struct Recorder {
    matches: Vec<(u64, Vec<u8>)>,
    errors: Vec<u64>,
}

impl MatchSink for Recorder {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.matches.push((m.record_idx(), m.bytes().to_vec()));
        ControlFlow::Continue(())
    }

    fn on_record_error(
        &mut self,
        record_idx: u64,
        _error: &jsonski_repro::jsonski::EngineError,
    ) -> ControlFlow<()> {
        self.errors.push(record_idx);
        ControlFlow::Continue(())
    }
}

/// Comparable projection of a [`RecordOutcome`] (the error payloads differ
/// per engine by design; the shape and counts must not).
fn outcome_key(o: &RecordOutcome) -> (&'static str, usize) {
    match o {
        RecordOutcome::Complete { matches } => ("complete", *matches),
        RecordOutcome::Stopped { matches } => ("stopped", *matches),
        RecordOutcome::Failed(_) => ("failed", 0),
    }
}

/// A record stream whose record 3 is balanced at the brace level — the
/// record splitter still finds its end — but malformed inside (an unclosed
/// `[`), so every engine must *diagnose* it rather than choke on
/// boundaries.
fn corpus() -> (Vec<Vec<u8>>, &'static str) {
    let mut records: Vec<Vec<u8>> = (0..8)
        .map(|i| format!(r#"{{"a": [{i}, {}]}}"#, i * 10).into_bytes())
        .collect();
    records[3] = br#"{"a": [3, 30}"#.to_vec();
    (records, "$.a[*]")
}

#[test]
fn all_engines_emit_identical_matches_and_outcomes() {
    let (records, query) = corpus();
    let path: Path = query.parse().unwrap();
    let engines = all_engines(&path);
    let mut per_engine: Vec<EngineCapture> = Vec::new();
    for engine in &engines {
        let mut matches = Vec::new();
        let mut outcomes = Vec::new();
        for (i, record) in records.iter().enumerate() {
            // Per-record buffering, like the pipeline: a streaming engine
            // may emit matches *before* diagnosing a later error in the
            // same record, so a failed record's matches are discarded.
            let mut rec = Recorder::default();
            let outcome = engine.evaluate(record, i as u64, &mut rec);
            if !outcome.is_failed() {
                matches.extend(rec.matches);
            }
            outcomes.push(outcome_key(&outcome));
        }
        per_engine.push((matches, outcomes));
    }
    let (ref_matches, ref_outcomes) = &per_engine[0];
    assert_eq!(ref_outcomes[3], ("failed", 0), "record 3 must be diagnosed");
    assert_eq!(ref_matches.len(), 14, "7 valid records x 2 matches");
    for (i, (matches, outcomes)) in per_engine.iter().enumerate().skip(1) {
        assert_eq!(
            matches,
            ref_matches,
            "{} emits different match bytes than {}",
            engines[i].name(),
            engines[0].name()
        );
        assert_eq!(
            outcomes,
            ref_outcomes,
            "{} reports different outcomes than {}",
            engines[i].name(),
            engines[0].name()
        );
    }
}

#[test]
fn every_engine_survives_corrupt_streams_under_skip_malformed() {
    let (records, query) = corpus();
    let mut stream = Vec::new();
    for r in &records {
        stream.extend_from_slice(r);
        stream.push(b'\n');
    }
    let path: Path = query.parse().unwrap();
    for engine in all_engines(&path) {
        // Serial reference: count over the valid records only.
        let serial: usize = records.iter().filter_map(|r| engine.count(r).ok()).sum();
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let summary = Pipeline::new()
            .workers(4)
            .error_policy(ErrorPolicy::SkipMalformed)
            .run(engine.as_ref(), &mut source, &mut sink)
            .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
        assert_eq!(summary.records, records.len() as u64, "{}", engine.name());
        assert_eq!(summary.failed, 1, "{}", engine.name());
        assert_eq!(sink.errors, vec![3], "{}", engine.name());
        assert_eq!(summary.matches, serial, "{}", engine.name());
        // FailFast on the same stream must abort instead.
        let mut source = SliceRecords::new(&stream);
        let mut count = CountSink::default();
        let err = Pipeline::new()
            .workers(4)
            .error_policy(ErrorPolicy::FailFast)
            .run(engine.as_ref(), &mut source, &mut count)
            .unwrap_err();
        assert!(!err.to_string().is_empty(), "{}", engine.name());
    }
}

#[test]
fn pipeline_is_deterministic_across_worker_counts() {
    let mut stream = Vec::new();
    for i in 0..300 {
        stream.extend_from_slice(format!("{{\"a\": [{i}, {i}, {i}]}}\n").as_bytes());
    }
    let engine = jsonski_repro::jsonski::JsonSki::compile("$.a[*]").unwrap();
    let mut reference: Option<Vec<(u64, Vec<u8>)>> = None;
    for workers in [1usize, 4, 16] {
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let summary = Pipeline::new()
            .workers(workers)
            .run(&engine, &mut source, &mut sink)
            .unwrap();
        assert_eq!(summary.matches, 900, "workers={workers}");
        assert!(sink.errors.is_empty());
        match &reference {
            None => reference = Some(sink.matches),
            Some(r) => assert_eq!(&sink.matches, r, "workers={workers} reorders output"),
        }
    }
}

#[test]
fn control_flow_break_stops_the_byte_scan() {
    // One large record: after the first match the sink breaks, and the
    // engine must not examine the rest of the input (the `--limit 1` CLI
    // behaviour, asserted on consumed bytes rather than output length).
    let mut record = b"{\"a\": [".to_vec();
    for i in 0..10_000 {
        record.extend_from_slice(format!("{i},").as_bytes());
    }
    record.pop();
    record.extend_from_slice(b"], \"tail\": 0}");
    let engine = jsonski_repro::jsonski::JsonSki::compile("$.a[0]").unwrap();
    let outcome = engine.stream(&record, |_| ControlFlow::Break(())).unwrap();
    assert!(outcome.stopped);
    assert_eq!(outcome.matches, 1, "the breaking match is counted");
    assert!(
        outcome.consumed < record.len() / 10,
        "consumed {} of {} bytes",
        outcome.consumed,
        record.len()
    );
}
