//! Property tests for `LazyValue` typed decoding, differential-checked
//! against the DOM baseline.
//!
//! Random scalar literals are wrapped in a record, extracted with the
//! JSON-pointer [`Extractor`] under **every supported kernel and both
//! validation modes**, and the lazy decode is compared against what the
//! independently written DOM parser (and its character-wise string
//! decoder) says the literal denotes. Numbers cover exponents, negative
//! zero, and integer overflow; strings cover escape sequences and
//! surrogate pairs.

use std::borrow::Cow;

use proptest::prelude::*;

use jsonski_repro::domparser::{self, ValueKind};
use jsonski_repro::jsonski::{Extractor, Kernel, LazyValue, Metrics, ValidationMode};

/// Every engine configuration the decode must agree under: both
/// validation modes crossed with the auto kernel plus each supported
/// forced kernel.
fn for_each_config(record: &[u8], mut check: impl FnMut(LazyValue<'_>, String)) {
    for mode in [ValidationMode::Permissive, ValidationMode::Strict] {
        let mut kernels: Vec<Option<Kernel>> = vec![None];
        kernels.extend(
            Kernel::all()
                .iter()
                .filter(|k| k.is_supported())
                .map(|&k| Some(k)),
        );
        for kernel in kernels {
            let ex = Extractor::compile(&["/v"])
                .unwrap()
                .with_kernel(kernel)
                .with_validation(mode);
            let got = ex
                .extract(record)
                .unwrap_or_else(|e| panic!("extract failed ({mode:?}, {kernel:?}): {e}"));
            let v = got
                .get(0)
                .unwrap_or_else(|| panic!("missing /v ({mode:?}, {kernel:?})"));
            check(v, format!("{mode:?}/{kernel:?}"));
        }
    }
}

/// The DOM parse of `/v` in `record` — the executable specification.
fn dom_oracle(record: &[u8]) -> ValueKind {
    let dom = domparser::Dom::parse(record).expect("generated record is well-formed");
    dom.root().get("v").expect("v present").kind().clone()
}

/// JSON number literals: plain integers (within and beyond i64), decimal
/// fractions, exponent forms, and boundary spellings.
fn number_literal() -> BoxedStrategy<String> {
    prop_oneof![
        any::<i64>().prop_map(|n| n.to_string()),
        any::<u64>().prop_map(|n| n.to_string()),
        // Guaranteed past i64::MAX: overflow must decode as None for
        // integers but still as a (possibly infinite) f64.
        (1u64..=u64::MAX, 1usize..=8).prop_map(|(n, d)| format!("{n}{}", "9".repeat(d))),
        (any::<i64>(), 0u64..=999_999).prop_map(|(i, f)| format!("{i}.{f}")),
        (0u64..=9_999_999, 0u64..=9_999_999, -400i32..=400)
            .prop_map(|(i, f, e)| format!("{i}.{f}e{e}")),
        (1u64..=9_999_999, -400i32..=400).prop_map(|(i, e)| format!("{i}E{e:+}")),
        Just("-0".to_string()),
        Just("1e999".to_string()),
        Just("-1e999".to_string()),
        Just("5e-999".to_string()),
    ]
    .boxed()
}

/// A random Unicode string together with a JSON literal that denotes it,
/// where each character is independently either written raw or escaped
/// (`\uXXXX`, surrogate pairs beyond the BMP).
fn encoded_string() -> BoxedStrategy<(String, String)> {
    prop::collection::vec((any::<char>(), any::<bool>()), 0..24)
        .prop_map(|chars| {
            let mut decoded = String::new();
            let mut lit = String::from("\"");
            for (c, escape) in chars {
                decoded.push(c);
                if !(escape || matches!(c, '"' | '\\') || (c as u32) < 0x20) {
                    lit.push(c);
                    continue;
                }
                match c {
                    '"' => lit.push_str("\\\""),
                    '\\' => lit.push_str("\\\\"),
                    '\n' => lit.push_str("\\n"),
                    '\t' => lit.push_str("\\t"),
                    c if (c as u32) <= 0xFFFF => {
                        lit.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => {
                        let v = c as u32 - 0x10000;
                        lit.push_str(&format!(
                            "\\u{:04x}\\u{:04x}",
                            0xD800 + (v >> 10),
                            0xDC00 + (v & 0x3FF)
                        ));
                    }
                }
            }
            lit.push('"');
            (decoded, lit)
        })
        .boxed()
}

/// Acceptance pin: a batch of N pointers resolves in **one** structural
/// pass. The metrics counters prove it — the shared pass classifies each
/// 64-byte word at most once, while N separate single-pointer passes
/// re-classify the record's prefix N times over.
#[test]
fn get_many_is_one_structural_pass() {
    let mut record = String::from("{");
    for i in 0..40 {
        record.push_str(&format!("\"k{i}\": [{i}, {{\"x\": \"{:0>32}\"}}], ", i));
    }
    record.push_str("\"tail\": {\"deep\": [null, true, 42]}}");
    let record = record.as_bytes();
    let pointers = ["/k0/0", "/k17/1/x", "/k39/1", "/tail/deep/2", "/absent"];

    let metrics = Metrics::new();
    let ex = Extractor::compile(&pointers).unwrap();
    let found = ex.extract_metered(record, &metrics).unwrap();
    assert_eq!(found.get(0).unwrap().as_i64(), Some(0));
    assert_eq!(found.get(3).unwrap().as_i64(), Some(42));
    assert!(found.get(4).is_none());

    let snap = metrics.snapshot();
    let words_available = record.len().div_ceil(64) as u64;
    assert!(
        snap.words_classified <= words_available,
        "batch pass classified {} words but the record only holds {}",
        snap.words_classified,
        words_available
    );
    assert_eq!(snap.words_classified, found.words_classified() as u64);

    // The counterfactual: one pass per pointer classifies strictly more
    // words in total, because each pass re-walks the shared prefix.
    let separate: u64 = pointers
        .iter()
        .map(|p| {
            Extractor::compile(&[*p])
                .unwrap()
                .extract(record)
                .unwrap()
                .words_classified() as u64
        })
        .sum();
    assert!(
        separate > snap.words_classified,
        "separate passes ({separate} words) should cost more than the shared pass ({})",
        snap.words_classified
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn number_decoding_agrees_with_dom(lit in number_literal(), pad in 0usize..64) {
        // Padding moves the literal across 64-byte word boundaries so every
        // kernel classifies it at varied offsets.
        let record = format!("{{\"pad\": \"{}\", \"v\": {lit}}}", "x".repeat(pad));
        let want_f64 = match dom_oracle(record.as_bytes()) {
            ValueKind::Number(n) => n,
            other => panic!("oracle parsed {lit} as {other:?}"),
        };
        let want_i64 = lit.parse::<i64>().ok();
        let want_u64 = lit.parse::<u64>().ok();
        for_each_config(record.as_bytes(), |v, ctx| {
            assert_eq!(v.as_raw(), lit.as_bytes(), "{ctx}: raw span");
            let got = v.as_f64().unwrap_or_else(|| panic!("{ctx}: {lit} not a number"));
            assert_eq!(got.to_bits(), want_f64.to_bits(), "{ctx}: f64 of {lit}");
            assert_eq!(v.as_i64(), want_i64, "{ctx}: i64 of {lit}");
            assert_eq!(v.as_u64(), want_u64, "{ctx}: u64 of {lit}");
        });
    }

    #[test]
    fn string_decoding_agrees_with_dom(enc in encoded_string(), pad in 0usize..64) {
        let (want, lit) = enc;
        let record = format!("{{\"pad\": \"{}\", \"v\": {lit}}}", "x".repeat(pad));
        // Independent oracle: the DOM stores the raw contents; its
        // character-wise decoder must produce the same text.
        let raw = match dom_oracle(record.as_bytes()) {
            ValueKind::String(s) => s,
            other => panic!("oracle parsed {lit} as {other:?}"),
        };
        let dom_decoded = domparser::decode_raw_string(&raw)
            .unwrap_or_else(|| panic!("oracle rejected {lit}"));
        prop_assert_eq!(&dom_decoded, &want, "oracle decode of {}", lit);
        let escape_free = !lit.contains('\\');
        for_each_config(record.as_bytes(), |v, ctx| {
            let got = v.as_str().unwrap_or_else(|e| panic!("{ctx}: {lit}: {e}"));
            assert_eq!(got.as_ref(), want, "{ctx}: decode of {lit}");
            // The laziness contract: escape-free strings borrow from the
            // input buffer, escaped ones allocate.
            match got {
                Cow::Borrowed(_) => assert!(escape_free, "{ctx}: borrowed despite escapes"),
                Cow::Owned(_) => assert!(!escape_free, "{ctx}: allocated without escapes"),
            }
        });
    }

    #[test]
    fn bool_and_null_decode_consistently(which in 0usize..3, pad in 0usize..64) {
        let lit = ["true", "false", "null"][which];
        let record = format!("{{\"pad\": \"{}\", \"v\": {lit}}}", "x".repeat(pad));
        for_each_config(record.as_bytes(), |v, ctx| {
            match which {
                0 => assert_eq!(v.as_bool(), Some(true), "{ctx}"),
                1 => assert_eq!(v.as_bool(), Some(false), "{ctx}"),
                _ => assert!(v.is_null(), "{ctx}"),
            }
            assert_eq!(v.as_raw(), lit.as_bytes(), "{ctx}: raw span");
        });
    }
}

#[test]
fn extended_queries_compose_with_pointer_extraction() {
    // The two addressing layers compose: a full-grammar JSONPath query
    // (descendant, filter) selects subtrees, and each match's bytes are a
    // standalone record that RFC 6901 pointers drill into — the pointer
    // trie never needs to know about the query grammar.
    let record: &[u8] = br#"{"order": {"items": [{"sku": "A1"}], "sub": {"order": {"items": [{"sku": "B2"}, {"sku": "B3"}]}}}, "x": [1, 2]}"#;

    // Descendant query, then a compiled multi-pointer trie per match.
    let ski = jsonski_repro::jsonski::JsonSki::compile("$..order").unwrap();
    let ex = Extractor::compile(&["/items/0/sku", "/items/1/sku"]).unwrap();
    let mut skus = Vec::new();
    for m in ski.matches(record).unwrap() {
        let extraction = ex.extract(m.as_raw()).unwrap();
        for i in 0..2 {
            if let Some(v) = extraction.get(i) {
                skus.push(v.as_str().unwrap().into_owned());
            }
        }
    }
    // Pre-order: the outer order object streams first.
    assert_eq!(skus, ["A1", "B2", "B3"]);

    // Filter query, then the one-shot getter on each element.
    let ski = jsonski_repro::jsonski::JsonSki::compile("$..items[?(@.sku != 'B2')]").unwrap();
    let mut got = Vec::new();
    for m in ski.matches(record).unwrap() {
        let v = jsonski_repro::jsonski::get(m.as_raw(), "/sku")
            .unwrap()
            .unwrap();
        got.push(v.as_str().unwrap().into_owned());
    }
    assert_eq!(got, ["A1", "B3"]);
}
