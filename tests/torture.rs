//! Differential torture suite: seeded fault injection against the whole
//! ingestion stack (build with `--features faults`).
//!
//! Three layers of guarantees, in increasing strength:
//!
//! 1. **No panics, ever.** Mutated records, corrupted streams, short
//!    reads, interrupts, and truncation may cost records, but never the
//!    process.
//! 2. **Policy soundness.** Under [`ErrorPolicy::SkipMalformed`] a broken
//!    stream still yields a clean run; benign transport faults (short
//!    reads, `Interrupted`) are completely invisible in the match stream.
//! 3. **Differential agreement.** JSONSki skips validation inside
//!    fast-forwarded regions, so on *invalid* input it may accept what a
//!    full parser rejects — but whenever the DOM baseline accepts a
//!    mutated record, both engines must produce the identical match
//!    sequence.
//!
//! Every case is seeded ([`SplitMix64`] / [`FaultPlan`]); a failure here
//! reproduces exactly.
#![cfg(feature = "faults")]

use std::ops::ControlFlow;

use proptest::prelude::*;

use jsonski_repro::domparser::DomQuery;
use jsonski_repro::jsonpath::Path;
use jsonski_repro::jsonski::faults::{mutate, FaultPlan, FaultyReader, SplitMix64};
use jsonski_repro::jsonski::{
    ChunkedRecords, EngineError, ErrorPolicy, Evaluate, JsonSki, MatchSink, Pipeline,
    PipelineSummary, RecordOutcome, ResourceLimits,
};

/// Sink recording the full delivered event sequence.
#[derive(Debug, Default, PartialEq, Eq)]
struct Recorder {
    matches: Vec<(u64, Vec<u8>)>,
    errors: Vec<u64>,
    resyncs: Vec<(u64, u64)>,
}

impl MatchSink for Recorder {
    fn on_match(&mut self, record_idx: u64, bytes: &[u8]) -> ControlFlow<()> {
        self.matches.push((record_idx, bytes.to_vec()));
        ControlFlow::Continue(())
    }

    fn on_record_error(&mut self, record_idx: u64, _error: &EngineError) -> ControlFlow<()> {
        self.errors.push(record_idx);
        ControlFlow::Continue(())
    }

    fn on_resync(&mut self, span: (u64, u64), _error: &EngineError) -> ControlFlow<()> {
        self.resyncs.push(span);
        ControlFlow::Continue(())
    }
}

/// A deterministic record corpus mixing the shapes the engine cares about:
/// nested objects, arrays, escapes, and scalars under the `a` key.
fn corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            match rng.below(4) {
                0 => format!("{{\"a\": {i}, \"b\": [1, 2, 3]}}"),
                1 => format!("{{\"b\": {{\"a\": \"inner\"}}, \"a\": [{i}, {i}]}}"),
                2 => format!("{{\"b\": \"s{i}\", \"a\": \"x\\\"y{i}\"}}"),
                _ => format!("{{\"c\": [[{i}]], \"a\": {{\"d\": {i}}}}}"),
            }
            .into_bytes()
        })
        .collect()
}

fn ndjson(records: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for r in records {
        stream.extend_from_slice(r);
        stream.push(b'\n');
    }
    stream
}

/// Runs `$.a` over a (possibly fault-wrapped) reader through the pipeline.
fn run_stream<R: std::io::Read>(
    reader: R,
    workers: usize,
    policy: ErrorPolicy,
    limits: ResourceLimits,
) -> Result<(Recorder, PipelineSummary), EngineError> {
    let engine = JsonSki::compile("$.a").unwrap().with_limits(limits);
    let mut source = ChunkedRecords::new(reader).limits(limits);
    let mut trace = Recorder::default();
    let summary = Pipeline::new()
        .workers(workers)
        .error_policy(policy)
        .limits(limits)
        .run(&engine, &mut source, &mut trace)?;
    Ok((trace, summary))
}

#[test]
fn dom_accepted_mutants_agree_with_jsonski() {
    let base = corpus(24, 7);
    let path: Path = "$.a".parse().unwrap();
    let ski = JsonSki::new(path.clone());
    let dom = DomQuery::new(path);
    let mut still_valid = 0u64;
    for (i, rec) in base.iter().enumerate() {
        for round in 0..64u64 {
            let m = mutate(rec, round * 1009 + i as u64);
            let mut dom_sink = Recorder::default();
            let dom_out = dom.evaluate(&m, 0, &mut dom_sink);
            // Merely getting here is guarantee 1: neither engine may panic
            // on any mutant.
            let mut ski_sink = Recorder::default();
            let ski_out = ski.evaluate(&m, 0, &mut ski_sink);
            if matches!(dom_out, RecordOutcome::Complete { .. }) {
                // The baseline fully validated the mutant, so it is real
                // JSON and the streaming engine has no excuse.
                assert!(
                    matches!(ski_out, RecordOutcome::Complete { .. }),
                    "jsonski rejected a DOM-valid mutant {:?}: {ski_out:?}",
                    String::from_utf8_lossy(&m),
                );
                assert_eq!(
                    ski_sink.matches,
                    dom_sink.matches,
                    "divergence on mutant {:?}",
                    String::from_utf8_lossy(&m),
                );
                still_valid += 1;
            }
        }
    }
    assert!(
        still_valid > 0,
        "the mutation corpus should include some still-valid records"
    );
}

#[test]
fn benign_transport_faults_are_invisible() {
    let stream = ndjson(&corpus(80, 11));
    let (expected, expected_summary) = run_stream(
        &stream[..],
        1,
        ErrorPolicy::FailFast,
        ResourceLimits::default(),
    )
    .expect("clean stream");
    assert!(!expected.matches.is_empty());
    for workers in [1, 4] {
        for seed in 0..8u64 {
            // Short reads exercise every refill path; `Interrupted` is
            // retried unconditionally, so even FailFast must see nothing.
            let plan = FaultPlan::new(seed).short_reads(13).interrupt_every(3);
            let reader = FaultyReader::new(&stream[..], plan);
            let (trace, summary) = run_stream(
                reader,
                workers,
                ErrorPolicy::FailFast,
                ResourceLimits::default(),
            )
            .expect("benign faults must not surface");
            assert_eq!(trace, expected, "workers={workers} seed={seed}");
            assert_eq!(summary.records, expected_summary.records);
            assert_eq!(summary.resyncs, 0);
        }
    }
}

#[test]
fn mutated_streams_survive_and_are_worker_count_invariant() {
    for seed in 0..6u64 {
        let base = corpus(60, seed);
        let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
        let mut records = Vec::new();
        for (i, r) in base.iter().enumerate() {
            if rng.below(3) == 0 {
                records.push(mutate(r, seed * 131 + i as u64));
            } else {
                records.push(r.clone());
            }
        }
        let stream = ndjson(&records);
        let limits = ResourceLimits::default().max_record_bytes(1 << 16);
        let run = |workers| {
            let plan = FaultPlan::new(seed).short_reads(17).interrupt_every(5);
            let reader = FaultyReader::new(&stream[..], plan);
            run_stream(reader, workers, ErrorPolicy::SkipMalformed, limits)
                .expect("skip mode must survive structural mutation")
        };
        let (serial, serial_summary) = run(1);
        for workers in [2, 4] {
            let (parallel, summary) = run(workers);
            assert_eq!(parallel, serial, "seed={seed} workers={workers}");
            assert_eq!(summary.records, serial_summary.records);
            assert_eq!(summary.failed, serial_summary.failed);
            assert_eq!(summary.resyncs, serial_summary.resyncs);
            assert_eq!(summary.resync_bytes, serial_summary.resync_bytes);
        }
    }
}

#[test]
fn corrupted_streams_survive_under_skip_policy() {
    let stream = ndjson(&corpus(50, 3));
    let mut damage_seen = false;
    for seed in 0..8u64 {
        // Corrupting every ~40th byte breaks records *and* boundaries;
        // evaluation errors and resyncs may both fire, but the run ends
        // cleanly (corruption is never an I/O error) and stays
        // deterministic across worker counts.
        let run = |workers| {
            let plan = FaultPlan::new(seed).corrupt_every(40).short_reads(11);
            let reader = FaultyReader::new(&stream[..], plan);
            run_stream(
                reader,
                workers,
                ErrorPolicy::SkipMalformed,
                ResourceLimits::default(),
            )
            .expect("corruption must be skippable")
        };
        let (serial, summary) = run(1);
        let (parallel, parallel_summary) = run(4);
        assert_eq!(serial, parallel, "seed={seed}");
        assert_eq!(summary.failed, parallel_summary.failed, "seed={seed}");
        assert_eq!(summary.resyncs, parallel_summary.resyncs, "seed={seed}");
        damage_seen |= summary.failed > 0 || summary.resyncs > 0;
    }
    assert!(
        damage_seen,
        "the corruption schedule should break something"
    );
}

#[test]
fn truncated_streams_deliver_a_prefix_with_bounded_memory() {
    let stream = ndjson(&corpus(64, 29));
    let (clean, _) = run_stream(
        &stream[..],
        1,
        ErrorPolicy::FailFast,
        ResourceLimits::default(),
    )
    .expect("clean stream");
    // A buffer cap (one chunk above the reader's 64 KiB refill granularity)
    // proves the reader discards, not accumulates, while resyncing past the
    // cut-off tail.
    let limits = ResourceLimits::default().max_buffer_bytes(1 << 17);
    for cut in [stream.len() / 3, stream.len() / 2, stream.len() - 3] {
        for workers in [1, 4] {
            let plan = FaultPlan::new(1).truncate_at(cut as u64).short_reads(9);
            let reader = FaultyReader::new(&stream[..], plan);
            let (trace, _) = run_stream(reader, workers, ErrorPolicy::SkipMalformed, limits)
                .expect("truncation must be skippable");
            assert!(
                trace.matches.len() <= clean.matches.len()
                    && trace.matches == clean.matches[..trace.matches.len()],
                "cut={cut} workers={workers}: delivered matches must be a \
                 prefix of the clean run"
            );
            assert!(!trace.matches.is_empty(), "cut={cut}: prefix survives");
        }
    }
}

// Randomized composition of every fault at once: the stream must never
// panic, never error under the skip policy, and stay worker-count
// invariant.
proptest! {
    #[test]
    fn prop_faulted_streams_never_panic(seed in 0u64..200) {
        let base = corpus(20, seed);
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9));
        let records: Vec<Vec<u8>> = base
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if rng.below(2) == 0 {
                    mutate(r, seed + i as u64)
                } else {
                    r.clone()
                }
            })
            .collect();
        let stream = ndjson(&records);
        let plan = FaultPlan::new(seed)
            .short_reads(1 + (seed % 19) as usize)
            .interrupt_every(2 + seed % 5)
            .corrupt_every(64 + seed % 64);
        let limits = ResourceLimits::default().max_record_bytes(1 << 12);
        let run = |workers| {
            run_stream(
                FaultyReader::new(&stream[..], plan.clone()),
                workers,
                ErrorPolicy::SkipMalformed,
                limits,
            )
            .expect("skip mode survives composed faults")
        };
        let (serial, _) = run(1);
        let (parallel, _) = run(4);
        prop_assert_eq!(serial, parallel);
    }
}
