//! Cross-engine agreement: on any well-formed record, all five engines must
//! report exactly the same matches for any supported query. The DOM parser
//! (simplest, fully validating) is the reference.

use jsonski_repro::datagen::{Dataset, GenConfig};
use jsonski_repro::jsonpath::Path;

/// Counts matches with every engine and asserts they agree; returns the
/// agreed count.
fn agreed_count(record: &[u8], query: &str) -> usize {
    let path: Path = query.parse().unwrap();
    let reference = jsonski_repro::domparser::Dom::parse(record)
        .unwrap()
        .count(&path);
    let ski = jsonski_repro::jsonski::JsonSki::new(path.clone())
        .count(record)
        .unwrap();
    assert_eq!(ski, reference, "JSONSki vs DOM on {query}");
    let jp = jsonski_repro::jpstream::JpStream::new(path.clone())
        .count(record)
        .unwrap();
    assert_eq!(jp, reference, "JPStream vs DOM on {query}");
    let tape = jsonski_repro::tapeparser::Tape::build(record)
        .unwrap()
        .count(&path);
    assert_eq!(tape, reference, "tape vs DOM on {query}");
    let pison = jsonski_repro::pison::LeveledIndex::build(record, path.len().max(1)).count(&path);
    assert_eq!(pison, reference, "Pison vs DOM on {query}");
    reference
}

#[test]
fn handcrafted_corpus_all_queries() {
    let records: &[&[u8]] = &[
        br#"{"a": {"b": [1, 2, 3]}, "c": "x"}"#,
        br#"[{"a": 1}, {"a": 2}, [3, 4], "five", null, true]"#,
        br#"{"deep": {"deep": {"deep": {"deep": {"v": 42}}}}}"#,
        br#"{"strings": ["{", "}", "[", "]", ":", ",", "\"", "\\"], "a": 1}"#,
        br#"{"empty_obj": {}, "empty_ary": [], "a": {"b": []}}"#,
        br#"[[[1, 2], [3, 4]], [[5, 6], [7, 8]], [[9]]]"#,
        br#"{"a": [{"a": [{"a": 7}]}]}"#,
        b"  42  ",
        br#"{"mixed": [1, {"x": 2}, [3], "4", null, {"x": 5}]}"#,
    ];
    let queries = [
        "$",
        "$.a",
        "$.a.b",
        "$.a.b[0]",
        "$.a.b[1:3]",
        "$[*]",
        "$[*].a",
        "$[0]",
        "$[2:5]",
        "$[1][0]",
        "$[*][*][1]",
        "$.mixed[*].x",
        "$.deep.deep.deep.deep.v",
        "$.a[*].a[*].a",
        "$.*",
        "$.strings[6]",
        "$.empty_obj.x",
        "$.empty_ary[0]",
    ];
    for record in records {
        for query in queries {
            agreed_count(record, query);
        }
    }
}

#[test]
fn all_paper_cases_agree_on_generated_data() {
    let cfg = GenConfig {
        target_bytes: 128 * 1024,
        seed: 77,
    };
    for ds in Dataset::all() {
        let large = ds.generate_large(&cfg);
        for (id, query) in ds.queries() {
            let n = agreed_count(large.bytes(), query);
            // Selective queries may legitimately find 0 at tiny scale, but
            // the headline per-record queries must match something.
            if matches!(id, "TT2" | "BB1" | "GMD1" | "NSPL2" | "WM2") {
                assert!(n > 0, "{id} found nothing");
            }
        }
    }
}

#[test]
fn small_record_forms_agree_per_record() {
    let cfg = GenConfig {
        target_bytes: 96 * 1024,
        seed: 13,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        for (id, query) in ds.queries() {
            if ds.large_only_queries().contains(&id) {
                continue;
            }
            for record in data.iter().take(10) {
                agreed_count(record, query);
            }
        }
    }
}

#[test]
fn nspl1_matches_column_count() {
    // The NSPL metadata block has exactly 44 column descriptors, matching
    // the paper's 44 matches for NSPL1.
    let cfg = GenConfig {
        target_bytes: 64 * 1024,
        seed: 5,
    };
    let data = Dataset::Nspl.generate_large(&cfg);
    assert_eq!(agreed_count(data.bytes(), "$.mt.vw.co[*].nm"), 44);
}

#[test]
fn wp2_index_window_has_matches() {
    let cfg = GenConfig {
        target_bytes: 512 * 1024,
        seed: 5,
    };
    let data = Dataset::Wp.generate_large(&cfg);
    let n = agreed_count(data.bytes(), "$[10:21].cl.P150[*].ms.pty");
    assert!(n > 0, "the forced P150 window must produce WP2 matches");
}

#[test]
fn record_splitter_agrees_with_generator_offsets() {
    let cfg = GenConfig {
        target_bytes: 64 * 1024,
        seed: 21,
    };
    for ds in Dataset::all() {
        let data = ds.generate_small(&cfg);
        let spans = jsonski_repro::jsonski::split_records(data.bytes())
            .unwrap_or_else(|e| panic!("{}: {e}", ds.name()));
        assert_eq!(spans, data.records(), "{}", ds.name());
    }
}

#[test]
fn run_stream_equals_per_record_runs() {
    let cfg = GenConfig {
        target_bytes: 64 * 1024,
        seed: 22,
    };
    let data = Dataset::Wm.generate_small(&cfg);
    let q = jsonski_repro::jsonski::JsonSki::compile("$.it[*].nm").unwrap();
    let mut stream_hits = 0usize;
    q.run_stream(data.bytes(), |_| stream_hits += 1).unwrap();
    let mut per_record = 0usize;
    for r in data.iter() {
        per_record += q.count(r).unwrap();
    }
    assert_eq!(stream_hits, per_record);
    assert!(stream_hits > 0);
}

#[test]
fn escaped_names_match_consistently_across_engines() {
    // A logical name written in escaped form must match the plain query
    // name in every engine. (Duplicate logical names — the same name
    // spelled two ways in one object — are deliberately NOT tested for
    // agreement: the paper's G4 fast-forward assumes JSON objects have
    // unique names, so JSONSki stops after the first match while the DOM
    // reference reports every duplicate.)
    let record = br#"{"x": 0, "a\/b": 1, "tab\there": {"x": 3}, "plain": 4}"#;
    assert_eq!(agreed_count(record, "$['a/b']"), 1);
    assert_eq!(agreed_count(record, "$.plain"), 1);
    assert_eq!(agreed_count(record, "$['tab\there'].x"), 1);
    let unicode = r#"{"café": 7, "z": 0}"#.as_bytes();
    // `café` via the bracket form (the dot form would also work).
    assert_eq!(agreed_count(unicode, "$['café']"), 1);
}
