//! Bit-parallel JSON block classification primitives.
//!
//! This crate is the shared substrate of the JSONSki reproduction: it turns a
//! JSON byte stream into per-64-byte-block *bitmaps* — one bit per input byte
//! — for the JSON metacharacters (`{`, `}`, `[`, `]`, `:`, `,`), quotes,
//! backslashes, and the derived *string mask* (which bytes lie inside string
//! literals). Every engine that uses bitwise parallelism (the JSONSki core,
//! the simdjson-class tape parser, the Pison-class leveled index) builds on
//! these primitives, mirroring how the paper's Algorithm 3 reuses the
//! metacharacter-bitmap construction of Mison/Pison/simdjson.
//!
//! Bit ordering: bit `i` of a bitmap corresponds to byte `i` of the block
//! (LSB-first), so "the next occurrence" of a character is the lowest set
//! bit (`trailing_zeros`), matching the mirrored-bitmap convention the paper
//! mentions in Section 4.1.
//!
//! # Example
//!
//! ```
//! use simdbits::{Classifier, BLOCK};
//!
//! let json = br#"{"a": "b{racket}", "c": [1, 2]}"#;
//! let mut cls = Classifier::new();
//! let mut padded = [0u8; BLOCK];
//! padded[..json.len()].copy_from_slice(json);
//! let bm = cls.classify(&padded);
//! // The `{` inside the string literal is masked out of the structural bitmap:
//! assert_eq!(bm.lbrace.count_ones(), 1);
//! assert_eq!(bm.lbrace.trailing_zeros(), 0); // only the leading `{`
//! ```

#![deny(missing_docs)]

pub mod bits;
mod block;
mod kernels;
pub mod scan;
mod string_mask;

pub use block::{classify_stream, BlockBitmaps, Blocks, Classifier, PaddedBlocks};
pub use kernels::{best_kernel, forced_kernel, Kernel, RawBitmaps};
pub use string_mask::StringState;

/// Number of bytes classified per step; one bit per byte in each bitmap.
pub const BLOCK: usize = 64;
