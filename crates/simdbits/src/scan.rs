//! Byte-class scanning for validation: bracket, quote, backslash, non-ASCII,
//! and control-byte bitmaps per 64-byte block.
//!
//! The Strict validation mode (simdjson-style validate-as-you-go, Keiser &
//! Lemire) needs a *second*, independent view of each block: it must not
//! consume the structural classifier's bitmaps, or a classifier bug would be
//! invisible to the validator that is supposed to cross-check it. This module
//! recomputes the byte classes the validator cares about with the same
//! kernel family (scalar reference, portable SWAR, SSE2, AVX2) and is
//! property-tested against the scalar reference like the structural kernels.

use crate::{Kernel, BLOCK};

/// Byte-class bitmaps for one 64-byte block (bit `i` ↔ byte `i`, LSB-first).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanBitmaps {
    /// Bitmap of `{` bytes.
    pub lbrace: u64,
    /// Bitmap of `}` bytes.
    pub rbrace: u64,
    /// Bitmap of `[` bytes.
    pub lbracket: u64,
    /// Bitmap of `]` bytes.
    pub rbracket: u64,
    /// Bitmap of `"` bytes.
    pub quote: u64,
    /// Bitmap of `\` bytes.
    pub backslash: u64,
    /// Bitmap of non-ASCII bytes (`>= 0x80`), i.e. UTF-8 lead/continuation.
    pub high: u64,
    /// Bitmap of control bytes (`< 0x20`), illegal unescaped inside strings.
    pub control: u64,
}

impl ScanBitmaps {
    /// Container openers (`{` and `[`).
    #[inline]
    pub fn openers(&self) -> u64 {
        self.lbrace | self.lbracket
    }

    /// Container closers (`}` and `]`).
    #[inline]
    pub fn closers(&self) -> u64 {
        self.rbrace | self.rbracket
    }
}

/// Scans one block with the given kernel.
///
/// SIMD kernels fall back to SWAR under Miri (no vendor intrinsics there);
/// all kernels produce identical bitmaps, enforced by property tests.
#[inline]
pub fn scan_block(kernel: Kernel, block: &[u8; BLOCK]) -> ScanBitmaps {
    match kernel {
        Kernel::Scalar => scan_scalar(block),
        Kernel::Swar => scan_swar(block),
        #[cfg(target_arch = "x86_64")]
        #[allow(unused_variables)]
        k @ (Kernel::Sse2 | Kernel::Avx2) => {
            #[cfg(not(miri))]
            {
                if k == Kernel::Avx2 {
                    // SAFETY: an Avx2 classifier is only constructed on CPUs
                    // where `is_supported()` held (AVX2 detected).
                    return unsafe { scan_avx2(block) };
                }
                // SAFETY: SSE2 is part of the x86_64 baseline.
                return unsafe { scan_sse2(block) };
            }
            #[allow(unreachable_code)]
            scan_swar(block)
        }
    }
}

/// Byte-at-a-time reference scan.
pub fn scan_scalar(block: &[u8; BLOCK]) -> ScanBitmaps {
    let mut bm = ScanBitmaps::default();
    for (i, &b) in block.iter().enumerate() {
        let bit = 1u64 << i;
        match b {
            b'{' => bm.lbrace |= bit,
            b'}' => bm.rbrace |= bit,
            b'[' => bm.lbracket |= bit,
            b']' => bm.rbracket |= bit,
            b'"' => bm.quote |= bit,
            b'\\' => bm.backslash |= bit,
            _ => {}
        }
        if b >= 0x80 {
            bm.high |= bit;
        }
        if b < 0x20 {
            bm.control |= bit;
        }
    }
    bm
}

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
const LOW7: u64 = 0x7F7F_7F7F_7F7F_7F7F;

/// Exact zero-byte detector: 0x80 in each lane whose byte is zero (same
/// formulation as the structural SWAR kernel; no borrow false-positives).
#[inline]
fn swar_zero(word: u64) -> u64 {
    let y = (word & LOW7).wrapping_add(LOW7);
    !(y | word | LOW7)
}

/// Compresses 0x80-per-lane indicators of one word into 8 contiguous bits.
///
/// The multiply gathers lane `i`'s indicator into bit `56 + i`: writing the
/// product as Σ b_i·2^(8i+7) · Σ 2^(7j), the terms landing in the top byte
/// are exactly those with i + j = 7. Verified exhaustively over all 256
/// indicator patterns in the tests below.
#[inline]
fn movemask(indicators: u64) -> u64 {
    (indicators & HI).wrapping_mul(0x0002_0408_1020_4081) >> 56
}

/// Portable SWAR scan (8 bytes at a time).
pub fn scan_swar(block: &[u8; BLOCK]) -> ScanBitmaps {
    #[inline]
    fn eq(word: u64, needle: u8) -> u64 {
        swar_zero(word ^ LO.wrapping_mul(needle as u64))
    }
    let mut bm = ScanBitmaps::default();
    for i in 0..8 {
        let word = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
        let shift = i * 8;
        bm.lbrace |= movemask(eq(word, b'{')) << shift;
        bm.rbrace |= movemask(eq(word, b'}')) << shift;
        bm.lbracket |= movemask(eq(word, b'[')) << shift;
        bm.rbracket |= movemask(eq(word, b']')) << shift;
        bm.quote |= movemask(eq(word, b'"')) << shift;
        bm.backslash |= movemask(eq(word, b'\\')) << shift;
        // Non-ASCII: the sign bit of each lane, already an 0x80 indicator.
        bm.high |= movemask(word & HI) << shift;
        // Control (< 0x20): the top three bits of the lane are all zero.
        bm.control |= movemask(swar_zero(word & 0xE0E0_E0E0_E0E0_E0E0)) << shift;
    }
    bm
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "sse2")]
unsafe fn scan_sse2(block: &[u8; BLOCK]) -> ScanBitmaps {
    use std::arch::x86_64::*;
    #[inline]
    unsafe fn eq(chunk: std::arch::x86_64::__m128i, c: u8) -> u64 {
        use std::arch::x86_64::*;
        _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, _mm_set1_epi8(c as i8))) as u32 as u64
    }
    let ptr = block.as_ptr();
    let top3 = _mm_set1_epi8(0xE0u8 as i8);
    let zero = _mm_setzero_si128();
    let mut bm = ScanBitmaps::default();
    for i in 0..4 {
        let chunk = _mm_loadu_si128(ptr.add(i * 16) as *const __m128i);
        let shift = i * 16;
        bm.lbrace |= eq(chunk, b'{') << shift;
        bm.rbrace |= eq(chunk, b'}') << shift;
        bm.lbracket |= eq(chunk, b'[') << shift;
        bm.rbracket |= eq(chunk, b']') << shift;
        bm.quote |= eq(chunk, b'"') << shift;
        bm.backslash |= eq(chunk, b'\\') << shift;
        // movemask reads the sign bit: exactly the >= 0x80 class.
        bm.high |= (_mm_movemask_epi8(chunk) as u32 as u64) << shift;
        let ctl = _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_and_si128(chunk, top3), zero));
        bm.control |= (ctl as u32 as u64) << shift;
    }
    bm
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn scan_avx2(block: &[u8; BLOCK]) -> ScanBitmaps {
    use std::arch::x86_64::*;
    #[inline]
    unsafe fn eq(chunk: std::arch::x86_64::__m256i, c: u8) -> u64 {
        use std::arch::x86_64::*;
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, _mm256_set1_epi8(c as i8))) as u32 as u64
    }
    let ptr = block.as_ptr();
    let top3 = _mm256_set1_epi8(0xE0u8 as i8);
    let zero = _mm256_setzero_si256();
    let mut bm = ScanBitmaps::default();
    for i in 0..2 {
        let chunk = _mm256_loadu_si256(ptr.add(i * 32) as *const __m256i);
        let shift = i * 32;
        bm.lbrace |= eq(chunk, b'{') << shift;
        bm.rbrace |= eq(chunk, b'}') << shift;
        bm.lbracket |= eq(chunk, b'[') << shift;
        bm.rbracket |= eq(chunk, b']') << shift;
        bm.quote |= eq(chunk, b'"') << shift;
        bm.backslash |= eq(chunk, b'\\') << shift;
        bm.high |= (_mm256_movemask_epi8(chunk) as u32 as u64) << shift;
        let ctl = _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_and_si256(chunk, top3), zero));
        bm.control |= (ctl as u32 as u64) << shift;
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movemask_exhaustive() {
        // 8 independent indicator lanes -> 256 patterns covers the multiply
        // completely (carry pollution from colliding partial products would
        // show up here).
        for pattern in 0u64..256 {
            let mut indicators = 0u64;
            for lane in 0..8 {
                if pattern & (1 << lane) != 0 {
                    indicators |= 0x80 << (lane * 8);
                }
            }
            assert_eq!(movemask(indicators), pattern, "pattern {pattern:#x}");
        }
    }

    #[test]
    fn kernels_agree_on_all_single_bytes() {
        for byte in 0u8..=255 {
            let block = [byte; BLOCK];
            let reference = scan_scalar(&block);
            for &k in Kernel::all() {
                if k.is_supported() {
                    assert_eq!(scan_block(k, &block), reference, "byte {byte} kernel {k:?}");
                }
            }
        }
    }

    #[test]
    fn kernels_agree_on_random_blocks() {
        // Small deterministic LCG over full byte range, incl. invalid UTF-8.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..200 {
            let mut block = [0u8; BLOCK];
            for b in &mut block {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 33) as u8;
            }
            let reference = scan_scalar(&block);
            for &k in Kernel::all() {
                if k.is_supported() {
                    assert_eq!(scan_block(k, &block), reference, "kernel {k:?}");
                }
            }
        }
    }

    #[test]
    fn scalar_classes_are_correct() {
        let mut block = [b'x'; BLOCK];
        block[0] = b'"';
        block[1] = b'\\';
        block[2] = 0x80;
        block[3] = 0xFF;
        block[4] = 0x1F;
        block[5] = 0x00;
        block[6] = 0x20; // space: not a control byte
        block[7] = b'{';
        block[8] = b'}';
        block[9] = b'[';
        block[10] = b']';
        let bm = scan_scalar(&block);
        assert_eq!(bm.quote, 1 << 0);
        assert_eq!(bm.backslash, 1 << 1);
        assert_eq!(bm.high, (1 << 2) | (1 << 3));
        assert_eq!(bm.control, (1 << 4) | (1 << 5));
        assert_eq!(bm.openers(), (1 << 7) | (1 << 9));
        assert_eq!(bm.closers(), (1 << 8) | (1 << 10));
    }
}
