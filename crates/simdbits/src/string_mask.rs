//! Cross-block string-literal tracking: escaped-character detection via the
//! odd-length-backslash-run algorithm and the in-string mask via prefix XOR.
//!
//! This implements the `buildStringBitmap()` dependency of the paper's
//! Algorithm 3 (line 17), using the bit-parallel formulation introduced by
//! Mison/simdjson: a quote is *real* (string-delimiting) iff it is not
//! preceded by an odd-length run of backslashes, and the in-string mask is
//! the prefix XOR of the real-quote bitmap, carried across 64-byte blocks.

use crate::bits::prefix_xor;

const EVEN: u64 = 0x5555_5555_5555_5555;
const ODD: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Carry state for string tracking across consecutive 64-byte blocks.
///
/// Feed blocks in order via [`StringState::step`]; the state records whether
/// the previous block ended inside a string and whether it ended with an
/// odd-length backslash run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StringState {
    /// 1 if the previous block ended with an odd-length backslash run.
    prev_ends_odd_backslash: u64,
    /// All-ones if the previous block ended inside a string literal.
    prev_in_string: u64,
}

impl StringState {
    /// Fresh state: not inside a string, no pending escape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explicit state, for speculative chunk-parallel processing (Pison
    /// style): a chunk may need to re-execute with the true boundary state
    /// after validation.
    pub fn with_state(in_string: bool, pending_escape: bool) -> Self {
        StringState {
            prev_ends_odd_backslash: u64::from(pending_escape),
            prev_in_string: if in_string { u64::MAX } else { 0 },
        }
    }

    /// Whether the last processed block ended with an odd-length backslash
    /// run (the next character is escaped).
    pub fn pending_escape(&self) -> bool {
        self.prev_ends_odd_backslash != 0
    }

    /// Whether the stream is currently inside a string literal (i.e. the last
    /// processed block ended inside one).
    pub fn in_string(&self) -> bool {
        self.prev_in_string != 0
    }

    /// Processes one block given its raw quote and backslash bitmaps.
    ///
    /// Returns `(string_mask, real_quotes)` where `string_mask` has a bit set
    /// for every byte inside a string literal (opening quote inclusive,
    /// closing quote exclusive) and `real_quotes` marks unescaped quotes.
    #[inline]
    pub fn step(&mut self, quotes: u64, backslashes: u64) -> (u64, u64) {
        let escaped = self.find_escaped(backslashes);
        let real_quotes = quotes & !escaped;
        let in_string = fast_prefix_xor(real_quotes) ^ self.prev_in_string;
        // Sign-extend the top bit: all-ones if still inside a string.
        self.prev_in_string = ((in_string as i64) >> 63) as u64;
        (in_string, real_quotes)
    }

    /// Bitmap of characters escaped by an odd-length backslash run
    /// (the character *after* the run), with cross-block carry.
    ///
    /// This is the branch-structured algorithm from "Parsing Gigabytes of
    /// JSON per Second" (Langdale & Lemire), ported bit-for-bit.
    #[inline]
    fn find_escaped(&mut self, backslashes: u64) -> u64 {
        let bs = backslashes;
        // Start-of-run edges (a backslash not preceded by one), adjusted for
        // a run continuing from the previous block.
        let start_edges = bs & !(bs << 1);
        let even_start_mask = EVEN ^ self.prev_ends_odd_backslash;
        let even_starts = start_edges & even_start_mask;
        let odd_starts = start_edges & !even_start_mask;
        let even_carries = bs.wrapping_add(even_starts);
        let (odd_carries, ends_odd) = bs.overflowing_add(odd_starts);
        let odd_carries = odd_carries | self.prev_ends_odd_backslash;
        self.prev_ends_odd_backslash = u64::from(ends_odd);
        let even_carry_ends = even_carries & !bs;
        let odd_carry_ends = odd_carries & !bs;
        let even_start_odd_end = even_carry_ends & ODD;
        let odd_start_even_end = odd_carry_ends & EVEN;
        even_start_odd_end | odd_start_even_end
    }

    /// Resets to the initial (outside-string) state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Prefix XOR via carry-less multiplication by all-ones (the trick
/// simdjson uses), with the shift-XOR ladder as the portable fallback.
/// The equivalence is covered by the kernel property tests (the string
/// masks of every kernel path must agree with the scalar model).
#[inline]
fn fast_prefix_xor(x: u64) -> u64 {
    // Miri does not model the carry-less multiply intrinsic.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            // SAFETY: feature presence checked at runtime just above.
            return unsafe { clmul_prefix_xor(x) };
        }
    }
    prefix_xor(x)
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "pclmulqdq", enable = "sse2")]
unsafe fn clmul_prefix_xor(x: u64) -> u64 {
    use std::arch::x86_64::*;
    let v = _mm_set_epi64x(0, x as i64);
    let ones = _mm_set1_epi8(-1);
    let product = _mm_clmulepi64_si128(v, ones, 0);
    _mm_cvtsi128_si64(product) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::classify_scalar;
    use crate::BLOCK;

    /// Scalar reference: walk bytes tracking escape/in-string state, return
    /// per-block string masks.
    fn reference_masks(input: &[u8]) -> Vec<u64> {
        let mut masks = Vec::new();
        let mut in_string = false;
        let mut escaped = false;
        for chunk in input.chunks(BLOCK) {
            let mut mask = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                if in_string {
                    // Opening quote was already marked; interior bytes are in.
                    if escaped {
                        escaped = false;
                        mask |= 1 << i;
                        continue;
                    }
                    match b {
                        b'\\' => {
                            escaped = true;
                            mask |= 1 << i;
                        }
                        b'"' => in_string = false, // closing quote excluded
                        _ => mask |= 1 << i,
                    }
                } else if b == b'"' {
                    in_string = true;
                    mask |= 1 << i; // opening quote included
                }
            }
            masks.push(mask);
        }
        masks
    }

    fn bitparallel_masks(input: &[u8]) -> Vec<u64> {
        let mut st = StringState::new();
        input
            .chunks(BLOCK)
            .map(|chunk| {
                let mut block = [0u8; 64];
                block[..chunk.len()].copy_from_slice(chunk);
                let raw = classify_scalar(&block);
                let valid = if chunk.len() == BLOCK {
                    u64::MAX
                } else {
                    (1u64 << chunk.len()) - 1
                };
                // Padding bytes carry no data; compare valid bits only.
                st.step(raw.quote, raw.backslash).0 & valid
            })
            .collect()
    }

    #[track_caller]
    fn check(input: &[u8]) {
        assert_eq!(
            bitparallel_masks(input),
            reference_masks(input),
            "input: {:?}",
            String::from_utf8_lossy(input)
        );
    }

    #[test]
    fn simple_string() {
        check(br#"{"name": "value"}"#);
    }

    #[test]
    fn escaped_quote_stays_inside() {
        check(br#"{"a": "x\"y"}"#);
    }

    #[test]
    fn double_backslash_closes() {
        check(br#"{"a": "x\\", "b": 1}"#);
    }

    #[test]
    fn long_backslash_runs() {
        check(br#"{"a": "\\\\\\\"still in", "b": "\\\\\\" }"#);
    }

    #[test]
    fn string_spanning_blocks() {
        let mut v = b"{\"k\": \"".to_vec();
        v.extend(std::iter::repeat_n(b'x', 200));
        v.extend_from_slice(b"\"}");
        check(&v);
    }

    #[test]
    fn backslash_run_spanning_block_boundary() {
        // Put an odd backslash run straddling the 64-byte boundary.
        let mut v = vec![b' '; 60];
        v[0] = b'"';
        v.extend_from_slice(br#"\\\\\\\"after"#); // 7 backslashes then quote
        v.extend(std::iter::repeat_n(b' ', 40));
        check(&v);
    }

    /// Boundary audit: every split of a backslash run across the 64-byte
    /// word boundary, odd and even lengths, in and out of strings. A carry
    /// bug here silently flips string state for the rest of the stream.
    #[test]
    fn backslash_carry_chains_at_every_boundary_split() {
        for run_len in 1usize..=9 {
            for run_start in (64 - run_len).saturating_sub(2)..=64 {
                // Inside a string: `"<pad>\\..\"tail` — the quote after the
                // run is escaped iff the run length is odd.
                let mut v = vec![b'a'; run_start];
                v[0] = b'"';
                v.extend(std::iter::repeat_n(b'\\', run_len));
                v.push(b'"');
                v.extend_from_slice(b"tail ");
                check(&v);

                // Same run followed by a non-quote char, then a real close:
                // exercises the carry without the escaped-quote interaction.
                // (Backslashes *outside* strings are not tested: there the
                // bit-parallel escape detector intentionally diverges from a
                // grammar-aware walker — valid JSON never produces them, and
                // Strict validation rejects such documents outright.)
                let mut v = vec![b'a'; run_start];
                v[0] = b'"';
                v.extend(std::iter::repeat_n(b'\\', run_len));
                if run_len % 2 == 1 {
                    v.push(b'n'); // complete the escape
                }
                v.extend_from_slice(b"x\" ");
                check(&v);
            }
        }
    }

    /// Boundary audit: alternating `\"` pairs straddling the boundary, so the
    /// escaped-quote detector must distinguish run phase across the carry.
    #[test]
    fn escaped_quote_chains_across_boundary() {
        for start in 56..=64 {
            let mut v = vec![b'x'; start];
            v[0] = b'"';
            for _ in 0..8 {
                v.extend_from_slice(br#"\""#);
            }
            v.push(b'"'); // real closing quote
            v.extend_from_slice(b" after");
            check(&v);
        }
    }

    /// Boundary audit: real quotes at positions 63 and 64 (last bit of one
    /// word, first bit of the next) — the prefix-XOR carry sign-extension.
    #[test]
    fn quote_state_spanning_word_boundary() {
        for open in [62usize, 63, 64, 65] {
            for span in [1usize, 2, 64, 65, 127, 128] {
                let mut v = vec![b' '; open];
                v.push(b'"');
                v.extend(std::iter::repeat_n(b'y', span));
                v.push(b'"');
                v.extend_from_slice(b" , ");
                check(&v);
            }
        }
    }

    /// Boundary audit: a backslash run spanning *three* blocks (>128 chars),
    /// so `ends_odd` must propagate through a block that is all backslashes.
    #[test]
    fn backslash_run_spanning_three_blocks() {
        for total in [127usize, 128, 129, 130] {
            let mut v = vec![b'"'; 1];
            v.extend(std::iter::repeat_n(b'z', 62));
            v.extend(std::iter::repeat_n(b'\\', total));
            v.push(b'"');
            v.extend_from_slice(b"rest ");
            check(&v);
        }
    }

    #[test]
    fn metachars_inside_strings_masked() {
        let input = br#"{"a": "{}[]:,\"", "b": [1]}"#;
        let masks = bitparallel_masks(input);
        let mut block = [0u8; BLOCK];
        block[..input.len()].copy_from_slice(input);
        let raw = classify_scalar(&block);
        let structural_lbrace = raw.lbrace & !masks[0];
        assert_eq!(structural_lbrace.count_ones(), 1); // only the outer `{`
        let structural_colon = raw.colon & !masks[0];
        assert_eq!(structural_colon.count_ones(), 2); // after "a" and "b"
    }

    #[test]
    fn in_string_flag_tracks_state() {
        let mut st = StringState::new();
        let mut block = [0u8; BLOCK];
        block[0] = b'"';
        let raw = classify_scalar(&block);
        st.step(raw.quote, raw.backslash);
        assert!(st.in_string());
        st.step(raw.quote, raw.backslash); // another lone quote closes it
        assert!(!st.in_string());
        st.reset();
        assert!(!st.in_string());
    }
}

#[cfg(test)]
mod clmul_tests {
    use super::*;

    #[test]
    fn fast_prefix_xor_equals_portable() {
        for &x in &[
            0u64,
            1,
            u64::MAX,
            0xDEAD_BEEF,
            1 << 63,
            0x5555_5555_5555_5555,
        ] {
            assert_eq!(fast_prefix_xor(x), prefix_xor(x), "{x:#x}");
        }
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(fast_prefix_xor(x), prefix_xor(x), "{x:#x}");
        }
    }
}
