//! Character-classification kernels: scalar reference, SWAR, and x86 SIMD.
//!
//! Each kernel maps a 64-byte block to [`RawBitmaps`] — per-character bitmaps
//! *before* string masking. The scalar kernel is the semantic reference; the
//! SWAR/SSE2/AVX2 kernels are property-tested against it. Runtime dispatch
//! picks the widest kernel the CPU supports.

use crate::BLOCK;

/// Per-character bitmaps for one 64-byte block, prior to string masking.
///
/// Bit `i` set in a field means byte `i` of the block equals that character.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RawBitmaps {
    /// Bitmap of `{` bytes.
    pub lbrace: u64,
    /// Bitmap of `}` bytes.
    pub rbrace: u64,
    /// Bitmap of `[` bytes.
    pub lbracket: u64,
    /// Bitmap of `]` bytes.
    pub rbracket: u64,
    /// Bitmap of `:` bytes.
    pub colon: u64,
    /// Bitmap of `,` bytes.
    pub comma: u64,
    /// Bitmap of `"` bytes.
    pub quote: u64,
    /// Bitmap of `\` bytes.
    pub backslash: u64,
}

/// Selects which classification kernel a [`crate::Classifier`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Byte-at-a-time loop; the semantic reference implementation.
    Scalar,
    /// SIMD-within-a-register over `u64` lanes; portable.
    Swar,
    /// 16-byte `cmpeq`/`movemask`; requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 32-byte `cmpeq`/`movemask`; requires AVX2.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// Returns the widest kernel supported by the running CPU.
///
/// ```
/// let k = simdbits::best_kernel();
/// // Always at least the portable SWAR kernel.
/// assert_ne!(k, simdbits::Kernel::Scalar);
/// ```
pub fn best_kernel() -> Kernel {
    // Miri has no CPU feature detection and does not model vendor
    // intrinsics; the portable SWAR kernel is the widest it can run.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        // SSE2 is part of the x86_64 baseline.
        return Kernel::Sse2;
    }
    #[allow(unreachable_code)]
    Kernel::Swar
}

impl Kernel {
    /// Classifies one 64-byte block with this kernel.
    #[inline]
    pub fn classify(self, block: &[u8; BLOCK]) -> RawBitmaps {
        match self {
            Kernel::Scalar => classify_scalar(block),
            Kernel::Swar => classify_swar(block),
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => unsafe { classify_sse2(block) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { classify_avx2(block) },
        }
    }

    /// All kernels available on this build target (not necessarily this CPU).
    pub fn all() -> &'static [Kernel] {
        #[cfg(target_arch = "x86_64")]
        {
            &[Kernel::Scalar, Kernel::Swar, Kernel::Sse2, Kernel::Avx2]
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            &[Kernel::Scalar, Kernel::Swar]
        }
    }

    /// Whether this CPU can execute the kernel.
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Swar => true,
            // Miri interprets Rust, not x86: vendor intrinsics are
            // unsupported there even though the host CPU has them.
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => !cfg!(miri),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => !cfg!(miri) && std::arch::is_x86_feature_detected!("avx2"),
        }
    }

    /// The canonical lowercase name used by `JSONSKI_KERNEL` and `--kernel`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => "sse2",
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses a kernel name as accepted by `JSONSKI_KERNEL` and `--kernel`.
    ///
    /// Returns `None` for names that are unknown *or* not compiled into this
    /// build target (e.g. `sse2` on non-x86_64), so callers can surface one
    /// uniform "unknown kernel" error.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::all().iter().copied().find(|k| k.name() == name)
    }
}

/// The kernel forced via the `JSONSKI_KERNEL` environment variable, if any.
///
/// Read once per process (the classifier is on the per-block hot path) and
/// cached. An unknown or unsupported value aborts loudly rather than silently
/// falling back — the variable exists for differential verification, where a
/// silent fallback would defeat the point.
pub fn forced_kernel() -> Option<Kernel> {
    static FORCED: std::sync::OnceLock<Option<Kernel>> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        let name = std::env::var("JSONSKI_KERNEL").ok()?;
        let kernel = Kernel::from_name(&name).unwrap_or_else(|| {
            panic!(
                "JSONSKI_KERNEL={name:?} is not a known kernel on this target \
                 (expected one of: {})",
                Kernel::all()
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        });
        assert!(
            kernel.is_supported(),
            "JSONSKI_KERNEL={name:?} is not supported by this CPU"
        );
        Some(kernel)
    })
}

/// Byte-at-a-time reference classification.
pub(crate) fn classify_scalar(block: &[u8; BLOCK]) -> RawBitmaps {
    let mut bm = RawBitmaps::default();
    for (i, &b) in block.iter().enumerate() {
        let bit = 1u64 << i;
        match b {
            b'{' => bm.lbrace |= bit,
            b'}' => bm.rbrace |= bit,
            b'[' => bm.lbracket |= bit,
            b']' => bm.rbracket |= bit,
            b':' => bm.colon |= bit,
            b',' => bm.comma |= bit,
            b'"' => bm.quote |= bit,
            b'\\' => bm.backslash |= bit,
            _ => {}
        }
    }
    bm
}

/// Classic SWAR byte-equality: returns a `u64` where byte lane `i` is 0x80
/// if `word`'s byte `i` equals `needle`, else 0.
#[inline]
fn swar_eq(word: u64, needle: u8) -> u64 {
    const LO: u64 = 0x0101_0101_0101_0101;
    const LOW7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    let x = word ^ (LO.wrapping_mul(needle as u64));
    // Exact zero-byte detector: 0x80 in each lane whose byte is zero. The
    // cheaper `(x - LO) & !x & HI` variant has borrow-induced false
    // positives (e.g. a 0x01 lane directly above a zero lane), caught by
    // the kernel-equivalence property tests.
    let y = (x & LOW7).wrapping_add(LOW7);
    !(y | x | LOW7)
}

/// Compresses the 0x80-per-lane match masks of the 8 words of a block into
/// one bit-per-byte u64 bitmap.
#[inline]
fn swar_gather(words: &[u64; 8], needle: u8) -> u64 {
    let mut out = 0u64;
    for (w, &word) in words.iter().enumerate() {
        let m = swar_eq(word, needle);
        // Move each lane's 0x80 indicator to one bit. Multiplying the
        // 0x80-spaced indicators by the magic constant gathers them into the
        // top byte; simpler and still branch-free: shift each lane down.
        let mut bits = 0u64;
        let mut m2 = m;
        while m2 != 0 {
            let lane = m2.trailing_zeros() / 8;
            bits |= 1 << lane;
            m2 &= m2 - 1;
        }
        out |= bits << (w * 8);
    }
    out
}

/// Portable SWAR classification (8 bytes at a time).
pub(crate) fn classify_swar(block: &[u8; BLOCK]) -> RawBitmaps {
    let mut words = [0u64; 8];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
    }
    RawBitmaps {
        lbrace: swar_gather(&words, b'{'),
        rbrace: swar_gather(&words, b'}'),
        lbracket: swar_gather(&words, b'['),
        rbracket: swar_gather(&words, b']'),
        colon: swar_gather(&words, b':'),
        comma: swar_gather(&words, b','),
        quote: swar_gather(&words, b'"'),
        backslash: swar_gather(&words, b'\\'),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn classify_sse2(block: &[u8; BLOCK]) -> RawBitmaps {
    use std::arch::x86_64::*;
    let ptr = block.as_ptr();
    let chunks = [
        _mm_loadu_si128(ptr as *const __m128i),
        _mm_loadu_si128(ptr.add(16) as *const __m128i),
        _mm_loadu_si128(ptr.add(32) as *const __m128i),
        _mm_loadu_si128(ptr.add(48) as *const __m128i),
    ];
    #[inline]
    unsafe fn eq_mask(chunks: &[std::arch::x86_64::__m128i; 4], c: u8) -> u64 {
        use std::arch::x86_64::*;
        let needle = _mm_set1_epi8(c as i8);
        let mut out = 0u64;
        for (i, &ch) in chunks.iter().enumerate() {
            let m = _mm_movemask_epi8(_mm_cmpeq_epi8(ch, needle)) as u32 as u64;
            out |= m << (i * 16);
        }
        out
    }
    RawBitmaps {
        lbrace: eq_mask(&chunks, b'{'),
        rbrace: eq_mask(&chunks, b'}'),
        lbracket: eq_mask(&chunks, b'['),
        rbracket: eq_mask(&chunks, b']'),
        colon: eq_mask(&chunks, b':'),
        comma: eq_mask(&chunks, b','),
        quote: eq_mask(&chunks, b'"'),
        backslash: eq_mask(&chunks, b'\\'),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn classify_avx2(block: &[u8; BLOCK]) -> RawBitmaps {
    use std::arch::x86_64::*;
    let ptr = block.as_ptr();
    let lo = _mm256_loadu_si256(ptr as *const __m256i);
    let hi = _mm256_loadu_si256(ptr.add(32) as *const __m256i);
    #[inline]
    unsafe fn eq_mask(
        lo: std::arch::x86_64::__m256i,
        hi: std::arch::x86_64::__m256i,
        c: u8,
    ) -> u64 {
        use std::arch::x86_64::*;
        let needle = _mm256_set1_epi8(c as i8);
        let ml = _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)) as u32 as u64;
        let mh = _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)) as u32 as u64;
        ml | (mh << 32)
    }
    RawBitmaps {
        lbrace: eq_mask(lo, hi, b'{'),
        rbrace: eq_mask(lo, hi, b'}'),
        lbracket: eq_mask(lo, hi, b'['),
        rbracket: eq_mask(lo, hi, b']'),
        colon: eq_mask(lo, hi, b':'),
        comma: eq_mask(lo, hi, b','),
        quote: eq_mask(lo, hi, b'"'),
        backslash: eq_mask(lo, hi, b'\\'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> [u8; BLOCK] {
        let mut b = [b' '; BLOCK];
        let s = br#"{"k": [1, 2, {"x\"y": "z"}], "m": null}  {}[],:"\"#;
        b[..s.len()].copy_from_slice(s);
        b
    }

    #[test]
    fn kernels_agree_on_sample() {
        let block = sample_block();
        let reference = classify_scalar(&block);
        for &k in Kernel::all() {
            if k.is_supported() {
                assert_eq!(k.classify(&block), reference, "kernel {k:?}");
            }
        }
    }

    #[test]
    fn kernels_agree_on_all_single_bytes() {
        for byte in 0u8..=255 {
            let block = [byte; BLOCK];
            let reference = classify_scalar(&block);
            for &k in Kernel::all() {
                if k.is_supported() {
                    assert_eq!(k.classify(&block), reference, "byte {byte} kernel {k:?}");
                }
            }
        }
    }

    #[test]
    fn best_kernel_is_supported() {
        assert!(best_kernel().is_supported());
    }

    #[test]
    fn kernel_names_round_trip() {
        for &k in Kernel::all() {
            assert_eq!(Kernel::from_name(k.name()), Some(k), "kernel {k:?}");
        }
        assert_eq!(Kernel::from_name("neon"), None);
        assert_eq!(Kernel::from_name("SWAR"), None, "names are lowercase");
    }

    #[test]
    fn scalar_positions_are_correct() {
        let mut block = [b'x'; BLOCK];
        block[0] = b'{';
        block[63] = b'}';
        block[10] = b'"';
        let bm = classify_scalar(&block);
        assert_eq!(bm.lbrace, 1);
        assert_eq!(bm.rbrace, 1 << 63);
        assert_eq!(bm.quote, 1 << 10);
        assert_eq!(bm.comma, 0);
    }
}
