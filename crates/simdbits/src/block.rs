//! Streaming block classification: raw kernels + string masking + padding.

use crate::kernels::{best_kernel, Kernel, RawBitmaps};
use crate::string_mask::StringState;
use crate::BLOCK;

/// Structural bitmaps for one 64-byte block, with in-string
/// pseudo-metacharacters already removed (paper Algorithm 3, lines 16-20).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockBitmaps {
    /// `{` outside strings.
    pub lbrace: u64,
    /// `}` outside strings.
    pub rbrace: u64,
    /// `[` outside strings.
    pub lbracket: u64,
    /// `]` outside strings.
    pub rbracket: u64,
    /// `:` outside strings.
    pub colon: u64,
    /// `,` outside strings.
    pub comma: u64,
    /// Unescaped `"` characters (both string delimiters).
    pub quote: u64,
    /// Bytes inside string literals (opening quote incl., closing excl.).
    pub string_mask: u64,
}

impl BlockBitmaps {
    /// Size of one serialized block: eight little-endian `u64` lanes.
    pub const WIRE_BYTES: usize = 64;

    /// Serializes the bitmaps to their on-disk wire form: the eight lanes
    /// as little-endian `u64`s, in declaration order (`lbrace`, `rbrace`,
    /// `lbracket`, `rbracket`, `colon`, `comma`, `quote`, `string_mask`).
    /// The layout is versioned by the containing file format (a persistent
    /// index bumps its magic when this changes), not self-describing.
    #[inline]
    pub fn to_wire(&self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        for (i, lane) in self.lanes().into_iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }

    /// Deserializes bitmaps previously produced by [`to_wire`]. Total — any
    /// 64 bytes decode to *some* bitmaps, so integrity must come from the
    /// containing format's checksums.
    ///
    /// [`to_wire`]: Self::to_wire
    #[inline]
    pub fn from_wire(wire: &[u8; Self::WIRE_BYTES]) -> Self {
        let lane =
            |i: usize| u64::from_le_bytes(wire[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
        BlockBitmaps {
            lbrace: lane(0),
            rbrace: lane(1),
            lbracket: lane(2),
            rbracket: lane(3),
            colon: lane(4),
            comma: lane(5),
            quote: lane(6),
            string_mask: lane(7),
        }
    }

    #[inline]
    fn lanes(&self) -> [u64; 8] {
        [
            self.lbrace,
            self.rbrace,
            self.lbracket,
            self.rbracket,
            self.colon,
            self.comma,
            self.quote,
            self.string_mask,
        ]
    }

    /// Returns the structural bitmap for metacharacter `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not one of `{ } [ ] : ,`.
    #[inline]
    pub fn structural(&self, c: u8) -> u64 {
        match c {
            b'{' => self.lbrace,
            b'}' => self.rbrace,
            b'[' => self.lbracket,
            b']' => self.rbracket,
            b':' => self.colon,
            b',' => self.comma,
            _ => panic!("not a JSON metacharacter: {:?}", c as char),
        }
    }

    /// Union of `{` and `[` (any opener), used by the enhanced G1 functions.
    #[inline]
    pub fn openers(&self) -> u64 {
        self.lbrace | self.lbracket
    }

    /// Union of `}` and `]` (any closer).
    #[inline]
    pub fn closers(&self) -> u64 {
        self.rbrace | self.rbracket
    }
}

/// Stateful block classifier: applies a [`Kernel`] and carries string state
/// across blocks.
///
/// # Example
///
/// ```
/// use simdbits::{Classifier, BLOCK};
/// let mut cls = Classifier::new();
/// let mut block = [b' '; BLOCK];
/// block[..13].copy_from_slice(br#"{"a": [1, 2]}"#);
/// let bm = cls.classify(&block);
/// assert_eq!(bm.comma.count_ones(), 1);
/// assert_eq!(bm.colon.count_ones(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Classifier {
    kernel: Kernel,
    strings: StringState,
}

impl Default for Classifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier {
    /// Creates a classifier using the widest kernel this CPU supports, unless
    /// the `JSONSKI_KERNEL` environment variable forces one for differential
    /// verification (see [`crate::forced_kernel`]).
    pub fn new() -> Self {
        Self::with_kernel(crate::forced_kernel().unwrap_or_else(best_kernel))
    }

    /// Creates a classifier pinned to a specific kernel (used by the kernel
    /// benchmarks and the equivalence tests).
    pub fn with_kernel(kernel: Kernel) -> Self {
        assert!(kernel.is_supported(), "kernel {kernel:?} not supported");
        Self {
            kernel,
            strings: StringState::new(),
        }
    }

    /// The kernel in use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Classifies the next 64-byte block of the stream.
    #[inline]
    pub fn classify(&mut self, block: &[u8; BLOCK]) -> BlockBitmaps {
        let raw = self.kernel.classify(block);
        self.masked(raw)
    }

    /// Classifies a possibly-short tail block by zero-padding to 64 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `tail.len() > BLOCK`.
    #[inline]
    pub fn classify_tail(&mut self, tail: &[u8]) -> BlockBitmaps {
        assert!(tail.len() <= BLOCK);
        let mut block = [0u8; BLOCK];
        block[..tail.len()].copy_from_slice(tail);
        self.classify(&block)
    }

    #[inline]
    fn masked(&mut self, raw: RawBitmaps) -> BlockBitmaps {
        let (string_mask, real_quotes) = self.strings.step(raw.quote, raw.backslash);
        let keep = !string_mask;
        BlockBitmaps {
            lbrace: raw.lbrace & keep,
            rbrace: raw.rbrace & keep,
            lbracket: raw.lbracket & keep,
            rbracket: raw.rbracket & keep,
            colon: raw.colon & keep,
            comma: raw.comma & keep,
            quote: real_quotes,
            string_mask,
        }
    }

    /// Whether the classified stream currently ends inside a string literal.
    pub fn in_string(&self) -> bool {
        self.strings.in_string()
    }

    /// Resets all cross-block state (for reuse on a new stream).
    pub fn reset(&mut self) {
        self.strings.reset();
    }
}

/// Classifies every word of `input` in order, calling `f(word_index,
/// bitmaps)` for each. Full words are classified in place (no copy); only
/// the final short word is zero-padded. This is the preferred whole-stream
/// driver for index builders.
///
/// ```
/// use simdbits::{classify_stream, Classifier};
/// let mut commas = 0;
/// let data = vec![b','; 100];
/// classify_stream(&mut Classifier::new(), &data, |_w, bm| {
///     commas += bm.comma.count_ones();
/// });
/// assert_eq!(commas, 100);
/// ```
#[inline]
pub fn classify_stream(cls: &mut Classifier, input: &[u8], mut f: impl FnMut(usize, BlockBitmaps)) {
    let mut blocks = Blocks::new(input);
    let mut w = 0usize;
    for block in blocks.by_ref() {
        f(w, cls.classify(block));
        w += 1;
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        f(w, cls.classify_tail(tail));
    }
}

/// Iterator over the full 64-byte blocks of a byte slice (no padding; the
/// tail shorter than 64 bytes is available via [`Blocks::remainder`]).
#[derive(Clone, Debug)]
pub struct Blocks<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> Blocks<'a> {
    /// Creates a block iterator over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, offset: 0 }
    }

    /// The trailing bytes (fewer than 64) not yielded by the iterator.
    pub fn remainder(&self) -> &'a [u8] {
        let start = self.data.len() - self.data.len() % BLOCK;
        &self.data[start..]
    }
}

impl<'a> Iterator for Blocks<'a> {
    type Item = &'a [u8; BLOCK];

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset + BLOCK <= self.data.len() {
            let block: &[u8; BLOCK] = self.data[self.offset..self.offset + BLOCK]
                .try_into()
                .expect("exact block");
            self.offset += BLOCK;
            Some(block)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.data.len() - self.offset) / BLOCK;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Blocks<'_> {}

/// Iterator yielding every block of a byte slice, zero-padding the final
/// short block, together with the number of valid bytes in it.
#[derive(Clone, Debug)]
pub struct PaddedBlocks<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> PaddedBlocks<'a> {
    /// Creates a padded block iterator over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, offset: 0 }
    }
}

impl Iterator for PaddedBlocks<'_> {
    /// `(block, valid_len)` — `valid_len < BLOCK` only for the final block.
    type Item = ([u8; BLOCK], usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.data.len() {
            return None;
        }
        let mut block = [0u8; BLOCK];
        let n = (self.data.len() - self.offset).min(BLOCK);
        block[..n].copy_from_slice(&self.data[self.offset..self.offset + n]);
        self.offset += n;
        Some((block, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_lookup_covers_all_metachars() {
        let bm = BlockBitmaps {
            lbrace: 1,
            rbrace: 2,
            lbracket: 4,
            rbracket: 8,
            colon: 16,
            comma: 32,
            ..Default::default()
        };
        assert_eq!(bm.structural(b'{'), 1);
        assert_eq!(bm.structural(b'}'), 2);
        assert_eq!(bm.structural(b'['), 4);
        assert_eq!(bm.structural(b']'), 8);
        assert_eq!(bm.structural(b':'), 16);
        assert_eq!(bm.structural(b','), 32);
        assert_eq!(bm.openers(), 5);
        assert_eq!(bm.closers(), 10);
    }

    #[test]
    #[should_panic(expected = "not a JSON metacharacter")]
    fn structural_rejects_non_metachar() {
        BlockBitmaps::default().structural(b'x');
    }

    #[test]
    fn wire_roundtrip_preserves_every_lane() {
        let bm = BlockBitmaps {
            lbrace: 0x0123_4567_89ab_cdef,
            rbrace: u64::MAX,
            lbracket: 1,
            rbracket: 1 << 63,
            colon: 0xdead_beef,
            comma: 0,
            quote: 0xaaaa_5555_aaaa_5555,
            string_mask: 0x00ff_00ff_00ff_00ff,
        };
        assert_eq!(BlockBitmaps::from_wire(&bm.to_wire()), bm);
    }

    #[test]
    fn wire_format_is_little_endian_in_lane_order() {
        let bm = BlockBitmaps {
            lbrace: 0x0102_0304_0506_0708,
            string_mask: 0x1112_1314_1516_1718,
            ..Default::default()
        };
        let wire = bm.to_wire();
        assert_eq!(wire[0], 0x08); // lbrace, least-significant byte first
        assert_eq!(wire[7], 0x01);
        assert_eq!(wire[56], 0x18); // string_mask is the final lane
        assert_eq!(&wire[8..56], &[0u8; 48]); // untouched lanes serialize as zero
    }

    #[test]
    fn blocks_iterator_splits_exactly() {
        let data = vec![b'a'; 200];
        let mut it = Blocks::new(&data);
        assert_eq!(it.len(), 3);
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.remainder().len(), 200 - 192);
    }

    #[test]
    fn padded_blocks_cover_everything() {
        let data = vec![b'x'; 130];
        let blocks: Vec<_> = PaddedBlocks::new(&data).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].1, 64);
        assert_eq!(blocks[2].1, 2);
        assert_eq!(blocks[2].0[2], 0); // padded
    }

    #[test]
    fn padded_blocks_empty_input() {
        assert_eq!(PaddedBlocks::new(b"").count(), 0);
    }

    #[test]
    fn classifier_masks_string_contents_across_blocks() {
        let mut json = b"{\"k\": \"".to_vec();
        json.extend(std::iter::repeat_n(b'{', 100)); // braces inside string
        json.extend_from_slice(b"\", \"j\": {}}");
        let mut cls = Classifier::new();
        let mut lbrace_count = 0u32;
        for (block, _) in PaddedBlocks::new(&json) {
            lbrace_count += cls.classify(&block).lbrace.count_ones();
        }
        assert_eq!(lbrace_count, 2); // outer `{` and the `{}` value
    }

    #[test]
    fn classify_tail_pads() {
        let mut cls = Classifier::new();
        let bm = cls.classify_tail(b"[1,2]");
        assert_eq!(bm.comma.count_ones(), 1);
        assert_eq!(bm.lbracket, 1);
        assert_eq!(bm.rbracket, 1 << 4);
    }

    #[test]
    fn all_supported_kernels_agree_through_classifier() {
        let json = br#"{"a": "\\\" {fake}", "b": [1, {"c": 2}], "d": "x"}"#;
        let reference: Vec<_> = {
            let mut c = Classifier::with_kernel(Kernel::Scalar);
            PaddedBlocks::new(json)
                .map(|(b, _)| c.classify(&b))
                .collect()
        };
        for &k in Kernel::all() {
            if !k.is_supported() {
                continue;
            }
            let mut c = Classifier::with_kernel(k);
            let got: Vec<_> = PaddedBlocks::new(json)
                .map(|(b, _)| c.classify(&b))
                .collect();
            assert_eq!(got, reference, "kernel {k:?}");
        }
    }
}
