//! Word-level bit manipulation helpers used by the interval and pairing
//! algorithms (paper Algorithm 3 and the counting-based pairing strategy of
//! Section 4.2).

/// Computes the prefix XOR (cumulative XOR, inclusive) of all bits in `x`.
///
/// Given a bitmap of unescaped quotes, the prefix XOR yields the in-string
/// mask: bits from each opening quote (inclusive) up to its closing quote
/// (exclusive) are set. This is the portable equivalent of the
/// carry-less-multiply-by-all-ones trick used by simdjson.
///
/// ```
/// // quotes at positions 1 and 4 -> bits 1..=3 are "inside"
/// assert_eq!(simdbits::bits::prefix_xor(0b1_0010), 0b0_1110);
/// ```
#[inline]
pub fn prefix_xor(x: u64) -> u64 {
    let mut x = x;
    x ^= x << 1;
    x ^= x << 2;
    x ^= x << 4;
    x ^= x << 8;
    x ^= x << 16;
    x ^= x << 32;
    x
}

/// Returns the position of the `k`-th (1-based) set bit of `x`, or `None`
/// if `x` has fewer than `k` set bits.
///
/// This is the `getPosition(bitmap, k)` primitive of the paper's Algorithm 4
/// (line 15): once the counting strategy knows the object ends at the
/// `num_open`-th `}` within an interval, `select` finds its byte offset.
///
/// ```
/// assert_eq!(simdbits::bits::select(0b1011, 1), Some(0));
/// assert_eq!(simdbits::bits::select(0b1011, 3), Some(3));
/// assert_eq!(simdbits::bits::select(0b1011, 4), None);
/// ```
#[inline]
pub fn select(x: u64, k: u32) -> Option<u32> {
    if k == 0 || x.count_ones() < k {
        return None;
    }
    let mut x = x;
    for _ in 1..k {
        x &= x - 1; // clear lowest set bit
    }
    Some(x.trailing_zeros())
}

/// Clears the lowest set bit of `x` (the `bitmap & (bitmap - 1)` idiom from
/// Algorithm 3, line 27).
///
/// ```
/// assert_eq!(simdbits::bits::clear_lowest(0b1100), 0b1000);
/// assert_eq!(simdbits::bits::clear_lowest(0), 0);
/// ```
#[inline]
pub fn clear_lowest(x: u64) -> u64 {
    x & x.wrapping_sub(1)
}

/// Isolates the lowest set bit of `x` (the `bitmap & -bitmap` idiom from
/// Algorithm 3, line 26). Returns 0 when `x` is 0.
///
/// ```
/// assert_eq!(simdbits::bits::lowest(0b1100), 0b0100);
/// assert_eq!(simdbits::bits::lowest(0), 0);
/// ```
#[inline]
pub fn lowest(x: u64) -> u64 {
    x & x.wrapping_neg()
}

/// Builds a mask with all bits strictly below position `pos` set.
///
/// `pos` may be 64, in which case the mask is all ones.
///
/// # Panics
///
/// Panics in debug builds if `pos > 64`.
///
/// ```
/// assert_eq!(simdbits::bits::mask_below(3), 0b111);
/// assert_eq!(simdbits::bits::mask_below(0), 0);
/// assert_eq!(simdbits::bits::mask_below(64), u64::MAX);
/// ```
#[inline]
pub fn mask_below(pos: u32) -> u64 {
    debug_assert!(pos <= 64);
    if pos >= 64 {
        u64::MAX
    } else {
        (1u64 << pos) - 1
    }
}

/// Builds the interval bitmap between the lowest set bit of `start_bit` and
/// the lowest set bit of `end_bit` (exclusive), i.e. `b_end - b_start` from
/// Algorithm 3 line 8. Both inputs must be single-bit masks with
/// `start_bit <= end_bit`; an `end_bit` of 0 means "no end within this word"
/// and yields all bits from the start upward.
///
/// ```
/// let start = 1u64 << 2;
/// let end = 1u64 << 5;
/// assert_eq!(simdbits::bits::span(start, end), 0b011100);
/// assert_eq!(simdbits::bits::span(start, 0), u64::MAX << 2);
/// ```
#[inline]
pub fn span(start_bit: u64, end_bit: u64) -> u64 {
    debug_assert!(start_bit.count_ones() <= 1 && end_bit.count_ones() <= 1);
    if end_bit == 0 {
        start_bit.wrapping_neg() // all bits >= start
    } else {
        end_bit.wrapping_sub(start_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix_xor_ref(x: u64) -> u64 {
        let mut acc = 0u64;
        let mut out = 0u64;
        for i in 0..64 {
            acc ^= (x >> i) & 1;
            out |= acc << i;
        }
        out
    }

    #[test]
    fn prefix_xor_matches_reference_on_patterns() {
        for &x in &[
            0u64,
            1,
            u64::MAX,
            0b1_0010,
            0xDEAD_BEEF_CAFE_BABE,
            1 << 63,
            (1 << 63) | 1,
        ] {
            assert_eq!(prefix_xor(x), prefix_xor_ref(x), "x={x:#x}");
        }
    }

    #[test]
    fn prefix_xor_matches_reference_exhaustive_low_bits() {
        for x in 0u64..4096 {
            assert_eq!(prefix_xor(x), prefix_xor_ref(x));
        }
    }

    #[test]
    fn select_finds_every_bit() {
        let x = 0b1010_1100u64;
        let positions: Vec<u32> = (0..64).filter(|i| x >> i & 1 == 1).collect();
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(select(x, k as u32 + 1), Some(p));
        }
        assert_eq!(select(x, positions.len() as u32 + 1), None);
        assert_eq!(select(x, 0), None);
        assert_eq!(select(0, 1), None);
    }

    #[test]
    fn select_full_word() {
        assert_eq!(select(u64::MAX, 64), Some(63));
        assert_eq!(select(u64::MAX, 1), Some(0));
    }

    #[test]
    fn span_covers_expected_bits() {
        assert_eq!(span(1, 1 << 63), (1u64 << 63) - 1);
        assert_eq!(span(1 << 10, 1 << 10), 0);
        assert_eq!(span(1, 0), u64::MAX);
    }

    #[test]
    fn mask_below_boundaries() {
        assert_eq!(mask_below(1), 1);
        assert_eq!(mask_below(63), u64::MAX >> 1);
    }

    #[test]
    fn lowest_and_clear_lowest_roundtrip() {
        let x = 0b10110100u64;
        assert_eq!(lowest(x) | clear_lowest(x), x);
        assert_eq!(lowest(x) & clear_lowest(x), 0);
    }
}
