//! Property tests: every SIMD kernel is bit-for-bit equivalent to the
//! scalar reference, and the string mask matches a byte-at-a-time model on
//! arbitrary inputs (including pathological backslash runs).

use proptest::prelude::*;
use simdbits::scan::{scan_block, scan_scalar};
use simdbits::{bits, Classifier, Kernel, PaddedBlocks, BLOCK};

/// Arbitrary bytes biased towards JSON metacharacters, quotes, and
/// backslashes so the interesting code paths fire constantly.
fn spicy_bytes(max_len: usize) -> BoxedStrategy<Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            4 => prop::num::u8::ANY,
            1 => Just(b'"'),
            2 => Just(b'\\'),
            1 => Just(b'{'),
            1 => Just(b'}'),
            1 => Just(b'['),
            1 => Just(b']'),
            1 => Just(b':'),
            1 => Just(b','),
        ],
        0..max_len,
    )
    .boxed()
}

/// Scalar model of the classifier: tracks in-string/escape state byte by
/// byte and reports per-block structural bitmaps.
fn scalar_model(input: &[u8]) -> Vec<[u64; 7]> {
    let mut out = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for chunk in input.chunks(BLOCK) {
        // [lbrace, rbrace, lbracket, rbracket, colon, comma, quote]
        let mut maps = [0u64; 7];
        for (i, &b) in chunk.iter().enumerate() {
            let bit = 1u64 << i;
            if in_string {
                if escaped {
                    escaped = false;
                } else {
                    match b {
                        b'\\' => escaped = true,
                        b'"' => {
                            in_string = false;
                            maps[6] |= bit;
                        }
                        _ => {}
                    }
                }
            } else {
                // Outside strings a backslash is not valid JSON; the
                // bit-parallel escape logic still neutralizes a *quote*
                // after an odd backslash run, but structural characters
                // are only masked by the string mask, so they stay
                // structural even when "escaped". Mirror that exactly.
                let was_escaped = escaped;
                escaped = false;
                match b {
                    b'{' => maps[0] |= bit,
                    b'}' => maps[1] |= bit,
                    b'[' => maps[2] |= bit,
                    b']' => maps[3] |= bit,
                    b':' => maps[4] |= bit,
                    b',' => maps[5] |= bit,
                    b'"' if !was_escaped => {
                        in_string = true;
                        maps[6] |= bit;
                    }
                    b'"' => {} // escaped quote outside a string: not real
                    b'\\' if !was_escaped => escaped = true,
                    _ => {}
                }
            }
        }
        out.push(maps);
    }
    out
}

fn classified(input: &[u8], kernel: Kernel) -> Vec<[u64; 7]> {
    let mut cls = Classifier::with_kernel(kernel);
    PaddedBlocks::new(input)
        .map(|(block, len)| {
            let bm = cls.classify(&block);
            let valid = if len == BLOCK {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            [
                bm.lbrace & valid,
                bm.rbrace & valid,
                bm.lbracket & valid,
                bm.rbracket & valid,
                bm.colon & valid,
                bm.comma & valid,
                bm.quote & valid,
            ]
        })
        .collect()
}

/// Adversarial inputs engineered to straddle 64-byte word boundaries:
/// a padding shift places a sequence of hostile segments (backslash runs,
/// quote-carry chains, metachar bursts) at every alignment relative to the
/// block grid, so carry bugs that only fire at bit 63/0 are exercised.
fn boundary_straddling() -> BoxedStrategy<Vec<u8>> {
    let segment = prop_oneof![
        // Backslash run of adversarial length (odd/even, spanning words).
        (1usize..130).prop_map(|n| vec![b'\\'; n]),
        // Quote-carry chain: alternating escaped quotes.
        (1usize..40).prop_map(|n| br#"\""#.repeat(n)),
        // A lone real quote toggling string state.
        Just(vec![b'"']),
        // Metachar burst that must be masked iff inside a string.
        Just(b"{}[]:,".to_vec()),
        // Neutral filler.
        (1usize..20).prop_map(|n| vec![b'x'; n]),
    ];
    (0usize..BLOCK, prop::collection::vec(segment, 1..12))
        .prop_map(|(shift, segments)| {
            let mut v = vec![b' '; shift];
            for s in segments {
                v.extend_from_slice(&s);
            }
            v
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_kernels_agree_on_boundary_straddling_input(input in boundary_straddling()) {
        let reference = classified(&input, Kernel::Scalar);
        for &k in Kernel::all() {
            if k.is_supported() {
                prop_assert_eq!(&classified(&input, k), &reference, "kernel {:?}", k);
            }
        }
    }

    #[test]
    fn bitparallel_matches_scalar_model_on_boundary_straddling(input in boundary_straddling()) {
        let got = classified(&input, Kernel::Scalar);
        let want = scalar_model(&input);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_kernels_agree_with_scalar(input in prop::collection::vec(any::<u8>(), BLOCK..BLOCK + 1)) {
        let block: [u8; BLOCK] = input.try_into().unwrap();
        let reference = scan_scalar(&block);
        for &k in Kernel::all() {
            if k.is_supported() {
                prop_assert_eq!(scan_block(k, &block), reference, "kernel {:?}", k);
            }
        }
    }

    #[test]
    fn all_kernels_agree_with_each_other(input in spicy_bytes(300)) {
        let reference = classified(&input, Kernel::Scalar);
        for &k in Kernel::all() {
            if k.is_supported() {
                prop_assert_eq!(&classified(&input, k), &reference, "kernel {:?}", k);
            }
        }
    }

    #[test]
    fn bitparallel_matches_scalar_model(input in spicy_bytes(300)) {
        let got = classified(&input, Kernel::Scalar);
        let want = scalar_model(&input);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn select_matches_naive(x in any::<u64>(), k in 1u32..=64) {
        let naive = (0..64u32).filter(|i| x >> i & 1 == 1).nth(k as usize - 1);
        prop_assert_eq!(bits::select(x, k), naive);
    }

    #[test]
    fn prefix_xor_matches_naive(x in any::<u64>()) {
        let mut acc = 0u64;
        let mut want = 0u64;
        for i in 0..64 {
            acc ^= (x >> i) & 1;
            want |= acc << i;
        }
        prop_assert_eq!(bits::prefix_xor(x), want);
    }
}
