//! Ablation benchmarks for the paper's core mechanisms: how much does
//! bit-parallel fast-forwarding buy over character-at-a-time skipping?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jsonski::cursor::Cursor;
use jsonski::fastforward::{go_over_obj, go_to_attr_with_opener};
use jsonski::{FastForwardStats, Group};

/// A large object value with nesting, strings containing braces, and many
/// attributes — the thing `goOverObj` must skip.
fn big_object(kib: usize) -> Vec<u8> {
    let mut v = b"{".to_vec();
    let mut i = 0;
    while v.len() < kib * 1024 {
        v.extend_from_slice(
            format!(
                r#""k{i}": {{"s": "brace {{ inside \" str", "n": {i}, "a": [1, 2, {{"d": 3}}]}}, "#
            )
            .as_bytes(),
        );
        i += 1;
    }
    v.extend_from_slice(br#""end": 0}"#);
    v
}

/// Character-at-a-time object skip (what a conventional streaming parser
/// must do): tracks strings, escapes, and depth byte by byte.
fn scalar_skip_object(input: &[u8]) -> usize {
    debug_assert_eq!(input[0], b'{');
    let mut depth = 0i64;
    let mut in_string = false;
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    input.len()
}

fn bench_skip_object(c: &mut Criterion) {
    let data = big_object(512);
    let mut g = c.benchmark_group("skip_object");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(20);
    g.bench_function("bitparallel_counting_pairing", |b| {
        b.iter(|| {
            let mut cur = Cursor::new(&data);
            let mut st = FastForwardStats::new();
            go_over_obj(&mut cur, &mut st, Group::G2).unwrap().1
        })
    });
    g.bench_function("character_at_a_time", |b| {
        b.iter(|| scalar_skip_object(&data))
    });
    g.bench_function("full_dom_parse", |b| {
        b.iter(|| domparser::Dom::parse(&data).unwrap().root().len())
    });
    g.finish();
}

/// An object whose first N attributes are primitives/arrays and whose last
/// attribute is the object the query wants — the G1 seek workload.
fn attr_haystack(n: usize) -> Vec<u8> {
    let mut v = b"{".to_vec();
    for i in 0..n {
        match i % 3 {
            0 => v.extend_from_slice(format!(r#""p{i}": {i}, "#).as_bytes()),
            1 => v.extend_from_slice(format!(r#""s{i}": "text {i}", "#).as_bytes()),
            _ => v.extend_from_slice(format!(r#""a{i}": [{i}, {i}], "#).as_bytes()),
        }
    }
    v.extend_from_slice(br#""target": {"x": 1}}"#);
    v
}

fn bench_attr_seek(c: &mut Criterion) {
    let data = attr_haystack(2000);
    let body = &data[1..]; // inside the object, as object() sees it
    let mut g = c.benchmark_group("attr_seek");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(20);
    g.bench_function("g1_colon_intervals", |b| {
        b.iter(|| {
            let mut cur = Cursor::new(body);
            let mut st = FastForwardStats::new();
            go_to_attr_with_opener(&mut cur, &mut st, b'{')
                .unwrap()
                .expect("target found")
        })
    });
    // Baseline: the JPStream-class engine tokenizes every name/value.
    let query = jpstream::JpStream::compile("$.target.x").unwrap();
    g.bench_function("tokenize_every_attribute", |b| {
        b.iter(|| query.count(&data).unwrap())
    });
    // And the full JSONSki engine end to end for the same query.
    let ski = jsonski::JsonSki::compile("$.target.x").unwrap();
    g.bench_function("jsonski_end_to_end", |b| {
        b.iter(|| ski.count(&data).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_skip_object, bench_attr_seek);
criterion_main!(benches);
