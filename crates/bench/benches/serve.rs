//! `serve_guard`: guardrail benchmarks for the `jsonski serve` daemon.
//!
//! Two sections:
//!
//! * `serve_latency` — criterion round-trip latency of a single in-flight
//!   request over TCP loopback, per query shape (the no-contention floor).
//! * `serve_guard` — a closed-loop saturation run at ~2× admitted
//!   capacity (client concurrency = 2 × (workers + queue slots)),
//!   reporting sustained QPS, p50/p99 latency of completed requests, and
//!   the shed rate. The guardrail: under overload the daemon keeps
//!   answering — every request gets a typed response (200 or 429), none
//!   hang, and throughput holds near the worker pool's capacity.
//! * `serve_stream` — the same large wildcard query answered
//!   materialized (one frame) vs streamed (chunked frames), reporting
//!   per-mode QPS, p50/p99 latency, and the server's peak tracked
//!   response buffering (`mem_peak_bytes`). The guardrail: both modes
//!   return byte-identical bodies, and streaming's high-water buffer
//!   stays bounded by the chunk size instead of the response size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use jsonski_serve::{Client, ServeConfig, Server};

/// NDJSON body of `n` records shaped for the price queries below.
fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn start(
    config: ServeConfig,
) -> (
    std::thread::JoinHandle<()>,
    String,
    jsonski::CancellationToken,
) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || {
        server.run().expect("serve");
    });
    (handle, addr, token)
}

fn bench_serve_latency(c: &mut Criterion) {
    let (handle, addr, token) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let body = ndjson(200);
    let mut g = c.benchmark_group("serve_latency");
    g.sample_size(20);
    for (name, query) in [
        ("direct", "$.items[*].price"),
        ("descendant", "$..price"),
        ("ping", ""),
    ] {
        let mut client = Client::connect_tcp(&addr).expect("connect");
        g.bench_function(name, |b| {
            b.iter(|| {
                let resp = if query.is_empty() {
                    client.ping().expect("ping")
                } else {
                    client
                        .query("bench", "bench", query, Some(10_000), &body)
                        .expect("query")
                };
                assert!(resp.is_ok(), "{:?}", resp.reason);
                resp.matches
            })
        });
    }
    g.finish();
    token.cancel();
    handle.join().unwrap();
}

/// Latency percentile over a sorted sample (nearest-rank).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn bench_serve_guard(_c: &mut Criterion) {
    const WORKERS: usize = 2;
    const QUEUE: usize = 2;
    // Closed-loop concurrency at twice the admitted capacity
    // (workers + queue slots): half the offered load must be shed.
    const CLIENTS: usize = 2 * (WORKERS + QUEUE);
    const RUN_FOR: Duration = Duration::from_secs(3);

    let (handle, addr, token) = start(ServeConfig {
        workers: WORKERS,
        max_queue: QUEUE,
        tenant_quota: CLIENTS * 2,
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let body = Arc::new(ndjson(2_000));
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let drivers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let body = Arc::clone(&body);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                let mut ok_lat = Vec::new();
                let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let resp = client
                        .query(&format!("c{i}"), "bench", "$..price", Some(10_000), &body)
                        .expect("query");
                    match resp.code {
                        200 => {
                            ok += 1;
                            ok_lat.push(t0.elapsed());
                        }
                        429 => {
                            shed += 1;
                            // Back off for roughly one service time, else
                            // instant 429s turn the closed loop into a
                            // retry storm and the shed count measures the
                            // retry rate, not the overload ratio.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        _ => other += 1,
                    }
                }
                (ok, shed, other, ok_lat)
            })
        })
        .collect();
    std::thread::sleep(RUN_FOR);
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut shed, mut other) = (0u64, 0u64, 0u64);
    let mut lat = Vec::new();
    for d in drivers {
        let (o, s, x, l) = d.join().unwrap();
        ok += o;
        shed += s;
        other += x;
        lat.extend(l);
    }
    let elapsed = started.elapsed();
    token.cancel();
    handle.join().unwrap();

    lat.sort_unstable();
    let total = ok + shed + other;
    let qps = ok as f64 / elapsed.as_secs_f64();
    let shed_rate = shed as f64 / total.max(1) as f64;
    println!("serve_guard: {CLIENTS} closed-loop clients at 2x capacity for {elapsed:.1?}");
    println!("serve_guard/qps_sustained      {qps:.1}");
    println!(
        "serve_guard/p50_latency        {:?}",
        percentile(&lat, 50.0)
    );
    println!(
        "serve_guard/p99_latency        {:?}",
        percentile(&lat, 99.0)
    );
    println!(
        "serve_guard/shed_rate          {:.1}% ({shed}/{total})",
        100.0 * shed_rate
    );
    // Guardrails, not assertions on absolute speed: overload must shed
    // (admission control engaged) yet still complete real work, and every
    // response must be typed (no hangs — the joins above prove delivery).
    assert!(ok > 0, "no requests completed under saturation");
    assert!(shed > 0, "2x saturation never tripped admission control");
    assert_eq!(other, 0, "unexpected non-200/429 responses: {other}");
}

/// Scrape one `mem_*` gauge from the daemon's text metrics.
fn scrape_gauge(addr: &str, name: &str) -> u64 {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let resp = client.metrics(false).expect("metrics");
    let scrape = String::from_utf8(resp.body).expect("utf8");
    scrape
        .lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            panic!(
                "gauge {name} missing from scrape (code {} reason {:?}):\n{scrape}",
                resp.code, resp.reason
            )
        })
}

fn bench_serve_stream(_c: &mut Criterion) {
    const CHUNK: usize = 64 * 1024;
    const ROUNDS: usize = 30;

    let body = ndjson(20_000);
    let query = "$.items[*]";
    let mut reference: Option<Vec<u8>> = None;
    println!(
        "serve_stream: {ROUNDS} rounds of `{query}` over a {} KiB body",
        body.len() / 1024
    );
    // One server per mode so `mem_peak_bytes` isolates that mode's
    // high-water response buffering.
    for streamed in [false, true] {
        let (handle, addr, token) = start(ServeConfig {
            workers: 2,
            chunk_bytes: CHUNK,
            metrics_endpoint: true,
            ..ServeConfig::default()
        });
        let mut client = Client::connect_tcp(&addr).expect("connect");
        client.stream = streamed;
        let mut lat = Vec::with_capacity(ROUNDS);
        let started = Instant::now();
        let mut last_body = Vec::new();
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            let resp = client
                .query("bench", "bench", query, None, &body)
                .expect("query");
            assert!(resp.is_ok(), "{:?}", resp.reason);
            assert_eq!(resp.stream, streamed, "mode not honored by server");
            lat.push(t0.elapsed());
            last_body = resp.body;
        }
        let elapsed = started.elapsed();
        let peak = scrape_gauge(&addr, "mem_peak_bytes");
        token.cancel();
        handle.join().unwrap();

        lat.sort_unstable();
        let mode = if streamed { "streamed" } else { "materialized" };
        let qps = ROUNDS as f64 / elapsed.as_secs_f64();
        println!(
            "serve_stream/{mode:<13} qps {qps:>7.1}  p50 {:>10?}  p99 {:>10?}  peak_buffer {} KiB",
            percentile(&lat, 50.0),
            percentile(&lat, 99.0),
            peak / 1024,
        );
        // Byte-identical bodies across modes, and streaming must buffer
        // less than materializing the full response.
        match &reference {
            None => {
                assert!(!last_body.is_empty(), "query produced no matches");
                reference = Some(last_body);
            }
            Some(r) => {
                assert_eq!(r, &last_body, "streamed body diverged from materialized");
                let materialized_peak = r.len() as u64 + body.len() as u64;
                assert!(
                    peak < materialized_peak,
                    "streaming peak {peak} not below materialized floor {materialized_peak}"
                );
            }
        }
    }
}

criterion_group!(
    benches,
    bench_serve_latency,
    bench_serve_guard,
    bench_serve_stream
);
criterion_main!(benches);
