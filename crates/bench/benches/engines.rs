//! End-to-end engine comparison on a representative workload (BB1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{Dataset, GenConfig};
use harness::all_engines;
use jsonpath::Path;

fn bench_engines(c: &mut Criterion) {
    let cfg = GenConfig {
        target_bytes: 2 * 1024 * 1024,
        seed: 42,
    };
    let data = Dataset::Bb.generate_large(&cfg);
    let record = data.bytes();
    let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();

    let mut g = c.benchmark_group("engines_bb1_2mib");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    for engine in all_engines(&path) {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &record,
            |b, record| b.iter(|| engine.count(record).unwrap()),
        );
    }
    g.finish();
}

fn bench_selectivity_extremes(c: &mut Criterion) {
    // GMD2 is ultra-selective (rare attribute): fast-forward shines.
    let cfg = GenConfig {
        target_bytes: 2 * 1024 * 1024,
        seed: 42,
    };
    let data = Dataset::Gmd.generate_large(&cfg);
    let record = data.bytes();
    let path: Path = "$[*].atm".parse().unwrap();
    let mut g = c.benchmark_group("engines_gmd2_2mib");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    for engine in all_engines(&path) {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &record,
            |b, record| b.iter(|| engine.count(record).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_selectivity_extremes);
criterion_main!(benches);
