//! Compact Criterion renditions of the paper's timing figures. The full
//! tables (all twelve queries, larger inputs, match-count validation) are
//! produced by the `harness` binaries (`fig10` ... `fig14`); these benches
//! give statistically sampled versions of representative rows so
//! `cargo bench` touches every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{Dataset, GenConfig};
use harness::all_engines;
use harness::engines::ParallelPisonEngine;
use harness::parallel::{count_records_parallel, SegmentedRunner};
use harness::Engine as _;
use jsonpath::Path;

const MIB: usize = 1024 * 1024;

fn cfg(bytes: usize) -> GenConfig {
    GenConfig {
        target_bytes: bytes,
        seed: 0x5eed_0001,
    }
}

/// Figure 10 (single large record): TT1 and WM2 rows, all five engines plus
/// the parallel JPStream/Pison configurations.
fn fig10_rows(c: &mut Criterion) {
    for (ds, id, query) in [
        (Dataset::Tt, "TT1", "$[*].en.urls[*].url"),
        (Dataset::Wm, "WM2", "$.it[*].nm"),
    ] {
        let data = ds.generate_large(&cfg(2 * MIB));
        let record = data.bytes();
        let path: Path = query.parse().unwrap();
        let mut g = c.benchmark_group(format!("fig10_{id}"));
        g.throughput(Throughput::Bytes(record.len() as u64));
        g.sample_size(10);
        for engine in all_engines(&path) {
            g.bench_with_input(
                BenchmarkId::from_parameter(engine.name()),
                &record,
                |b, record| b.iter(|| engine.count(record).unwrap()),
            );
        }
        if let Some(runner) = SegmentedRunner::new(&path) {
            g.bench_function("JPStream(16)", |b| {
                b.iter(|| runner.count(record, 16).unwrap())
            });
        }
        let p16 = ParallelPisonEngine::new(&path, 16);
        g.bench_function("Pison(16)", |b| b.iter(|| p16.count(record).unwrap()));
        g.finish();
    }
}

/// Figures 11 and 12 (small records, serial and 16 threads): BB1 row.
fn fig11_fig12_rows(c: &mut Criterion) {
    let data = Dataset::Bb.generate_small(&cfg(2 * MIB));
    let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
    for (label, threads) in [("fig11_BB1_serial", 1usize), ("fig12_BB1_16threads", 16)] {
        let mut g = c.benchmark_group(label);
        g.throughput(Throughput::Bytes(data.bytes().len() as u64));
        g.sample_size(10);
        for engine in all_engines(&path) {
            g.bench_with_input(
                BenchmarkId::from_parameter(engine.name()),
                &data,
                |b, data| {
                    b.iter(|| {
                        count_records_parallel(
                            engine.as_ref(),
                            data.bytes(),
                            data.records(),
                            threads,
                        )
                        .unwrap()
                    })
                },
            );
        }
        g.finish();
    }
}

/// Figure 14 (input-size scalability, BB1): JSONSki and the DOM baseline at
/// three sizes; linearity shows as constant throughput.
fn fig14_scaling(c: &mut Criterion) {
    let path: Path = "$.pd[*].cp[1:3].id".parse().unwrap();
    let ski = jsonski::JsonSki::new(path.clone());
    let mut g = c.benchmark_group("fig14_bb1_scaling");
    g.sample_size(10);
    for mib in [1usize, 2, 4] {
        let data = Dataset::Bb.generate_large(&cfg(mib * MIB));
        let record = data.bytes().to_vec();
        g.throughput(Throughput::Bytes(record.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("JSONSki", format!("{mib}MiB")),
            &record,
            |b, record| b.iter(|| ski.count(record).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("RapidJSON", format!("{mib}MiB")),
            &record,
            |b, record| b.iter(|| domparser::Dom::parse(record).unwrap().count(&path)),
        );
    }
    g.finish();
}

/// Overhead guard for the observability layer: the disabled-registry
/// `evaluate_metered` path must track plain `evaluate` to within 2% (the
/// acceptance bound); the live-registry column shows the enabled cost.
fn metrics_overhead_guard(c: &mut Criterion) {
    use jsonski::Evaluate as _;
    let data = Dataset::Tt.generate_large(&cfg(2 * MIB));
    let record = data.bytes();
    let path: Path = "$[*].en.urls[*].url".parse().unwrap();
    let ski = jsonski::JsonSki::new(path);
    let disabled = jsonski::Metrics::disabled();
    let live = jsonski::Metrics::new();
    let mut g = c.benchmark_group("metrics_guard_TT1");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    g.bench_function("plain", |b| b.iter(|| ski.count(record).unwrap()));
    g.bench_function("metered_disabled", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            ski.evaluate_metered(record, 0, &mut sink, &disabled)
        })
    });
    g.bench_function("metered_live", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            ski.evaluate_metered(record, 0, &mut sink, &live)
        })
    });
    g.finish();
}

/// Overhead guard for the resource guards: evaluation under the default
/// `ResourceLimits` (no deadline — the depth check rides the existing
/// depth bump, and the unset deadline is a never-taken branch) must track
/// the unbounded configuration to within noise. A regression here means a
/// limit check leaked onto the hot path.
fn limits_overhead_guard(c: &mut Criterion) {
    use jsonski::Evaluate as _;
    let data = Dataset::Tt.generate_large(&cfg(2 * MIB));
    let record = data.bytes();
    let path: Path = "$[*].en.urls[*].url".parse().unwrap();
    let default_limits = jsonski::JsonSki::new(path.clone());
    let unbounded = jsonski::JsonSki::new(path).with_limits(jsonski::ResourceLimits::unbounded());
    let mut g = c.benchmark_group("limits_guard_TT1");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    g.bench_function("default_limits", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            default_limits.evaluate(record, 0, &mut sink)
        })
    });
    g.bench_function("unbounded", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            unbounded.evaluate(record, 0, &mut sink)
        })
    });
    g.finish();
}

/// Overhead guard for adversarial-input hardening. Two bounds:
///
/// * `permissive` must track the seed configuration exactly — Permissive
///   mode allocates no validator, so its only cost is a never-taken
///   `Option` branch at the chokepoints (acceptance: within ±2% noise of
///   previous baselines);
/// * `strict` pays streaming validation on every classified word and must
///   stay under 10% overhead on clean input — the fast path skips the
///   scalar DFA for blocks with no backslashes, no high bytes, and no
///   carried-over string state, which is the common case by construction.
fn strict_guard(c: &mut Criterion) {
    use jsonski::Evaluate as _;
    let data = Dataset::Tt.generate_large(&cfg(2 * MIB));
    let record = data.bytes();
    let path: Path = "$[*].en.urls[*].url".parse().unwrap();
    let permissive = jsonski::JsonSki::new(path.clone());
    let strict =
        jsonski::JsonSki::new(path).with_config(jsonski::EngineConfig::builder().strict().build());
    let mut g = c.benchmark_group("strict_guard_TT1");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    g.bench_function("permissive", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            permissive.evaluate(record, 0, &mut sink)
        })
    });
    g.bench_function("strict", |b| {
        b.iter(|| {
            let mut sink = jsonski::CountSink::default();
            strict.evaluate(record, 0, &mut sink)
        })
    });
    g.finish();
}

/// Overhead guard for the on-demand extraction API: delivering matches as
/// lazy [`jsonski::Match`] handles through `FnSink` must track the old
/// byte-slice sink (`ByteFnSink`, now a deprecated shim) to within 3% —
/// the handle is a `Copy` of (index, record pointer, span), so building it
/// adds no per-match allocation. The `typed_decode` column shows the
/// opt-in cost of actually decoding each match, and `get_many` shows the
/// pointer-tree batch extractor on the same record.
fn extract_guard(c: &mut Criterion) {
    use std::ops::ControlFlow;

    use jsonski::Evaluate as _;
    let data = Dataset::Tt.generate_large(&cfg(2 * MIB));
    let record = data.bytes();
    let path: Path = "$[*].en.urls[*].url".parse().unwrap();
    let ski = jsonski::JsonSki::new(path);
    let mut g = c.benchmark_group("extract_guard_TT1");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    g.bench_function("byte_slice_sink", |b| {
        b.iter(|| {
            let mut total = 0usize;
            #[allow(deprecated)]
            let mut sink = jsonski::ByteFnSink::new(|_idx, bytes: &[u8]| {
                total += bytes.len();
                ControlFlow::Continue(())
            });
            ski.evaluate(record, 0, &mut sink);
            total
        })
    });
    g.bench_function("lazy_match_sink", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut sink = jsonski::FnSink::new(|m: jsonski::Match<'_>| {
                total += m.bytes().len();
                ControlFlow::Continue(())
            });
            ski.evaluate(record, 0, &mut sink);
            total
        })
    });
    g.bench_function("typed_decode", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut sink = jsonski::FnSink::new(|m: jsonski::Match<'_>| {
                total += m.value().as_str().map_or(0, |s| s.len());
                ControlFlow::Continue(())
            });
            ski.evaluate(record, 0, &mut sink);
            total
        })
    });
    let pointers = ["/0/en/urls/0/url", "/0/ct", "/1/en/urls/0/url", "/1/ct"];
    let ex = jsonski::Extractor::compile(&pointers).unwrap();
    g.bench_function("get_many", |b| {
        b.iter(|| {
            let found = ex.extract(record).unwrap();
            found
                .values()
                .iter()
                .flatten()
                .map(|v| v.as_raw().len())
                .sum::<usize>()
        })
    });
    g.finish();
}

/// Overhead guard for the crash-safety layer: a pipeline run with an
/// armed-but-untripped cancellation token, or with a checkpoint cadence
/// that never fires mid-run, must track the plain pipeline to within
/// noise. A regression here means a cancellation check or checkpoint
/// bookkeeping leaked onto the per-record hot path.
fn crash_guard(c: &mut Criterion) {
    let mut stream = Vec::new();
    for i in 0..20_000u32 {
        stream.extend_from_slice(format!("{{\"id\": {i}, \"pad\": [{i}, {i}, {i}]}}\n").as_bytes());
    }
    let path: Path = "$.id".parse().unwrap();
    let ski = jsonski::JsonSki::new(path);
    let mut g = c.benchmark_group("crash_guard_pipeline");
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.sample_size(10);
    g.bench_function("plain", |b| {
        b.iter(|| {
            let mut source = jsonski::SliceRecords::new(&stream);
            let mut sink = jsonski::CountSink::default();
            jsonski::Pipeline::new()
                .workers(4)
                .run(&ski, &mut source, &mut sink)
                .unwrap()
        })
    });
    g.bench_function("cancel_token_armed", |b| {
        let token = jsonski::CancellationToken::new();
        b.iter(|| {
            let mut source = jsonski::SliceRecords::new(&stream);
            let mut sink = jsonski::CountSink::default();
            jsonski::Pipeline::new()
                .workers(4)
                .cancel_token(token.clone())
                .run(&ski, &mut source, &mut sink)
                .unwrap()
        })
    });
    g.bench_function("checkpoint_cadence_idle", |b| {
        let cadence = jsonski::CheckpointCadence::default()
            .every_records(u64::MAX)
            .every_bytes(u64::MAX);
        b.iter(|| {
            let mut source = jsonski::SliceRecords::new(&stream);
            let mut sink = jsonski::CountSink::default();
            jsonski::Pipeline::new()
                .workers(4)
                .checkpoints(cadence)
                .run(&ski, &mut source, &mut sink)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig10_rows,
    fig11_fig12_rows,
    fig14_scaling,
    metrics_overhead_guard,
    limits_overhead_guard,
    extract_guard,
    strict_guard,
    crash_guard
);
criterion_main!(benches);
