//! Ablation: how much does each fast-forward group contribute to JSONSki's
//! end-to-end performance? Each configuration disables one group (or all
//! three optional ones) while G2/G3 value-skipping stays on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{Dataset, GenConfig};
use jsonski::{EngineConfig, JsonSki};

fn bench_ablation(c: &mut Criterion) {
    let cfg = GenConfig {
        target_bytes: 2 * 1024 * 1024,
        seed: 7,
    };
    // One query per group where Table 6 says that group dominates:
    // WM1 (G1-heavy), WM2 (G4-heavy), NSPL2 (G5-heavy).
    let cases = [
        (Dataset::Wm, "WM1_g1heavy", "$.it[*].bmrpr.pr"),
        (Dataset::Wm, "WM2_g4heavy", "$.it[*].nm"),
        (Dataset::Nspl, "NSPL2_g5heavy", "$.dt[*][*][2:4]"),
    ];
    let variants: [(&str, EngineConfig); 5] = [
        ("full", EngineConfig::default()),
        ("no_g1", EngineConfig::builder().disable_g1().build()),
        ("no_g4", EngineConfig::builder().disable_g4().build()),
        ("no_g5", EngineConfig::builder().disable_g5().build()),
        (
            "g2g3_only",
            EngineConfig::builder()
                .disable_g1()
                .disable_g4()
                .disable_g5()
                .build(),
        ),
    ];
    for (ds, label, query) in cases {
        let data = ds.generate_large(&cfg);
        let record = data.bytes();
        let mut g = c.benchmark_group(format!("ablation_{label}"));
        g.throughput(Throughput::Bytes(record.len() as u64));
        g.sample_size(10);
        for (name, config) in variants {
            let engine = JsonSki::compile(query).unwrap().with_config(config);
            g.bench_with_input(BenchmarkId::from_parameter(name), &record, |b, record| {
                b.iter(|| engine.count(record).unwrap())
            });
        }
        g.finish();
    }
}

/// Multi-query extension: both Table 5 queries of a dataset in one shared
/// pass vs. two independent passes.
fn bench_multiquery(c: &mut Criterion) {
    let cfg = GenConfig {
        target_bytes: 2 * 1024 * 1024,
        seed: 7,
    };
    let data = Dataset::Tt.generate_large(&cfg);
    let record = data.bytes();
    let queries = ["$[*].en.urls[*].url", "$[*].text"];
    let mut g = c.benchmark_group("multiquery_tt");
    g.throughput(Throughput::Bytes(record.len() as u64));
    g.sample_size(10);
    let single: Vec<JsonSki> = queries
        .iter()
        .map(|q| JsonSki::compile(q).unwrap())
        .collect();
    g.bench_function("two_passes", |b| {
        b.iter(|| {
            single
                .iter()
                .map(|q| q.count(record).unwrap())
                .sum::<usize>()
        })
    });
    let multi = jsonski::MultiQuery::compile(&queries).unwrap();
    g.bench_function("one_shared_pass", |b| {
        b.iter(|| multi.counts(record).unwrap().iter().sum::<usize>())
    });
    g.finish();
}

criterion_group!(benches, bench_ablation, bench_multiquery);
criterion_main!(benches);
