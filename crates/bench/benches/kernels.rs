//! Kernel-level benchmarks: block classification (per-kernel), string
//! masking, and stage-1 structural index construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::{Dataset, GenConfig};
use simdbits::{Classifier, Kernel, PaddedBlocks};

fn sample(bytes: usize) -> Vec<u8> {
    Dataset::Tt
        .generate_large(&GenConfig {
            target_bytes: bytes,
            seed: 1,
        })
        .bytes()
        .to_vec()
}

fn bench_classification(c: &mut Criterion) {
    let data = sample(1 << 20);
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);
    for &kernel in Kernel::all() {
        if !kernel.is_supported() {
            continue;
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut cls = Classifier::with_kernel(kernel);
                    let mut acc = 0u64;
                    for (block, _) in PaddedBlocks::new(data) {
                        let bm = cls.classify(&block);
                        acc ^= bm.colon ^ bm.comma ^ bm.string_mask;
                    }
                    acc
                })
            },
        );
    }
    g.finish();
}

fn bench_structural_index(c: &mut Criterion) {
    let data = sample(1 << 20);
    let mut g = c.benchmark_group("stage1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.sample_size(10);
    g.bench_function("structural_index", |b| {
        b.iter(|| tapeparser::structural_index(&data).len())
    });
    g.bench_function("leveled_index_4", |b| {
        b.iter(|| pison::LeveledIndex::build(&data, 4).index_bytes())
    });
    g.finish();
}

criterion_group!(benches, bench_classification, bench_structural_index);
criterion_main!(benches);
