//! Benchmark-only crate: see the `benches/` directory.
//!
//! * `kernels` — simdbits classification kernels (scalar/SWAR/SSE2/AVX2),
//!   string masking, and stage-1 structural indexing throughput.
//! * `fastforward` — ablations of the paper's core mechanisms: counting-based
//!   pairing vs. character scanning, colon-interval attribute seeking vs.
//!   name-by-name tokenization.
//! * `engines` — end-to-end engine comparison on one workload.
//! * `figures` — compact Criterion renditions of Figures 10, 11, 12 and 14.
