//! JPStream-class baseline: character-by-character streaming query
//! evaluation with a dual-stack automaton and **no** fast-forwarding.
//!
//! This is the "conventional design" of the streaming scheme that the paper
//! improves on (Section 2, Figure 4): a query stack tracks the matching
//! progress per level and a syntax stack tracks the syntactic nesting, while
//! the input is scanned *in detail* — every token of every substructure is
//! recognized and fed to the automaton, even inside values that can never
//! match. Its per-character costs are exactly what JSONSki's bit-parallel
//! fast-forwarding removes, so this engine is the primary speedup baseline
//! (the paper reports JSONSki 12.3× faster on large records).
//!
//! The query automaton itself is shared with all other engines
//! ([`jsonpath::Runtime`]); only the *driving* differs.
//!
//! # Example
//!
//! ```
//! use jpstream::JpStream;
//!
//! let json = br#"{"place": {"name": "Manhattan", "x": 1}}"#;
//! let engine = JpStream::compile("$.place.name")?;
//! assert_eq!(engine.matches(json)?, vec![&b"\"Manhattan\""[..]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

use std::error::Error;
use std::fmt;
use std::ops::ControlFlow;

use jsonpath::{ContainerKind, ParsePathError, Path, Runtime, Status};

/// Maximum nesting depth (recursion guard, matching the other engines).
pub const MAX_DEPTH: usize = 1024;

/// Error raised while streaming a malformed record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JpError {
    message: &'static str,
    /// Byte offset of the error.
    pub pos: usize,
}

impl JpError {
    fn new(message: &'static str, pos: usize) -> Self {
        JpError { message, pos }
    }
}

impl fmt::Display for JpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl Error for JpError {}

/// A compiled query evaluated by character-at-a-time streaming.
#[derive(Clone, Debug)]
pub struct JpStream {
    path: Path,
    validation: jsonski::ValidationMode,
}

impl JpStream {
    /// Wraps an already-parsed path.
    pub fn new(path: Path) -> Self {
        JpStream {
            path,
            validation: jsonski::ValidationMode::Permissive,
        }
    }

    /// Compiles a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn compile(query: &str) -> Result<Self, ParsePathError> {
        Ok(JpStream::new(query.parse()?))
    }

    /// Sets the input trust level (builder-style). Strict runs the shared
    /// [`jsonski::validate_record`] pre-pass before the detailed scan so
    /// this engine rejects exactly the inputs — at the same byte offsets —
    /// that the fast-forwarding engine rejects mid-skip. Applies to the
    /// [`jsonski::Evaluate`] entry point; the raw [`JpStream::stream`] API
    /// keeps its historical character-level checks only.
    pub fn with_validation(mut self, mode: jsonski::ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// The compiled path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn strict_reject(&self, record: &[u8]) -> Option<jsonski::RecordOutcome> {
        if self.validation != jsonski::ValidationMode::Strict {
            return None;
        }
        jsonski::validate_record(record).map(|(offset, reason)| {
            jsonski::RecordOutcome::Failed(jsonski::EngineError::Invalid { offset, reason })
        })
    }

    /// Streams one record with early-exit support: `sink` receives each
    /// match's raw bytes and may return [`ControlFlow::Break`] to stop the
    /// scan immediately.
    ///
    /// Unlike JSONSki the detailed scan cannot *skip* anything, but it can
    /// stop: bytes after the breaking match are never examined (see
    /// [`JpOutcome::consumed`]).
    ///
    /// # Errors
    ///
    /// [`JpError`] on any malformed syntax — the detailed scan validates
    /// everything it touches, which is the entire record up to the stop.
    pub fn stream<'a, F>(&self, input: &'a [u8], mut sink: F) -> Result<JpOutcome, JpError>
    where
        F: FnMut(&'a [u8]) -> ControlFlow<()>,
    {
        let mut ev = Eval {
            input,
            pos: 0,
            rt: Runtime::new(&self.path),
            sink: &mut sink,
            matches: 0,
            depth: 0,
            pending: Vec::new(),
            flush_from: 0,
        };
        let stopped = match ev.record() {
            Ok(()) => false,
            Err(Abort::Stop) => true,
            Err(Abort::Err(e)) => return Err(e),
        };
        Ok(JpOutcome {
            matches: ev.matches,
            stopped,
            consumed: ev.pos,
        })
    }

    /// Streams one record, calling `sink` with each match's raw bytes.
    ///
    /// # Errors
    ///
    /// [`JpError`] on any malformed syntax — the detailed scan validates
    /// everything it touches, which is the entire record.
    pub fn run<'a, F>(&self, input: &'a [u8], mut sink: F) -> Result<(), JpError>
    where
        F: FnMut(&'a [u8]),
    {
        self.stream(input, |m| {
            sink(m);
            ControlFlow::Continue(())
        })?;
        Ok(())
    }

    /// Counts matches in one record.
    ///
    /// # Errors
    ///
    /// Propagates [`JpError`] from [`JpStream::run`].
    pub fn count(&self, input: &[u8]) -> Result<usize, JpError> {
        let mut n = 0;
        self.run(input, |_| n += 1)?;
        Ok(n)
    }

    /// Collects all matches' raw bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`JpError`] from [`JpStream::run`].
    pub fn matches<'a>(&self, input: &'a [u8]) -> Result<Vec<&'a [u8]>, JpError> {
        let mut out = Vec::new();
        self.run(input, |m| out.push(m))?;
        Ok(out)
    }
}

/// Outcome of one [`JpStream::stream`] call.
#[derive(Clone, Copy, Debug)]
pub struct JpOutcome {
    /// Matches delivered to the sink (including the one broken on).
    pub matches: usize,
    /// Whether the sink stopped the scan early.
    pub stopped: bool,
    /// Bytes examined; strictly fewer than the input length when an early
    /// stop saved work.
    pub consumed: usize,
}

/// Internal control-flow channel: a real error, or a sink-requested stop.
enum Abort {
    Err(JpError),
    Stop,
}

fn abort(message: &'static str, pos: usize) -> Abort {
    Abort::Err(JpError::new(message, pos))
}

/// A match deferred to preserve pre-order (span-start ascending): an
/// accepted container reaches the sink before the matches found inside it
/// (possible under descendant steps), but its span completes only after the
/// detailed traversal. `end == None` marks a still-open container entry.
struct PendingMatch {
    start: usize,
    end: Option<usize>,
}

struct Eval<'a, 'p, 's> {
    input: &'a [u8],
    pos: usize,
    rt: Runtime<'p>,
    sink: &'s mut dyn FnMut(&'a [u8]) -> ControlFlow<()>,
    matches: usize,
    depth: usize,
    pending: Vec<PendingMatch>,
    flush_from: usize,
}

impl<'a> Eval<'a, '_, '_> {
    /// Emits a completed span, or queues it while an enclosing accepted
    /// container's entry is still open (the container must go first).
    fn emit(&mut self, start: usize, end: usize) -> Result<(), Abort> {
        if self.flush_from == self.pending.len() {
            self.emit_now(start, end)
        } else {
            self.pending.push(PendingMatch {
                start,
                end: Some(end),
            });
            Ok(())
        }
    }

    fn emit_now(&mut self, start: usize, end: usize) -> Result<(), Abort> {
        self.matches += 1;
        match (self.sink)(&self.input[start..end]) {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(()) => Err(Abort::Stop),
        }
    }

    fn open_pending(&mut self, start: usize) {
        self.pending.push(PendingMatch { start, end: None });
    }

    fn close_pending(&mut self, end: usize) -> Result<(), Abort> {
        let open = self
            .pending
            .iter_mut()
            .rev()
            .find(|p| p.end.is_none())
            .expect("unbalanced pending-match close");
        open.end = Some(end);
        while let Some(p) = self.pending.get(self.flush_from) {
            let Some(end) = p.end else { break };
            let start = p.start;
            self.flush_from += 1;
            self.emit_now(start, end)?;
        }
        if self.flush_from == self.pending.len() {
            self.pending.clear();
            self.flush_from = 0;
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.input.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), Abort> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(abort(msg, self.pos))
        }
    }

    fn record(&mut self) -> Result<(), Abort> {
        self.skip_ws();
        let Some(t) = self.peek() else {
            return Ok(());
        };
        match t {
            b'{' => {
                let status = self.rt.enter_root(ContainerKind::Object);
                self.pos += 1;
                self.object(status == Status::Accept)?;
                self.rt.exit();
            }
            b'[' => {
                let status = self.rt.enter_root(ContainerKind::Array);
                self.pos += 1;
                self.array(status == Status::Accept)?;
                self.rt.exit();
            }
            _ => {
                let start = self.pos;
                self.primitive()?;
                if self.rt.path().is_empty() {
                    self.emit(start, self.pos)?;
                }
            }
        }
        self.skip_ws();
        Ok(())
    }

    /// Parses an object in full detail. `accepted` marks the object itself
    /// as a query result: its emission is deferred through the pending
    /// queue so it still precedes any match the traversal finds inside it
    /// (possible under descendant steps).
    fn object(&mut self, accepted: bool) -> Result<(), Abort> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(abort("nesting too deep", self.pos));
        }
        let start = self.pos - 1;
        if accepted {
            self.open_pending(start);
        }
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let (ns, ne) = self.string()?;
                self.expect(b':', "expected `:`")?;
                // [Key] transition (raw name; escape-aware comparison).
                let (state, status) = self.rt.value_state_for_key_raw(&self.input[ns..ne]);
                self.value_with(state, status)?;
                // [Val] transition happens in value_with via exit().
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(abort("expected `,` or `}`", self.pos)),
                }
            }
        }
        if accepted {
            self.close_pending(self.pos)?;
        }
        self.depth -= 1;
        Ok(())
    }

    fn array(&mut self, accepted: bool) -> Result<(), Abort> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(abort("nesting too deep", self.pos));
        }
        let start = self.pos - 1;
        if accepted {
            self.open_pending(start);
        }
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                // Filter predicates probe the candidate element's bytes.
                self.skip_ws();
                let pos = self.pos;
                let input = self.input;
                let (state, status) = self
                    .rt
                    .element_state_with(&mut |expr| jsonpath::filter::eval(expr, &input[pos..]));
                self.value_with(state, status)?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        self.rt.increment(); // [Com] transition
                    }
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(abort("expected `,` or `]`", self.pos)),
                }
            }
        }
        if accepted {
            self.close_pending(self.pos)?;
        }
        self.depth -= 1;
        Ok(())
    }

    /// Parses one value, pushing/popping the automaton around containers.
    /// Every value is parsed in full detail regardless of its status.
    fn value_with(&mut self, state: jsonpath::State, status: Status) -> Result<(), Abort> {
        let accepted = matches!(status, Status::Accept | Status::AcceptAndDescend);
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.rt.enter(ContainerKind::Object, state);
                let r = self.object(accepted);
                self.rt.exit();
                r
            }
            Some(b'[') => {
                self.pos += 1;
                self.rt.enter(ContainerKind::Array, state);
                let r = self.array(accepted);
                self.rt.exit();
                r
            }
            Some(_) => {
                let start = self.pos;
                self.primitive()?;
                if accepted {
                    self.emit(start, self.pos)?;
                }
                Ok(())
            }
            None => Err(abort("expected value", self.pos)),
        }
    }

    /// Tokenizes a primitive character by character.
    fn primitive(&mut self) -> Result<(), Abort> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.pos += 1;
                while matches!(
                    self.peek(),
                    Some(c) if c.is_ascii_digit()
                        || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                ) {
                    self.pos += 1;
                }
                Ok(())
            }
            _ => Err(abort("expected value", self.pos)),
        }
    }

    fn literal(&mut self, word: &'static [u8]) -> Result<(), Abort> {
        if self.input.len() >= self.pos + word.len()
            && &self.input[self.pos..self.pos + word.len()] == word
        {
            self.pos += word.len();
            Ok(())
        } else {
            Err(abort("invalid literal", self.pos))
        }
    }

    /// Tokenizes a string, returning its contents span (quotes excluded).
    fn string(&mut self) -> Result<(usize, usize), Abort> {
        if self.peek() != Some(b'"') {
            return Err(abort("expected string", self.pos));
        }
        self.pos += 1;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let end = self.pos;
                    self.pos += 1;
                    return Ok((start, end));
                }
                Some(b'\\') => {
                    self.pos += 2;
                    if self.pos > self.input.len() {
                        return Err(abort("unterminated escape", self.pos));
                    }
                }
                Some(_) => self.pos += 1,
                None => return Err(abort("unterminated string", self.pos)),
            }
        }
    }
}

impl jsonski::Evaluate for JpStream {
    fn name(&self) -> &'static str {
        "JPStream"
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
    ) -> jsonski::RecordOutcome {
        if let Some(failed) = self.strict_reject(record) {
            return failed;
        }
        match self.stream(record, |m| {
            sink.on_match(jsonski::Match::from_slice(record_idx, record, m))
        }) {
            Ok(o) if o.stopped => jsonski::RecordOutcome::Stopped { matches: o.matches },
            Ok(o) => jsonski::RecordOutcome::Complete { matches: o.matches },
            Err(e) => jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                engine: "JPStream",
                message: e.to_string(),
            }),
        }
    }

    /// JPStream is a pure streaming engine with no preprocessing stage:
    /// all evaluation time is reported as traversal, none as build.
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
        metrics: &jsonski::Metrics,
    ) -> jsonski::RecordOutcome {
        if !metrics.is_enabled() {
            return self.evaluate(record, record_idx, sink);
        }
        let sw = metrics.stopwatch();
        let outcome = self.evaluate(record, record_idx, sink);
        let ns = sw.elapsed_ns();
        metrics.add_traverse_ns(ns);
        metrics.add_eval_ns(ns);
        metrics.record_outcome(record.len(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches_of(query: &str, json: &str) -> Vec<String> {
        let q = JpStream::compile(query).unwrap();
        q.matches(json.as_bytes())
            .unwrap()
            .into_iter()
            .map(|m| String::from_utf8_lossy(m).into_owned())
            .collect()
    }

    #[test]
    fn basic_child_query() {
        let json = r#"{"a": {"b": 42}, "c": 0}"#;
        assert_eq!(matches_of("$.a.b", json), vec!["42"]);
    }

    #[test]
    fn array_wildcard_and_slice() {
        let json = r#"[{"x": 1}, {"x": 2}, {"x": 3}, {"x": 4}]"#;
        assert_eq!(matches_of("$[*].x", json), vec!["1", "2", "3", "4"]);
        assert_eq!(matches_of("$[1:3].x", json), vec!["2", "3"]);
    }

    #[test]
    fn emits_container_matches_with_full_span() {
        let json = r#"{"a": {"deep": [1, {"b": 2}]}}"#;
        assert_eq!(matches_of("$.a", json), vec![r#"{"deep": [1, {"b": 2}]}"#]);
    }

    #[test]
    fn root_query() {
        assert_eq!(matches_of("$", r#"{"a": 1}"#), vec![r#"{"a": 1}"#]);
        assert_eq!(matches_of("$", "7"), vec!["7"]);
    }

    #[test]
    fn strings_with_metachars() {
        let json = r#"{"a": "{\"not\": [1]}", "t": {"v": "x"}}"#;
        assert_eq!(matches_of("$.t.v", json), vec!["\"x\""]);
    }

    #[test]
    fn validates_everything_it_scans() {
        let q = JpStream::compile("$.a").unwrap();
        // Unlike JSONSki, malformed syntax anywhere in the record errors.
        assert!(q.count(br#"{"zzz": {"bad" 1}, "a": 2}"#).is_err());
        assert!(q.count(br#"{"a": 1,}"#).is_err());
        assert!(q.count(br#"{"a": tru}"#).is_err());
    }

    #[test]
    fn deep_nesting_guard() {
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(b'[', 3000));
        v.extend(std::iter::repeat_n(b']', 3000));
        let q = JpStream::compile("$[0]").unwrap();
        assert!(q.count(&v).is_err());
    }

    #[test]
    fn empty_input_has_no_matches() {
        let q = JpStream::compile("$.a").unwrap();
        assert_eq!(q.count(b"  ").unwrap(), 0);
    }

    #[test]
    fn counter_tracks_commas() {
        let json = r#"{"a": [10, 20, 30, 40, 50]}"#;
        assert_eq!(matches_of("$.a[3]", json), vec!["40"]);
    }
    #[test]
    fn descendant_matches_every_depth_in_pre_order() {
        let json = r#"{"a": {"a": 1}, "b": [{"a": 2}]}"#;
        assert_eq!(matches_of("$..a", json), vec![r#"{"a": 1}"#, "1", "2"]);
        let json = r#"{"a": [1, {"b": 2}]}"#;
        assert_eq!(
            matches_of("$..*", json),
            vec![r#"[1, {"b": 2}]"#, "1", r#"{"b": 2}"#, "2"]
        );
    }

    #[test]
    fn unions_and_filters() {
        let json = r#"{"a": 1, "b": 2, "c": 3}"#;
        assert_eq!(matches_of("$['a','c']", json), vec!["1", "3"]);
        let json = r#"[10, 20, 30, 40]"#;
        assert_eq!(matches_of("$[1,3]", json), vec!["20", "40"]);
        let json = r#"{"items": [{"q": 5, "v": 1}, {"q": 9, "v": 2}, {"v": 3}]}"#;
        assert_eq!(matches_of("$.items[?(@.q > 4)].v", json), vec!["1", "2"]);
        assert_eq!(matches_of("$.items[?(@.q != 5)].v", json), vec!["2", "3"]);
    }

    #[test]
    fn stream_early_exit_consumes_fewer_bytes() {
        let json = br#"[{"x": 1}, {"x": 2}, {"x": 3}, {"x": 4}]"#;
        let q = JpStream::compile("$[*].x").unwrap();
        let outcome = q
            .stream(json, |_| std::ops::ControlFlow::Break(()))
            .unwrap();
        assert!(outcome.stopped);
        assert_eq!(outcome.matches, 1);
        assert!(outcome.consumed < json.len());
    }

    #[test]
    fn evaluate_trait_reports_failures() {
        use jsonski::Evaluate;
        let q = JpStream::compile("$.a").unwrap();
        assert_eq!(Evaluate::count(&q, br#"{"a": 7}"#).unwrap(), 1);
        assert!(Evaluate::count(&q, br#"{"a" 7}"#).is_err());
    }
}
