//! RapidJSON-class baseline: the conventional *preprocessing scheme*.
//!
//! This engine first parses the whole record into an in-memory tree
//! ([`Value`]), character by character, then evaluates JSONPath queries by
//! walking the tree top-down — exactly the scheme the paper's Figure 3-(a)
//! illustrates and evaluates as "RapidJSON". It deliberately has no bitwise
//! parallelism and no fast-forwarding; its costs (upfront parse delay and
//! tree memory) are the foil for the streaming engines.
//!
//! Every node records its byte span in the source so query results are
//! directly comparable with the spans the streaming engines emit.
//!
//! # Example
//!
//! ```
//! use domparser::Dom;
//!
//! let json = br#"{"place": {"name": "Manhattan"}}"#;
//! let dom = Dom::parse(json)?;
//! let hits = dom.query(&"$.place.name".parse()?);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(dom.text(hits[0]), "\"Manhattan\"");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod evaluate;
mod parser;
mod query;
mod value;

pub use evaluate::DomQuery;
pub use parser::DomError;
pub use value::{decode_raw_string, Dom, Value, ValueKind};
