//! Top-down tree traversal query evaluation (paper Figure 3-(a)).
//!
//! The walker carries the query automaton's position set ([`State`]) down
//! the tree, calling the shared transition functions ([`Path::on_key`],
//! [`Path::on_element`], [`Path::prune_state`]) at each edge. Matches are
//! emitted *before* recursing into the node so the output order is
//! span-start ascending (pre-order), byte-identical to the streaming
//! engines. Filter predicates probe the node's source bytes via its span.

use jsonpath::{ContainerKind, Path, State, Status};

use crate::value::{Value, ValueKind};

/// Recursively collects nodes whose automaton state accepts, in pre-order.
///
/// `state` is the *value* state of `node` as produced by `on_key` /
/// `on_element` (it may carry the accept bit); it is pruned here before
/// scanning the node's members.
pub(crate) fn collect_matches<'v>(
    path: &Path,
    input: &[u8],
    node: &'v Value,
    state: State,
    out: &mut Vec<&'v Value>,
) {
    match path.status_of(state) {
        Status::Unmatched => return,
        Status::Accept => {
            out.push(node);
            return;
        }
        Status::AcceptAndDescend => out.push(node),
        Status::Matched => {}
    }
    match &node.kind {
        ValueKind::Object(fields) => {
            let set = path.prune_state(state, ContainerKind::Object);
            if set.is_unmatched() {
                return;
            }
            for (k, v) in fields {
                // Keys are stored raw; the transition compares escape-aware
                // like all engines.
                let vs = path.on_key(set, k.as_bytes());
                collect_matches(path, input, v, vs, out);
            }
        }
        ValueKind::Array(items) => {
            let set = path.prune_state(state, ContainerKind::Array);
            if set.is_unmatched() {
                return;
            }
            for (i, v) in items.iter().enumerate() {
                let vs = path.on_element(set, i, &mut |expr| {
                    jsonpath::filter::eval(expr, &input[v.span().0..])
                });
                collect_matches(path, input, v, vs, out);
            }
        }
        _ => {} // primitive: nothing below to extend a live position
    }
}

#[cfg(test)]
mod tests {
    use crate::Dom;
    use jsonpath::Path;

    fn texts<'a>(dom: &'a Dom<'a>, q: &str) -> Vec<&'a str> {
        let path: Path = q.parse().unwrap();
        dom.query(&path).into_iter().map(|v| dom.text(v)).collect()
    }

    #[test]
    fn child_and_wildcard() {
        let json = br#"{"a": {"x": 1, "y": 2}, "b": {"x": 3}}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.a.x"), vec!["1"]);
        assert_eq!(texts(&dom, "$.*.x"), vec!["1", "3"]);
        assert_eq!(texts(&dom, "$.a.*"), vec!["1", "2"]);
    }

    #[test]
    fn array_steps() {
        let json = br#"[10, 20, 30, 40, 50]"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$[0]"), vec!["10"]);
        assert_eq!(texts(&dom, "$[2:4]"), vec!["30", "40"]);
        assert_eq!(texts(&dom, "$[*]").len(), 5);
    }

    #[test]
    fn paper_style_query() {
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]}, {"cp": [{"id": 4}]}]}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.pd[*].cp[1:3].id"), vec!["2", "3"]);
    }

    #[test]
    fn kind_mismatch_yields_nothing() {
        let json = br#"{"a": [1, 2]}"#;
        let dom = Dom::parse(json).unwrap();
        assert!(texts(&dom, "$.a.b").is_empty());
        assert!(texts(&dom, "$[0]").is_empty());
        assert!(texts(&dom, "$.a[0].x").is_empty());
    }

    #[test]
    fn root_query_returns_root() {
        let json = br#"{"a": 1}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$"), vec![r#"{"a": 1}"#]);
        assert_eq!(dom.count(&"$".parse().unwrap()), 1);
    }

    #[test]
    fn duplicate_names_all_match() {
        // JSON permits duplicates syntactically; the tree keeps both.
        let json = br#"{"a": 1, "a": 2}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.a"), vec!["1", "2"]);
    }

    #[test]
    fn descendant_matches_every_depth_in_pre_order() {
        let json = br#"{"a": {"a": 1}, "b": [{"a": 2}], "c": 3}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$..a"), vec![r#"{"a": 1}"#, "1", "2"]);
        assert_eq!(texts(&dom, "$..b[0].a"), vec!["2"]);
    }

    #[test]
    fn descendant_index_applies_in_every_array() {
        let json = br#"{"x": [[9, 8], [7]], "y": [6]}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$..[0]"), vec!["[9, 8]", "9", "7", "6"]);
    }

    #[test]
    fn unions_select_listed_members() {
        let json = br#"{"a": 1, "b": 2, "c": 3}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$['a','c']"), vec!["1", "3"]);
        let arr = br#"[10, 20, 30, 40]"#;
        let dom = Dom::parse(arr).unwrap();
        assert_eq!(texts(&dom, "$[0,2]"), vec!["10", "30"]);
    }

    #[test]
    fn filters_probe_element_bytes() {
        let json = br#"[{"x": 1}, {"x": 5}, {"y": 9}]"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$[?(@.x > 2)]"), vec![r#"{"x": 5}"#]);
        let prims = br#"[1, "two", 3]"#;
        let dom = Dom::parse(prims).unwrap();
        assert_eq!(texts(&dom, "$[?(@ == 3)]"), vec!["3"]);
    }
}
