//! Top-down tree traversal query evaluation (paper Figure 3-(a)).

use jsonpath::Step;

use crate::value::{Value, ValueKind};

/// Recursively collects nodes matching the remaining `steps`, in document
/// order.
pub(crate) fn collect_matches<'v>(node: &'v Value, steps: &[Step], out: &mut Vec<&'v Value>) {
    let Some((step, rest)) = steps.split_first() else {
        out.push(node);
        return;
    };
    match (step, &node.kind) {
        (Step::Child(name), ValueKind::Object(fields)) => {
            for (k, v) in fields {
                // Keys are stored raw; compare escape-aware like all engines.
                if jsonpath::names::matches(k.as_bytes(), name) {
                    collect_matches(v, rest, out);
                }
            }
        }
        (Step::AnyChild, ValueKind::Object(fields)) => {
            for (_, v) in fields {
                collect_matches(v, rest, out);
            }
        }
        (Step::Index(_) | Step::Slice(_, _) | Step::AnyElement, ValueKind::Array(items)) => {
            for (i, v) in items.iter().enumerate() {
                if step.selects_index(i) {
                    collect_matches(v, rest, out);
                }
            }
        }
        _ => {} // kind mismatch: no matches below this node
    }
}

#[cfg(test)]
mod tests {
    use crate::Dom;
    use jsonpath::Path;

    fn texts<'a>(dom: &'a Dom<'a>, q: &str) -> Vec<&'a str> {
        let path: Path = q.parse().unwrap();
        dom.query(&path).into_iter().map(|v| dom.text(v)).collect()
    }

    #[test]
    fn child_and_wildcard() {
        let json = br#"{"a": {"x": 1, "y": 2}, "b": {"x": 3}}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.a.x"), vec!["1"]);
        assert_eq!(texts(&dom, "$.*.x"), vec!["1", "3"]);
        assert_eq!(texts(&dom, "$.a.*"), vec!["1", "2"]);
    }

    #[test]
    fn array_steps() {
        let json = br#"[10, 20, 30, 40, 50]"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$[0]"), vec!["10"]);
        assert_eq!(texts(&dom, "$[2:4]"), vec!["30", "40"]);
        assert_eq!(texts(&dom, "$[*]").len(), 5);
    }

    #[test]
    fn paper_style_query() {
        let json = br#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}]}, {"cp": [{"id": 4}]}]}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.pd[*].cp[1:3].id"), vec!["2", "3"]);
    }

    #[test]
    fn kind_mismatch_yields_nothing() {
        let json = br#"{"a": [1, 2]}"#;
        let dom = Dom::parse(json).unwrap();
        assert!(texts(&dom, "$.a.b").is_empty());
        assert!(texts(&dom, "$[0]").is_empty());
        assert!(texts(&dom, "$.a[0].x").is_empty());
    }

    #[test]
    fn root_query_returns_root() {
        let json = br#"{"a": 1}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$"), vec![r#"{"a": 1}"#]);
        assert_eq!(dom.count(&"$".parse().unwrap()), 1);
    }

    #[test]
    fn duplicate_names_all_match() {
        // JSON permits duplicates syntactically; the tree keeps both.
        let json = br#"{"a": 1, "a": 2}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(texts(&dom, "$.a"), vec!["1", "2"]);
    }
}
