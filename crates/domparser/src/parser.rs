//! Character-by-character recursive-descent parser building the tree.

use std::error::Error;
use std::fmt;

use crate::value::{Value, ValueKind};

/// Syntax error raised by the DOM parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomError {
    message: &'static str,
    /// Byte offset of the error.
    pub pos: usize,
}

impl DomError {
    fn new(message: &'static str, pos: usize) -> Self {
        DomError { message, pos }
    }
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl Error for DomError {}

/// Maximum nesting depth (mirrors the streaming engine's recursion guard).
const MAX_DEPTH: usize = 1024;

pub(crate) fn parse_root(input: &[u8]) -> Result<Value, DomError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(DomError::new("trailing characters after value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.input.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), DomError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DomError::new(msg, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, DomError> {
        if depth > MAX_DEPTH {
            return Err(DomError::new("nesting too deep", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => {
                let start = self.pos;
                let s = self.string()?;
                Ok(Value {
                    span: (start, self.pos),
                    kind: ValueKind::String(s),
                })
            }
            Some(b't') => self.literal(b"true", ValueKind::Bool(true)),
            Some(b'f') => self.literal(b"false", ValueKind::Bool(false)),
            Some(b'n') => self.literal(b"null", ValueKind::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(DomError::new("unexpected character", self.pos)),
            None => Err(DomError::new("unexpected end of input", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, DomError> {
        let start = self.pos;
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value {
                span: (start, self.pos),
                kind: ValueKind::Object(fields),
            });
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.expect(b':', "expected `:`")?;
            let value = self.value(depth + 1)?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value {
                        span: (start, self.pos),
                        kind: ValueKind::Object(fields),
                    });
                }
                _ => return Err(DomError::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, DomError> {
        let start = self.pos;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value {
                span: (start, self.pos),
                kind: ValueKind::Array(items),
            });
        }
        loop {
            let value = self.value(depth + 1)?;
            items.push(value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value {
                        span: (start, self.pos),
                        kind: ValueKind::Array(items),
                    });
                }
                _ => return Err(DomError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    /// Parses a string token, returning its raw contents (escapes kept).
    fn string(&mut self) -> Result<String, DomError> {
        if self.peek() != Some(b'"') {
            return Err(DomError::new("expected string", self.pos));
        }
        self.pos += 1;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    return String::from_utf8(raw.to_vec())
                        .map_err(|_| DomError::new("invalid UTF-8 in string", start));
                }
                Some(b'\\') => {
                    self.pos += 2; // skip the escape pair
                    if self.pos > self.input.len() {
                        return Err(DomError::new("unterminated escape", self.pos));
                    }
                }
                Some(_) => self.pos += 1,
                None => return Err(DomError::new("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, DomError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| DomError::new("invalid number", start))?;
        let n: f64 = text
            .parse()
            .map_err(|_| DomError::new("invalid number", start))?;
        Ok(Value {
            span: (start, self.pos),
            kind: ValueKind::Number(n),
        })
    }

    fn literal(&mut self, word: &'static [u8], kind: ValueKind) -> Result<Value, DomError> {
        let start = self.pos;
        if self.input.len() >= start + word.len() && &self.input[start..start + word.len()] == word
        {
            self.pos += word.len();
            Ok(Value {
                span: (start, self.pos),
                kind,
            })
        } else {
            Err(DomError::new("invalid literal", start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dom;

    #[test]
    fn parses_all_value_kinds() {
        let json = br#"{"s": "str", "n": -1.5e3, "b": true, "f": false, "z": null,
                        "a": [1, 2], "o": {"k": "v"}}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(
            dom.root().get("s").unwrap().kind(),
            &ValueKind::String("str".into())
        );
        assert_eq!(
            dom.root().get("n").unwrap().kind(),
            &ValueKind::Number(-1500.0)
        );
        assert_eq!(dom.root().get("b").unwrap().kind(), &ValueKind::Bool(true));
        assert_eq!(dom.root().get("f").unwrap().kind(), &ValueKind::Bool(false));
        assert_eq!(dom.root().get("z").unwrap().kind(), &ValueKind::Null);
        assert_eq!(dom.root().get("a").unwrap().len(), 2);
        assert_eq!(dom.root().get("o").unwrap().len(), 1);
    }

    #[test]
    fn string_escapes_kept_raw() {
        let json = br#"{"k": "a\"b\\c"}"#;
        let dom = Dom::parse(json).unwrap();
        assert_eq!(
            dom.root().get("k").unwrap().kind(),
            &ValueKind::String(r#"a\"b\\c"#.into())
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &br#"{"a": }"#[..],
            br#"{"a" 1}"#,
            br#"[1, 2"#,
            br#"{"a": 1} extra"#,
            br#"tru"#,
            br#"{"a": 01x}"#,
            br#""unclosed"#,
            b"",
        ] {
            assert!(
                Dom::parse(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn root_primitives() {
        assert_eq!(
            *Dom::parse(b"42").unwrap().root().kind(),
            ValueKind::Number(42.0)
        );
        assert_eq!(
            *Dom::parse(b" null ").unwrap().root().kind(),
            ValueKind::Null
        );
    }

    #[test]
    fn deep_nesting_guard() {
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(b'[', 3000));
        v.extend(std::iter::repeat_n(b']', 3000));
        assert!(Dom::parse(&v).is_err());
    }

    #[test]
    fn error_positions() {
        let err = Dom::parse(br#"{"a": @}"#).unwrap_err();
        assert_eq!(err.pos, 6);
        assert!(err.to_string().contains("byte 6"));
    }
}
