//! The in-memory parse tree.

use jsonpath::Path;

use crate::parser::{parse_root, DomError};
use crate::query::collect_matches;

/// Kinds of JSON values in the parse tree.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueKind {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number (stored as `f64`, like RapidJSON's default).
    Number(f64),
    /// A string, with escape sequences left as-is (raw contents).
    String(String),
    /// An ordered array of values.
    Array(Vec<Value>),
    /// An object: attribute name–value pairs in document order.
    Object(Vec<(String, Value)>),
}

/// A node of the parse tree: its kind plus its byte span in the source.
#[derive(Clone, Debug, PartialEq)]
pub struct Value {
    pub(crate) span: (usize, usize),
    pub(crate) kind: ValueKind,
}

impl Value {
    /// The node's kind and children.
    pub fn kind(&self) -> &ValueKind {
        &self.kind
    }

    /// Byte span `[start, end)` of this value in the source document.
    pub fn span(&self) -> (usize, usize) {
        self.span
    }

    /// Looks up an object attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match &self.kind {
            ValueKind::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        match &self.kind {
            ValueKind::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Number of children (array elements or object attributes); 0 for
    /// primitives.
    pub fn len(&self) -> usize {
        match &self.kind {
            ValueKind::Array(items) => items.len(),
            ValueKind::Object(fields) => fields.len(),
            _ => 0,
        }
    }

    /// Whether the node has no children.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decodes the raw contents of a JSON string token (as stored in
/// [`ValueKind::String`], escapes left as-is) into the text it denotes.
///
/// This is an independent, character-wise implementation of RFC 8259
/// string semantics — deliberately written unlike the streaming crate's
/// byte-run decoder so the two can check each other differentially.
/// Returns `None` for an invalid escape, a bad `\u` sequence, or a lone
/// surrogate.
#[must_use]
pub fn decode_raw_string(raw: &str) -> Option<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hi = hex4(&mut chars)?;
                let cp = match hi {
                    0xD800..=0xDBFF => {
                        // A high surrogate must be chased by `\uXXXX` low.
                        if chars.next()? != '\\' || chars.next()? != 'u' {
                            return None;
                        }
                        let lo = hex4(&mut chars)?;
                        if !(0xDC00..=0xDFFF).contains(&lo) {
                            return None;
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    }
                    0xDC00..=0xDFFF => return None,
                    cp => cp,
                };
                out.push(char::from_u32(cp)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Reads four hex digits from a char stream as a code unit.
fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

/// A parsed document: the tree plus a borrow of the source bytes.
#[derive(Clone, Debug)]
pub struct Dom<'a> {
    input: &'a [u8],
    root: Value,
}

impl<'a> Dom<'a> {
    /// Parses a complete JSON record into a tree (the preprocessing step).
    ///
    /// # Errors
    ///
    /// [`DomError`] on any syntax error — unlike the streaming engines,
    /// the DOM parser validates the entire document.
    pub fn parse(input: &'a [u8]) -> Result<Self, DomError> {
        let root = parse_root(input)?;
        Ok(Dom { input, root })
    }

    /// The root value.
    pub fn root(&self) -> &Value {
        &self.root
    }

    /// The source bytes.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// Evaluates a JSONPath query by walking the tree, returning matched
    /// nodes in document order.
    pub fn query(&self, path: &Path) -> Vec<&Value> {
        let mut out = Vec::new();
        collect_matches(path, self.input, &self.root, path.root_state(), &mut out);
        out
    }

    /// Number of query matches.
    pub fn count(&self, path: &Path) -> usize {
        self.query(path).len()
    }

    /// The raw source text of a node (e.g. for comparing with streaming
    /// engines' output spans).
    pub fn text(&self, value: &Value) -> &'a str {
        std::str::from_utf8(&self.input[value.span.0..value.span.1])
            .expect("spans always cover valid UTF-8 boundaries of the parsed document")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn navigation_helpers() {
        let json = br#"{"a": [1, 2, {"b": true}], "c": null}"#;
        let dom = Dom::parse(json).unwrap();
        let a = dom.root().get("a").unwrap();
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let b = a.at(2).unwrap().get("b").unwrap();
        assert_eq!(b.kind(), &ValueKind::Bool(true));
        assert_eq!(dom.root().get("c").unwrap().kind(), &ValueKind::Null);
        assert!(dom.root().get("zzz").is_none());
        assert!(a.at(5).is_none());
        assert_eq!(dom.root().len(), 2);
    }

    #[test]
    fn spans_reconstruct_source() {
        let json = br#"{"a": [1, {"x": "y"}]}"#;
        let dom = Dom::parse(json).unwrap();
        let a = dom.root().get("a").unwrap();
        assert_eq!(dom.text(a), r#"[1, {"x": "y"}]"#);
        assert_eq!(dom.text(a.at(1).unwrap()), r#"{"x": "y"}"#);
        assert_eq!(dom.text(dom.root()), std::str::from_utf8(json).unwrap());
    }
}
