//! [`jsonski::Evaluate`] adapter: a query-bound DOM engine.

use std::ops::ControlFlow;

use jsonpath::{ParsePathError, Path};

use crate::Dom;

/// A JSONPath query evaluated by full DOM construction plus tree walking
/// (the paper's "RapidJSON" baseline), usable wherever
/// [`jsonski::Evaluate`] is accepted — e.g. in a [`jsonski::Pipeline`].
///
/// Each [`evaluate`](jsonski::Evaluate::evaluate) call parses the whole
/// record first, so the cost includes preprocessing, as in the paper's
/// measurements.
#[derive(Clone, Debug)]
pub struct DomQuery {
    path: Path,
    validation: jsonski::ValidationMode,
}

impl DomQuery {
    /// Binds the engine to an already-parsed path.
    pub fn new(path: Path) -> Self {
        DomQuery {
            path,
            validation: jsonski::ValidationMode::Permissive,
        }
    }

    /// Compiles a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn compile(query: &str) -> Result<Self, ParsePathError> {
        Ok(DomQuery::new(query.parse()?))
    }

    /// Sets the input trust level (builder-style). Strict runs the shared
    /// [`jsonski::validate_record`] pre-pass before parsing so this engine
    /// rejects exactly the inputs — at the same byte offsets — that the
    /// streaming engine rejects mid-skip.
    pub fn with_validation(mut self, mode: jsonski::ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// The compiled path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn strict_reject(&self, record: &[u8]) -> Option<jsonski::RecordOutcome> {
        if self.validation != jsonski::ValidationMode::Strict {
            return None;
        }
        jsonski::validate_record(record).map(|(offset, reason)| {
            jsonski::RecordOutcome::Failed(jsonski::EngineError::Invalid { offset, reason })
        })
    }
}

impl jsonski::Evaluate for DomQuery {
    fn name(&self) -> &'static str {
        "RapidJSON"
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
    ) -> jsonski::RecordOutcome {
        if let Some(failed) = self.strict_reject(record) {
            return failed;
        }
        // Blank records have no values and thus no matches (the streaming
        // engines' convention); the DOM parser itself rejects empty input.
        if record.iter().all(u8::is_ascii_whitespace) {
            return jsonski::RecordOutcome::Complete { matches: 0 };
        }
        let dom = match Dom::parse(record) {
            Ok(dom) => dom,
            Err(e) => {
                return jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                    engine: "RapidJSON",
                    message: e.to_string(),
                })
            }
        };
        let mut matches = 0usize;
        for node in dom.query(&self.path) {
            let (s, e) = node.span();
            matches += 1;
            if let ControlFlow::Break(()) =
                sink.on_match(jsonski::Match::new(record_idx, record, (s, e)))
            {
                return jsonski::RecordOutcome::Stopped { matches };
            }
        }
        jsonski::RecordOutcome::Complete { matches }
    }

    /// Splits the two-stage cost for the metrics layer: DOM parsing is
    /// reported as build time, the tree walk as traversal.
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
        metrics: &jsonski::Metrics,
    ) -> jsonski::RecordOutcome {
        if !metrics.is_enabled() {
            return self.evaluate(record, record_idx, sink);
        }
        if let Some(failed) = self.strict_reject(record) {
            metrics.record_outcome(record.len(), &failed);
            return failed;
        }
        if record.iter().all(u8::is_ascii_whitespace) {
            let outcome = jsonski::RecordOutcome::Complete { matches: 0 };
            metrics.record_outcome(record.len(), &outcome);
            return outcome;
        }
        let sw = metrics.stopwatch();
        let dom = match Dom::parse(record) {
            Ok(dom) => dom,
            Err(e) => {
                let ns = sw.elapsed_ns();
                metrics.add_build_ns(ns);
                metrics.add_eval_ns(ns);
                let outcome = jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                    engine: "RapidJSON",
                    message: e.to_string(),
                });
                metrics.record_outcome(record.len(), &outcome);
                return outcome;
            }
        };
        let build_ns = sw.elapsed_ns();
        let mut matches = 0usize;
        let mut stopped = false;
        for node in dom.query(&self.path) {
            let (s, e) = node.span();
            matches += 1;
            if sink
                .on_match(jsonski::Match::new(record_idx, record, (s, e)))
                .is_break()
            {
                stopped = true;
                break;
            }
        }
        let total_ns = sw.elapsed_ns();
        metrics.add_build_ns(build_ns);
        metrics.add_traverse_ns(total_ns.saturating_sub(build_ns));
        metrics.add_eval_ns(total_ns);
        let outcome = if stopped {
            jsonski::RecordOutcome::Stopped { matches }
        } else {
            jsonski::RecordOutcome::Complete { matches }
        };
        metrics.record_outcome(record.len(), &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonski::Evaluate;

    #[test]
    fn counts_and_failures() {
        let q = DomQuery::compile("$.a").unwrap();
        assert_eq!(q.name(), "RapidJSON");
        assert_eq!(q.count(br#"{"a": 1}"#).unwrap(), 1);
        assert_eq!(q.count(b"  ").unwrap(), 0);
        assert!(q.count(br#"{"a" 1}"#).is_err());
        assert_eq!(q.path().len(), 1);
    }

    #[test]
    fn early_exit_reports_stopped() {
        let q = DomQuery::compile("$[*]").unwrap();
        let mut sink =
            jsonski::FnSink::new(|_m: jsonski::Match<'_>| std::ops::ControlFlow::Break(()));
        match q.evaluate(b"[1, 2, 3]", 0, &mut sink) {
            jsonski::RecordOutcome::Stopped { matches } => assert_eq!(matches, 1),
            other => panic!("expected Stopped, got {other:?}"),
        }
    }
}
