//! Structural statistics of a JSON stream (the paper's Table 4 columns).

/// Counts of structural features in a data stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StructuralStats {
    /// Number of objects (`{`).
    pub objects: u64,
    /// Number of arrays (`[`).
    pub arrays: u64,
    /// Number of object attributes (structural `:`).
    pub attributes: u64,
    /// Number of primitive values (string/number/bool/null leaves).
    pub primitives: u64,
    /// Maximum nesting depth.
    pub depth: u32,
    /// Total bytes scanned.
    pub bytes: u64,
}

/// Scans a JSON stream (one record or many, whitespace/newline separated)
/// and tallies its structural statistics.
///
/// The scan is a simple validating-enough pass: strings and escapes are
/// tracked so metacharacters inside strings are not counted.
///
/// ```
/// let st = datagen::structural_stats(br#"{"a": [1, "x", {"b": null}]}"#);
/// assert_eq!(st.objects, 2);
/// assert_eq!(st.arrays, 1);
/// assert_eq!(st.attributes, 2);
/// assert_eq!(st.primitives, 3);
/// assert_eq!(st.depth, 3);
/// ```
pub fn structural_stats(input: &[u8]) -> StructuralStats {
    let mut st = StructuralStats {
        bytes: input.len() as u64,
        ..Default::default()
    };
    let mut depth = 0u32;
    let mut in_string = false;
    let mut prev_was_value_start = false; // inside a primitive token
    let mut i = 0usize;
    while i < input.len() {
        let b = input[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                in_string = true;
                // A string is a primitive unless it is an attribute name;
                // names are followed by ':' — patch retroactively instead:
                // count now, subtract at the ':' below.
                st.primitives += 1;
                prev_was_value_start = false;
            }
            b'{' => {
                st.objects += 1;
                depth += 1;
                st.depth = st.depth.max(depth);
                prev_was_value_start = false;
            }
            b'[' => {
                st.arrays += 1;
                depth += 1;
                st.depth = st.depth.max(depth);
                prev_was_value_start = false;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                prev_was_value_start = false;
            }
            b':' => {
                st.attributes += 1;
                // The string before this colon was a name, not a primitive.
                st.primitives = st.primitives.saturating_sub(1);
                prev_was_value_start = false;
            }
            b',' | b' ' | b'\t' | b'\n' | b'\r' => {
                prev_was_value_start = false;
            }
            _ => {
                // Part of a number / true / false / null token.
                if !prev_was_value_start {
                    st.primitives += 1;
                    prev_was_value_start = true;
                }
            }
        }
        i += 1;
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, GenConfig};

    #[test]
    fn counts_basic_document() {
        let st = structural_stats(br#"{"a": 1, "b": [true, null, "s"], "c": {"d": 2.5}}"#);
        assert_eq!(st.objects, 2);
        assert_eq!(st.arrays, 1);
        assert_eq!(st.attributes, 4);
        assert_eq!(st.primitives, 5);
        assert_eq!(st.depth, 2);
    }

    #[test]
    fn string_contents_do_not_count() {
        let st = structural_stats(br#"{"a": "{[:,]} \" x"}"#);
        assert_eq!(st.objects, 1);
        assert_eq!(st.arrays, 0);
        assert_eq!(st.attributes, 1);
        assert_eq!(st.primitives, 1);
    }

    #[test]
    fn multi_record_stream() {
        let st = structural_stats(b"{\"a\": 1}\n{\"a\": 2}\n");
        assert_eq!(st.objects, 2);
        assert_eq!(st.attributes, 2);
        assert_eq!(st.primitives, 2);
        assert_eq!(st.depth, 1);
    }

    #[test]
    fn generated_families_have_sane_shapes() {
        let cfg = GenConfig {
            target_bytes: 64 * 1024,
            seed: 5,
        };
        for ds in Dataset::all() {
            let data = ds.generate_large(&cfg);
            let st = structural_stats(data.bytes());
            assert!(st.objects > 0, "{}", ds.name());
            assert!(st.attributes > 0, "{}", ds.name());
            assert!(st.primitives > st.objects / 2, "{}", ds.name());
            assert!(st.depth >= 3, "{}: depth {}", ds.name(), st.depth);
        }
        // Relative shape checks from Table 4: NSPL is array/primitive heavy,
        // GMD is object heavy relative to arrays.
        let nspl = structural_stats(Dataset::Nspl.generate_large(&cfg).bytes());
        assert!(nspl.primitives > nspl.objects * 20);
        assert!(nspl.arrays > nspl.objects);
        let gmd = structural_stats(Dataset::Gmd.generate_large(&cfg).bytes());
        assert!(gmd.objects > gmd.arrays * 2);
    }
}
