//! A small push-based JSON writer used by the generators.

/// Builds JSON text into a byte buffer with correct comma placement.
///
/// # Example
///
/// ```
/// use datagen::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("a");
/// w.number_int(1);
/// w.key("b");
/// w.begin_array();
/// w.string("x");
/// w.string("y");
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.as_bytes(), br#"{"a": 1, "b": ["x", "y"]}"#);
/// ```
#[derive(Clone, Debug, Default)]
pub struct JsonWriter {
    buf: Vec<u8>,
    /// Whether a comma is needed before the next value at each open level.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        JsonWriter {
            buf: Vec::with_capacity(cap),
            need_comma: Vec::new(),
        }
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.extend_from_slice(b", ");
            }
            *need = true;
        }
    }

    /// Opens an object value.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push(b'{');
        self.need_comma.push(false);
    }

    /// Closes the current object.
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push(b'}');
    }

    /// Opens an array value.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push(b'[');
        self.need_comma.push(false);
    }

    /// Closes the current array.
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(b']');
    }

    /// Writes an attribute key (including the following `: `). The key must
    /// already be JSON-safe (no raw quotes/backslashes).
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        self.buf.push(b'"');
        self.buf.extend_from_slice(name.as_bytes());
        self.buf.extend_from_slice(b"\": ");
        // The value that follows must not get a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a string value; the content must already be JSON-safe
    /// (escape sequences allowed, raw quotes/backslashes not).
    pub fn string(&mut self, content: &str) {
        self.pre_value();
        self.buf.push(b'"');
        self.buf.extend_from_slice(content.as_bytes());
        self.buf.push(b'"');
    }

    /// Writes an integer value.
    pub fn number_int(&mut self, n: i64) {
        self.pre_value();
        self.buf.extend_from_slice(n.to_string().as_bytes());
    }

    /// Writes a float value with fixed precision.
    pub fn number_float(&mut self, x: f64) {
        self.pre_value();
        self.buf.extend_from_slice(format!("{x:.6}").as_bytes());
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, b: bool) {
        self.pre_value();
        self.buf
            .extend_from_slice(if b { b"true" } else { b"false" });
    }

    /// Writes a `null` value.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.extend_from_slice(b"null");
    }

    /// Writes a raw byte sequence as a value (caller guarantees validity).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.pre_value();
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a raw newline separator between top-level records (outside
    /// any value; comma state is unaffected).
    pub fn raw_newline(&mut self) {
        self.buf.push(b'\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_have_correct_commas() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.begin_object();
        w.key("x");
        w.null();
        w.key("y");
        w.boolean(false);
        w.end_object();
        w.number_float(1.5);
        w.begin_array();
        w.end_array();
        w.end_array();
        assert_eq!(w.as_bytes(), br#"[{"x": null, "y": false}, 1.500000, []]"#);
    }

    #[test]
    fn empty_object_and_helpers() {
        let mut w = JsonWriter::with_capacity(16);
        assert!(w.is_empty());
        w.begin_object();
        w.end_object();
        assert_eq!(w.len(), 2);
        assert_eq!(w.into_bytes(), b"{}");
    }

    #[test]
    fn raw_values_participate_in_commas() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.raw(b"1e3");
        w.raw(b"2e4");
        w.end_array();
        assert_eq!(w.as_bytes(), b"[1e3, 2e4]");
    }
}
