//! Random JSON-safe text fragments.

use rand::rngs::StdRng;
use rand::Rng;

const WORDS: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliett",
    "kilo", "lima", "mike", "november", "oscar", "papa", "quebec", "romeo", "sierra", "tango",
    "uniform", "victor", "whiskey", "xray", "yankee", "zulu", "amber", "birch", "cedar", "dune",
];

/// Fragments that exercise string masking: escaped quotes, escaped
/// backslashes, and metacharacters inside strings.
const SPICE: &[&str] = &[
    r#"\"quoted\""#,
    r"back\\slash",
    "braces {not real}",
    "brackets [0, 1]",
    "colon: comma,",
    r#"mix \"{[,:]}\" end"#,
];

/// A random word from a fixed vocabulary.
pub fn word(rng: &mut StdRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// A JSON-safe sentence of `n` words; roughly 5% of sentences embed a
/// metacharacter/escape fragment.
pub fn sentence(rng: &mut StdRng, n: usize) -> String {
    let mut s = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        if rng.gen_ratio(1, 20) {
            s.push_str(SPICE[rng.gen_range(0..SPICE.len())]);
        } else {
            s.push_str(word(rng));
        }
    }
    s
}

/// An identifier like `alpha_bravo_17`.
pub fn ident(rng: &mut StdRng) -> String {
    format!("{}_{}_{}", word(rng), word(rng), rng.gen_range(0..100))
}

/// A fake shortened URL.
pub fn short_url(rng: &mut StdRng) -> String {
    let tail: String = (0..8)
        .map(|_| {
            let c = rng.gen_range(0..36u32);
            char::from_digit(c % 10, 10)
                .filter(|_| c < 10)
                .unwrap_or_else(|| (b'a' + (c.saturating_sub(10)) as u8) as char)
        })
        .collect();
    format!("https://t.example/{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn sentences_are_json_safe() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sentence(&mut r, 12);
            // Raw quotes / backslashes only appear in valid escape pairs.
            let bytes = s.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        assert!(matches!(bytes.get(i + 1), Some(b'"') | Some(b'\\')), "{s}");
                        i += 2;
                    }
                    b'"' => panic!("unescaped quote in {s}"),
                    _ => i += 1,
                }
            }
        }
    }

    #[test]
    fn idents_and_urls_have_expected_shape() {
        let mut r = rng();
        let id = ident(&mut r);
        assert!(id.contains('_'));
        let url = short_url(&mut r);
        assert!(url.starts_with("https://t.example/"));
        assert_eq!(url.len(), "https://t.example/".len() + 8);
    }

    #[test]
    fn word_is_deterministic_per_seed() {
        let a = word(&mut rng());
        let b = word(&mut rng());
        assert_eq!(a, b);
    }
}
