//! The six dataset family generators (paper Table 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::text::{ident, sentence, short_url, word};
use crate::writer::JsonWriter;
use crate::{Dataset, GenConfig, GeneratedData};

pub(crate) fn generate(ds: Dataset, cfg: &GenConfig, large: bool) -> GeneratedData {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(ds as u64));
    let mut w = JsonWriter::with_capacity(cfg.target_bytes + cfg.target_bytes / 8);
    if large {
        generate_large(ds, cfg, &mut rng, &mut w);
        let len = w.len();
        GeneratedData::new(w.into_bytes(), vec![(0, len)])
    } else {
        generate_small(ds, cfg, &mut rng, w)
    }
}

fn generate_large(ds: Dataset, cfg: &GenConfig, rng: &mut StdRng, w: &mut JsonWriter) {
    match ds {
        Dataset::Tt | Dataset::Gmd | Dataset::Wp => {
            // Array-root datasets.
            w.begin_array();
            let mut i = 0usize;
            while w.len() < cfg.target_bytes {
                unit(ds, rng, w, i);
                i += 1;
            }
            w.end_array();
        }
        Dataset::Bb | Dataset::Wm => {
            let key = if ds == Dataset::Bb { "pd" } else { "it" };
            w.begin_object();
            w.key("version");
            w.number_int(2);
            w.key(key);
            w.begin_array();
            let mut i = 0usize;
            while w.len() < cfg.target_bytes {
                unit(ds, rng, w, i);
                i += 1;
            }
            w.end_array();
            w.key("total");
            w.number_int(rng.gen_range(0..1_000_000));
            w.end_object();
        }
        Dataset::Nspl => {
            w.begin_object();
            w.key("mt");
            nspl_metadata(rng, w);
            w.key("dt");
            w.begin_array();
            let mut i = 0usize;
            while w.len() < cfg.target_bytes {
                unit(ds, rng, w, i);
                i += 1;
            }
            w.end_array();
            w.end_object();
        }
    }
}

fn generate_small(
    ds: Dataset,
    cfg: &GenConfig,
    rng: &mut StdRng,
    mut w: JsonWriter,
) -> GeneratedData {
    let mut records = Vec::new();
    let mut i = 0usize;
    while w.len() < cfg.target_bytes {
        let start = w.len();
        match ds {
            Dataset::Tt | Dataset::Gmd | Dataset::Wp => {
                // Same array envelope so the `$[*]...` queries apply.
                w.begin_array();
                unit(ds, rng, &mut w, i);
                w.end_array();
            }
            Dataset::Bb | Dataset::Wm => {
                let key = if ds == Dataset::Bb { "pd" } else { "it" };
                w.begin_object();
                w.key(key);
                w.begin_array();
                unit(ds, rng, &mut w, i);
                w.end_array();
                w.end_object();
            }
            Dataset::Nspl => {
                // One row group per record; the `mt` metadata block exists
                // only in the large form (NSPL1 is large-only).
                w.begin_object();
                w.key("dt");
                w.begin_array();
                unit(ds, rng, &mut w, i);
                w.end_array();
                w.end_object();
            }
        }
        let end = w.len();
        records.push((start, end));
        w.raw_newline();
        i += 1;
    }
    GeneratedData::new(w.into_bytes(), records)
}

/// Writes one dataset unit (a tweet, a product, ...). `index` is the unit's
/// ordinal in the stream (used by WP to guarantee matches inside the
/// `$[10:21]` window of query WP2).
fn unit(ds: Dataset, rng: &mut StdRng, w: &mut JsonWriter, index: usize) {
    match ds {
        Dataset::Tt => tweet(rng, w),
        Dataset::Bb => bb_product(rng, w),
        Dataset::Gmd => gmd_direction(rng, w),
        Dataset::Nspl => nspl_group(rng, w),
        Dataset::Wm => wm_item(rng, w),
        Dataset::Wp => {
            let force_p150 = (10..21).contains(&index) && index.is_multiple_of(2);
            wp_entity(rng, w, force_p150);
        }
    }
}

// ---------------------------------------------------------------- TT ------

fn tweet(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("created_at");
    w.string("Mon Jul 05 12:00:00 +0000 2021");
    w.key("id");
    w.number_int(rng.gen_range(1_000_000_000..9_000_000_000));
    w.key("text");
    {
        let n = rng.gen_range(8..24);
        w.string(&sentence(rng, n));
    }
    w.key("user");
    {
        w.begin_object();
        w.key("id");
        w.number_int(rng.gen_range(1_000..10_000_000));
        w.key("name");
        w.string(&ident(rng));
        w.key("screen_name");
        w.string(&ident(rng));
        w.key("followers_count");
        w.number_int(rng.gen_range(0..100_000));
        w.key("friends_count");
        w.number_int(rng.gen_range(0..5_000));
        w.key("verified");
        w.boolean(rng.gen_bool(0.02));
        w.key("description");
        w.string(&sentence(rng, 6));
        w.end_object();
    }
    w.key("coordinates");
    w.begin_array();
    w.number_float(rng.gen_range(-90.0..90.0));
    w.number_float(rng.gen_range(-180.0..180.0));
    w.end_array();
    w.key("place");
    {
        w.begin_object();
        w.key("name");
        w.string(word(rng));
        w.key("country_code");
        w.string("US");
        w.key("bounding_box");
        {
            w.begin_object();
            w.key("type");
            w.string("Polygon");
            w.key("coordinates");
            w.begin_array();
            w.begin_array();
            for _ in 0..4 {
                w.begin_array();
                w.number_float(rng.gen_range(-180.0..180.0));
                w.number_float(rng.gen_range(-90.0..90.0));
                w.end_array();
            }
            w.end_array();
            w.end_array();
            w.end_object();
        }
        w.end_object();
    }
    w.key("en");
    {
        w.begin_object();
        w.key("hashtags");
        w.begin_array();
        for _ in 0..rng.gen_range(0..3) {
            w.begin_object();
            w.key("text");
            w.string(word(rng));
            w.key("indices");
            w.begin_array();
            let a = rng.gen_range(0..100);
            w.number_int(a);
            w.number_int(a + 8);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("urls");
        w.begin_array();
        // ~59% of tweets carry one URL (paper: 88,881 / 150,135 records).
        if rng.gen_bool(0.59) {
            w.begin_object();
            w.key("url");
            w.string(&short_url(rng));
            w.key("expanded_url");
            w.string(&format!("https://example.com/{}", ident(rng)));
            w.key("indices");
            w.begin_array();
            w.number_int(10);
            w.number_int(33);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    // ~20% of tweets embed a retweeted status with its own place chain and
    // media size metadata, which is what gives the real TT dump its depth
    // of 11 (Table 4).
    if rng.gen_bool(0.2) {
        w.key("retweeted_status");
        w.begin_object();
        w.key("id");
        w.number_int(rng.gen_range(1_000_000_000..9_000_000_000));
        w.key("place");
        w.begin_object();
        w.key("bounding_box");
        w.begin_object();
        w.key("coordinates");
        w.begin_array();
        w.begin_array();
        w.begin_array();
        w.number_float(rng.gen_range(-180.0..180.0));
        w.number_float(rng.gen_range(-90.0..90.0));
        w.end_array();
        w.end_array();
        w.end_array();
        w.end_object();
        w.end_object();
        w.key("extended_entities");
        w.begin_object();
        w.key("media");
        w.begin_array();
        w.begin_object();
        w.key("sizes");
        w.begin_object();
        w.key("large");
        w.begin_object();
        w.key("wh");
        w.begin_array();
        w.number_int(rng.gen_range(100..2000));
        w.number_int(rng.gen_range(100..2000));
        w.end_array();
        w.end_object();
        w.end_object();
        w.end_object();
        w.end_array();
        w.end_object();
        w.end_object();
    }
    w.key("retweet_count");
    w.number_int(rng.gen_range(0..10_000));
    w.key("favorited");
    w.boolean(false);
    w.end_object();
}

// ---------------------------------------------------------------- BB ------

fn bb_product(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("sku");
    w.number_int(rng.gen_range(100_000..10_000_000));
    w.key("nm");
    w.string(&sentence(rng, 4));
    w.key("cp");
    w.begin_array();
    // Category path: 1-5 entries, usually >= 3, so `[1:3]` yields ~2
    // matches per product (paper: 459,332 / 230K records).
    for _ in 0..rng.gen_range(1..=5) {
        w.begin_object();
        w.key("id");
        w.string(&format!("abcat{}", rng.gen_range(100_000..999_999)));
        w.key("name");
        w.string(word(rng));
        w.end_object();
    }
    w.end_array();
    // Variation characteristics: rare (paper BB2: 8,857 matches / 230K).
    if rng.gen_bool(0.04) {
        w.key("vc");
        w.begin_array();
        w.begin_object();
        w.key("cha");
        w.string(word(rng));
        w.key("values");
        w.begin_array();
        for _ in 0..rng.gen_range(1..4) {
            w.string(word(rng));
        }
        w.end_array();
        w.end_object();
        w.end_array();
    }
    w.key("price");
    w.begin_object();
    w.key("currency");
    w.string("USD");
    w.key("amount");
    w.number_float(rng.gen_range(1.0..2000.0));
    w.end_object();
    w.key("onSale");
    w.boolean(rng.gen_bool(0.3));
    w.key("desc");
    {
        let n = rng.gen_range(10..30);
        w.string(&sentence(rng, n));
    }
    w.key("related");
    w.begin_array();
    for _ in 0..rng.gen_range(0..4) {
        w.number_int(rng.gen_range(100_000..10_000_000));
    }
    w.end_array();
    w.end_object();
}

// --------------------------------------------------------------- GMD ------

fn gmd_direction(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("geocoded_waypoints");
    w.begin_array();
    for _ in 0..2 {
        w.begin_object();
        w.key("geocoder_status");
        w.string("OK");
        w.key("place_id");
        w.string(&ident(rng));
        w.end_object();
    }
    w.end_array();
    w.key("rt");
    w.begin_array();
    for _ in 0..rng.gen_range(1..=2) {
        w.begin_object();
        w.key("summary");
        w.string(&sentence(rng, 3));
        w.key("lg");
        w.begin_array();
        for _ in 0..rng.gen_range(1..=2) {
            w.begin_object();
            w.key("distance");
            gmd_measure(rng, w, "km");
            w.key("duration");
            gmd_measure(rng, w, "mins");
            w.key("st");
            w.begin_array();
            for _ in 0..rng.gen_range(12..30) {
                gmd_step(rng, w);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    // `atm` (paper GMD2): very rare — 270 / 4.44K records ≈ 6%.
    if rng.gen_bool(0.06) {
        w.key("atm");
        w.string(&ident(rng));
    }
    w.key("status");
    w.string("OK");
    w.end_object();
}

fn gmd_measure(rng: &mut StdRng, w: &mut JsonWriter, unit_name: &str) {
    w.begin_object();
    w.key("tx");
    w.string(&format!("{} {unit_name}", rng.gen_range(1..300)));
    w.key("vl");
    w.number_int(rng.gen_range(10..100_000));
    w.end_object();
}

fn gmd_step(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("dt");
    gmd_measure(rng, w, "mins");
    w.key("ds");
    gmd_measure(rng, w, "m");
    w.key("html_instructions");
    {
        let n = rng.gen_range(5..12);
        w.string(&sentence(rng, n));
    }
    w.key("start_location");
    w.begin_object();
    w.key("lat");
    w.number_float(rng.gen_range(-90.0..90.0));
    w.key("lng");
    w.number_float(rng.gen_range(-180.0..180.0));
    w.end_object();
    w.key("travel_mode");
    w.string("DRIVING");
    w.end_object();
}

// -------------------------------------------------------------- NSPL ------

pub(crate) fn nspl_metadata(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("vw");
    w.begin_object();
    w.key("id");
    w.string(&ident(rng));
    w.key("co");
    w.begin_array();
    for i in 0..44 {
        w.begin_object();
        w.key("id");
        w.number_int(i);
        w.key("nm");
        w.string(&format!("col_{}", word(rng)));
        w.key("meta");
        w.begin_object();
        w.key("codes");
        w.begin_array();
        w.number_int(rng.gen_range(0..9));
        w.end_array();
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
}

/// One NSPL row group: an array of rows, each row an array of ~24 scalars.
fn nspl_group(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_array();
    for _ in 0..rng.gen_range(4..10) {
        w.begin_array();
        for col in 0..24 {
            match col % 4 {
                0 => w.string(&format!(
                    "{}{} {}XX",
                    word(rng).to_uppercase().chars().next().unwrap(),
                    rng.gen_range(1..20),
                    rng.gen_range(1..9)
                )),
                1 => w.number_int(rng.gen_range(0..1_000_000)),
                2 => w.number_float(rng.gen_range(-5.0..60.0)),
                _ => {
                    if rng.gen_bool(0.1) {
                        w.null()
                    } else {
                        w.string(word(rng))
                    }
                }
            }
        }
        w.end_array();
    }
    w.end_array();
}

// ---------------------------------------------------------------- WM ------

fn wm_item(rng: &mut StdRng, w: &mut JsonWriter) {
    w.begin_object();
    w.key("itemId");
    w.number_int(rng.gen_range(10_000_000..99_999_999));
    w.key("nm");
    w.string(&sentence(rng, 5));
    w.key("msrp");
    w.number_float(rng.gen_range(1.0..500.0));
    w.key("salePrice");
    w.number_float(rng.gen_range(1.0..500.0));
    // Best-marketplace-reduced-price: rare (paper WM1: 15,892 / 272,499).
    if rng.gen_bool(0.06) {
        w.key("bmrpr");
        w.begin_object();
        w.key("pr");
        w.number_float(rng.gen_range(1.0..400.0));
        w.key("currency");
        w.string("USD");
        w.end_object();
    }
    w.key("categoryPath");
    w.string(&format!("{}/{}/{}", word(rng), word(rng), word(rng)));
    // A small minority of items list features in an array (Table 4: WM has
    // ~10x fewer arrays than objects).
    if rng.gen_bool(0.1) {
        w.key("features");
        w.begin_array();
        for _ in 0..rng.gen_range(1..4) {
            w.string(word(rng));
        }
        w.end_array();
    }
    w.key("shipping");
    w.begin_object();
    w.key("standard");
    w.boolean(true);
    w.key("twoDay");
    w.boolean(rng.gen_bool(0.5));
    w.end_object();
    w.key("longDescription");
    {
        let n = rng.gen_range(8..20);
        w.string(&sentence(rng, n));
    }
    w.end_object();
}

// ---------------------------------------------------------------- WP ------

fn wp_entity(rng: &mut StdRng, w: &mut JsonWriter, force_p150: bool) {
    w.begin_object();
    w.key("id");
    w.string(&format!("Q{}", rng.gen_range(1..100_000_000)));
    w.key("ty");
    w.string("item");
    w.key("lb");
    w.begin_object();
    for lang in ["en", "de", "fr"] {
        w.key(lang);
        w.begin_object();
        w.key("lg");
        w.string(lang);
        w.key("vl");
        w.string(&sentence(rng, 3));
        w.end_object();
    }
    w.end_object();
    w.key("cl");
    w.begin_object();
    // Always-present claim groups.
    for pty in ["P31", "P17"] {
        w.key(pty);
        w.begin_array();
        for _ in 0..rng.gen_range(1..=2) {
            wp_claim(rng, w, pty);
        }
        w.end_array();
    }
    // P150 ("contains administrative territorial entity"): ~11% of entities
    // (paper WP1: 15,603 matches / 137K records).
    if force_p150 || rng.gen_bool(0.11) {
        w.key("P150");
        w.begin_array();
        for _ in 0..rng.gen_range(1..=3) {
            wp_claim(rng, w, "P150");
        }
        w.end_array();
    }
    w.end_object();
    w.key("sitelinks");
    w.begin_object();
    w.key("enwiki");
    w.begin_object();
    w.key("site");
    w.string("enwiki");
    w.key("title");
    w.string(&sentence(rng, 2));
    w.end_object();
    w.end_object();
    w.end_object();
}

fn wp_claim(rng: &mut StdRng, w: &mut JsonWriter, pty: &str) {
    w.begin_object();
    w.key("ms");
    w.begin_object();
    w.key("pty");
    w.string(pty);
    w.key("snaktype");
    w.string("value");
    w.key("dv");
    w.begin_object();
    w.key("type");
    w.string("wikibase-entityid");
    w.key("value");
    w.begin_object();
    w.key("entity-type");
    w.string("item");
    w.key("numeric-id");
    w.number_int(rng.gen_range(1..10_000_000));
    w.end_object();
    w.end_object();
    w.end_object();
    w.key("rk");
    w.string("normal");
    // ~30% of claims carry references, the chain that gives the real WP
    // dump its depth of 12 (Table 4): refs[] -> snaks -> P248[] -> dv ->
    // value.
    if rng.gen_bool(0.3) {
        w.key("refs");
        w.begin_array();
        w.begin_object();
        w.key("snaks");
        w.begin_object();
        w.key("P248");
        w.begin_array();
        w.begin_object();
        w.key("dv");
        w.begin_object();
        w.key("value");
        w.begin_object();
        w.key("numeric-id");
        w.number_int(rng.gen_range(1..10_000_000));
        w.end_object();
        w.end_object();
        w.end_object();
        w.end_array();
        w.end_object();
        w.end_object();
        w.end_array();
    }
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GenConfig {
        GenConfig {
            target_bytes: 48 * 1024,
            seed: 11,
        }
    }

    #[test]
    fn every_family_generates_nonempty_both_forms() {
        for ds in Dataset::all() {
            let l = ds.generate_large(&small_cfg());
            assert!(l.bytes().len() >= small_cfg().target_bytes, "{}", ds.name());
            assert_eq!(l.records().len(), 1);
            let s = ds.generate_small(&small_cfg());
            assert!(s.records().len() > 1, "{}", ds.name());
        }
    }

    #[test]
    fn small_records_are_newline_separated() {
        let s = Dataset::Bb.generate_small(&small_cfg());
        for win in s.records().windows(2) {
            let gap = &s.bytes()[win[0].1..win[1].0];
            assert_eq!(gap, b"\n");
        }
    }
}
