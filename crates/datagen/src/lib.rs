//! Synthetic dataset generators for the JSONSki reproduction.
//!
//! The paper evaluates on six ~1 GB real-world datasets (Twitter, Best Buy,
//! Google Maps Directions, UK NSPL, Walmart, Wikidata) that are not
//! redistributable. This crate synthesizes structurally equivalent data:
//! each generator is shaped to the paper's Table 4 statistics (relative
//! counts of objects/arrays/attributes/primitives, record counts, nesting
//! depth) and to the Table 5 query paths, so the *selectivity regime* of
//! every query — how often it matches, how much of each record is irrelevant
//! to it — is preserved. Fast-forward opportunity is a function of this
//! structure, not of the concrete byte contents.
//!
//! Two forms per dataset, matching the paper's two processing scenarios:
//!
//! * [`Dataset::generate_large`] — one single large record;
//! * [`Dataset::generate_small`] — a sequence of small records with an
//!   offset table (the paper: "Each input with small records is stored in
//!   an array, along with an offset array for starting positions").
//!
//! Generated strings occasionally contain escaped quotes, backslashes, and
//! JSON metacharacters, exercising the engines' string-masking paths.
//!
//! # Example
//!
//! ```
//! use datagen::{Dataset, GenConfig};
//!
//! let cfg = GenConfig { target_bytes: 64 * 1024, seed: 42 };
//! let data = Dataset::Tt.generate_small(&cfg);
//! assert!(data.bytes().len() >= 64 * 1024);
//! assert!(data.records().len() > 1);
//! ```

#![deny(missing_docs)]

mod families;
mod stats;
mod text;
mod writer;

pub use stats::{structural_stats, StructuralStats};
pub use writer::JsonWriter;

/// Generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Approximate size of the generated stream in bytes (generation stops
    /// at the first record boundary past this size).
    pub target_bytes: usize,
    /// RNG seed; equal seeds give identical data.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_bytes: 16 * 1024 * 1024,
            seed: 0x5eed_0001,
        }
    }
}

/// A generated data stream plus its record offset table.
#[derive(Clone, Debug)]
pub struct GeneratedData {
    bytes: Vec<u8>,
    records: Vec<(usize, usize)>,
}

impl GeneratedData {
    pub(crate) fn new(bytes: Vec<u8>, records: Vec<(usize, usize)>) -> Self {
        GeneratedData { bytes, records }
    }

    /// The raw JSON stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Record spans within [`GeneratedData::bytes`]; a single span for the
    /// large-record form.
    pub fn records(&self) -> &[(usize, usize)] {
        &self.records
    }

    /// Iterates the record slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.records.iter().map(|&(s, e)| &self.bytes[s..e])
    }
}

/// The six dataset families of the paper's Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Geo-referenced tweets (Twitter developer API).
    Tt,
    /// Best Buy product catalog.
    Bb,
    /// Google Maps Directions results.
    Gmd,
    /// UK National Statistics Postcode Lookup.
    Nspl,
    /// Walmart product catalog.
    Wm,
    /// Wikidata entities.
    Wp,
}

impl Dataset {
    /// All six datasets in the paper's order.
    pub fn all() -> [Dataset; 6] {
        [
            Dataset::Tt,
            Dataset::Bb,
            Dataset::Gmd,
            Dataset::Nspl,
            Dataset::Wm,
            Dataset::Wp,
        ]
    }

    /// The paper's dataset abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Tt => "TT",
            Dataset::Bb => "BB",
            Dataset::Gmd => "GMD",
            Dataset::Nspl => "NSPL",
            Dataset::Wm => "WM",
            Dataset::Wp => "WP",
        }
    }

    /// The two Table 5 queries for this dataset: `(id, JSONPath)`.
    pub fn queries(self) -> [(&'static str, &'static str); 2] {
        match self {
            Dataset::Tt => [("TT1", "$[*].en.urls[*].url"), ("TT2", "$[*].text")],
            Dataset::Bb => [("BB1", "$.pd[*].cp[1:3].id"), ("BB2", "$.pd[*].vc[*].cha")],
            Dataset::Gmd => [
                ("GMD1", "$[*].rt[*].lg[*].st[*].dt.tx"),
                ("GMD2", "$[*].atm"),
            ],
            Dataset::Nspl => [("NSPL1", "$.mt.vw.co[*].nm"), ("NSPL2", "$.dt[*][*][2:4]")],
            Dataset::Wm => [("WM1", "$.it[*].bmrpr.pr"), ("WM2", "$.it[*].nm")],
            Dataset::Wp => [
                ("WP1", "$[*].cl.P150[*].ms.pty"),
                ("WP2", "$[10:21].cl.P150[*].ms.pty"),
            ],
        }
    }

    /// Query ids (from [`Dataset::queries`]) that are only meaningful on the
    /// single-large-record form (the paper excludes NSPL1 and WP2 from the
    /// small-record scenario).
    pub fn large_only_queries(self) -> &'static [&'static str] {
        match self {
            Dataset::Nspl => &["NSPL1"],
            Dataset::Wp => &["WP2"],
            _ => &[],
        }
    }

    /// Generates the single-large-record form.
    pub fn generate_large(self, cfg: &GenConfig) -> GeneratedData {
        families::generate(self, cfg, true)
    }

    /// Generates the small-records form (records separated by newlines),
    /// with per-record offsets.
    pub fn generate_small(self, cfg: &GenConfig) -> GeneratedData {
        families::generate(self, cfg, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = GenConfig {
            target_bytes: 32 * 1024,
            seed: 7,
        };
        for ds in Dataset::all() {
            let a = ds.generate_large(&cfg);
            let b = ds.generate_large(&cfg);
            assert_eq!(a.bytes(), b.bytes(), "{}", ds.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Tt.generate_small(&GenConfig {
            target_bytes: 32 * 1024,
            seed: 1,
        });
        let b = Dataset::Tt.generate_small(&GenConfig {
            target_bytes: 32 * 1024,
            seed: 2,
        });
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn record_spans_tile_the_stream() {
        let cfg = GenConfig {
            target_bytes: 64 * 1024,
            seed: 3,
        };
        for ds in Dataset::all() {
            let data = ds.generate_small(&cfg);
            let mut prev_end = 0;
            for &(s, e) in data.records() {
                assert!(s >= prev_end && e > s, "{}", ds.name());
                prev_end = e;
            }
            assert!(prev_end <= data.bytes().len());
        }
    }

    #[test]
    fn names_and_queries_are_stable() {
        assert_eq!(Dataset::Tt.name(), "TT");
        assert_eq!(Dataset::all().len(), 6);
        for ds in Dataset::all() {
            assert_eq!(ds.queries().len(), 2);
        }
        assert_eq!(Dataset::Nspl.large_only_queries(), &["NSPL1"]);
        assert_eq!(Dataset::Wp.large_only_queries(), &["WP2"]);
        assert!(Dataset::Tt.large_only_queries().is_empty());
    }
}
