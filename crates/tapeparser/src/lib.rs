//! simdjson-class baseline: two-stage bit-parallel parsing into a *tape*,
//! then on-tape query evaluation.
//!
//! Like simdjson (Langdale & Lemire, VLDB J. 2019), this engine uses bitwise
//! parallelism — the same [`simdbits`] kernels JSONSki uses — but only to
//! *find* the structural characters (stage 1). It then materializes the
//! whole record as a tape (stage 2) before any query runs, i.e. it is a
//! *preprocessing* engine: the paper's Table 3 classifies simdjson as
//! bit-parallel but without fast-forwarding, and Figures 10/11 show JSONSki
//! outperforming it by never constructing any in-memory structure.
//!
//! # Example
//!
//! ```
//! use tapeparser::Tape;
//!
//! let json = br#"{"it": [{"nm": "a"}, {"nm": "b"}]}"#;
//! let tape = Tape::build(json)?;
//! let path = "$.it[*].nm".parse()?;
//! assert_eq!(tape.query(&path), vec![&b"\"a\""[..], &b"\"b\""[..]]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod evaluate;
mod query;
mod stage1;
mod stage2;
mod view;

pub use evaluate::TapeQuery;
pub use stage1::{structural_index, StructuralIndex};
pub use stage2::{Entry, EntryKind, Tape, TapeError};
pub use view::View;
