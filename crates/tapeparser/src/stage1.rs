//! Stage 1: bit-parallel structural index construction.
//!
//! Produces the ordered positions of all structural characters (`{`, `}`,
//! `[`, `]`, `:`, `,`) and all unescaped quotes — everything stage 2 needs
//! to build the tape without re-scanning the bytes character by character.

use simdbits::{classify_stream, Classifier, BLOCK};

/// The stage-1 output: structural character positions in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructuralIndex {
    /// Positions (byte offsets) of structural characters and quotes.
    pub positions: Vec<u32>,
}

impl StructuralIndex {
    /// Number of indexed positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the document has no structural characters at all.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Builds the structural index for `input` (one pass, bit-parallel).
///
/// ```
/// let idx = tapeparser::structural_index(br#"{"a": [1, 2]}"#);
/// // `{`, `"`(open), `"`(close), `:`, `[`, `,`, `]`, `}`
/// assert_eq!(idx.positions, vec![0, 1, 3, 4, 6, 8, 11, 12]);
/// ```
pub fn structural_index(input: &[u8]) -> StructuralIndex {
    // Typical JSON has roughly one structural character per 4–8 bytes.
    let mut positions = Vec::with_capacity(input.len() / 4 + 8);
    let mut cls = Classifier::new();
    classify_stream(&mut cls, input, |w, bm| {
        let base = (w * BLOCK) as u32;
        let mut bits =
            bm.lbrace | bm.rbrace | bm.lbracket | bm.rbracket | bm.colon | bm.comma | bm.quote;
        while bits != 0 {
            positions.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
    });
    StructuralIndex { positions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(input: &[u8]) -> Vec<u32> {
        structural_index(input).positions
    }

    #[test]
    fn ignores_structurals_in_strings() {
        let got = positions(br#"{"a{b}": "x,y"}"#);
        // `{`, open", close" (after a{b}), `:`, open", close", `}`
        assert_eq!(got, vec![0, 1, 6, 7, 9, 13, 14]);
    }

    #[test]
    fn escaped_quotes_are_not_structural() {
        let got = positions(br#""a\"b""#);
        assert_eq!(got, vec![0, 5]);
    }

    #[test]
    fn positions_are_sorted_across_blocks() {
        let mut v = Vec::new();
        for _ in 0..10 {
            v.extend_from_slice(br#"{"key": [1, 2, 3]}, "#);
        }
        let got = positions(&v);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        // 10 structural chars per repeat: { " " : [ , , ] } plus the
        // trailing record separator comma.
        assert_eq!(got.len(), 10 * 10);
    }

    #[test]
    fn empty_input() {
        let idx = structural_index(b"");
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }
}
