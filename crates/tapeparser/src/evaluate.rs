//! [`jsonski::Evaluate`] adapter: a query-bound tape engine.

use std::ops::ControlFlow;

use jsonpath::{ParsePathError, Path};

use crate::Tape;

/// A JSONPath query evaluated by two-stage tape construction plus on-tape
/// traversal (the paper's "simdjson" baseline), usable wherever
/// [`jsonski::Evaluate`] is accepted — e.g. in a [`jsonski::Pipeline`].
///
/// Each [`evaluate`](jsonski::Evaluate::evaluate) call builds the whole
/// tape first, so the cost includes preprocessing, as in the paper's
/// measurements.
#[derive(Clone, Debug)]
pub struct TapeQuery {
    path: Path,
}

impl TapeQuery {
    /// Binds the engine to an already-parsed path.
    pub fn new(path: Path) -> Self {
        TapeQuery { path }
    }

    /// Compiles a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed expressions.
    pub fn compile(query: &str) -> Result<Self, ParsePathError> {
        Ok(TapeQuery {
            path: query.parse()?,
        })
    }

    /// The compiled path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl jsonski::Evaluate for TapeQuery {
    fn name(&self) -> &'static str {
        "simdjson"
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn jsonski::MatchSink,
    ) -> jsonski::RecordOutcome {
        let tape = match Tape::build(record) {
            Ok(tape) => tape,
            Err(e) => {
                return jsonski::RecordOutcome::Failed(jsonski::EngineError::Engine {
                    engine: "simdjson",
                    message: e.to_string(),
                })
            }
        };
        let mut matches = 0usize;
        for m in tape.query(&self.path) {
            matches += 1;
            if let ControlFlow::Break(()) = sink.on_match(record_idx, m) {
                return jsonski::RecordOutcome::Stopped { matches };
            }
        }
        jsonski::RecordOutcome::Complete { matches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsonski::Evaluate;

    #[test]
    fn counts_and_failures() {
        let q = TapeQuery::compile("$.a").unwrap();
        assert_eq!(q.name(), "simdjson");
        assert_eq!(q.count(br#"{"a": 1}"#).unwrap(), 1);
        assert_eq!(q.count(b"  ").unwrap(), 0);
        assert!(q.count(br#"{"a" 1}"#).is_err());
        assert_eq!(q.path().len(), 1);
    }

    #[test]
    fn early_exit_reports_stopped() {
        let q = TapeQuery::compile("$[*]").unwrap();
        let mut sink = jsonski::FnSink::new(|_, _m: &[u8]| std::ops::ControlFlow::Break(()));
        match q.evaluate(b"[1, 2, 3]", 0, &mut sink) {
            jsonski::RecordOutcome::Stopped { matches } => assert_eq!(matches, 1),
            other => panic!("expected Stopped, got {other:?}"),
        }
    }
}
