//! Stage 2: tape construction from the structural index.
//!
//! The tape is a flat, pre-order encoding of the parse tree: one [`Entry`]
//! per value (plus one per attribute name), each carrying its byte span and
//! the tape index just past its subtree (`next`), which is what lets the
//! query phase jump over irrelevant values — *after* having paid to build
//! the whole tape, which is precisely the preprocessing cost the paper's
//! streaming scheme avoids.

use std::error::Error;
use std::fmt;

use jsonpath::Path;

use crate::query::collect;
use crate::stage1::structural_index;

/// Tape entry kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// An object; children are (Key, value-subtree) pairs.
    Object,
    /// An array; children are value subtrees.
    Array,
    /// An attribute name (always directly inside an `Object`).
    Key,
    /// A string scalar.
    String,
    /// A numeric scalar (span holds the raw text).
    Number,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
}

/// One tape entry: kind, byte span, and the tape index past its subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// What this entry encodes.
    pub kind: EntryKind,
    /// Byte span `[start, end)` in the source.
    pub span: (u32, u32),
    /// Tape index one past this entry's subtree (`self_index + 1` for
    /// scalars and keys).
    pub next: u32,
}

/// Error raised while building the tape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TapeError {
    message: &'static str,
    /// Byte offset of the error.
    pub pos: usize,
}

impl TapeError {
    fn new(message: &'static str, pos: usize) -> Self {
        TapeError { message, pos }
    }
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl Error for TapeError {}

/// The fully-built tape for one record.
#[derive(Clone, Debug)]
pub struct Tape<'a> {
    input: &'a [u8],
    entries: Vec<Entry>,
}

impl<'a> Tape<'a> {
    /// Runs both stages: structural index, then tape construction.
    ///
    /// # Errors
    ///
    /// [`TapeError`] on structurally malformed input.
    pub fn build(input: &'a [u8]) -> Result<Self, TapeError> {
        let index = structural_index(input);
        Self::from_index(input, &index.positions)
    }

    /// Stage 2 alone, given stage 1's output (exposed so benchmarks can
    /// time the stages separately).
    ///
    /// # Errors
    ///
    /// [`TapeError`] on structurally malformed input.
    pub fn from_index(input: &'a [u8], positions: &[u32]) -> Result<Self, TapeError> {
        let mut b = Builder {
            input,
            positions,
            i: 0,
            entries: Vec::with_capacity(positions.len()),
            depth: 0,
        };
        b.skip_leading_ws_value()?;
        Ok(Tape {
            input,
            entries: b.entries,
        })
    }

    /// The tape entries in pre-order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The source bytes.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// Evaluates a query over the tape, returning matched raw byte slices
    /// in document order.
    pub fn query(&self, path: &Path) -> Vec<&'a [u8]> {
        let mut out = Vec::new();
        if !self.entries.is_empty() {
            collect(self, 0, path, path.root_state(), &mut out);
        }
        out
    }

    /// Number of query matches.
    pub fn count(&self, path: &Path) -> usize {
        self.query(path).len()
    }

    /// The raw text of entry `idx`.
    pub fn text(&self, idx: usize) -> &'a [u8] {
        let e = &self.entries[idx];
        &self.input[e.span.0 as usize..e.span.1 as usize]
    }
}

const MAX_DEPTH: usize = 1024;

struct Builder<'a, 'p> {
    input: &'a [u8],
    positions: &'p [u32],
    i: usize, // index into positions
    entries: Vec<Entry>,
    depth: usize,
}

impl Builder<'_, '_> {
    fn peek_pos(&self) -> Option<u32> {
        self.positions.get(self.i).copied()
    }

    fn byte_at(&self, p: u32) -> u8 {
        self.input[p as usize]
    }

    fn skip_leading_ws_value(&mut self) -> Result<(), TapeError> {
        // The root value: either starts at the first structural position or
        // is a bare scalar.
        let first_non_ws = self
            .input
            .iter()
            .position(|b| !matches!(b, b' ' | b'\t' | b'\n' | b'\r'));
        let Some(start) = first_non_ws else {
            return Ok(()); // blank input: empty tape
        };
        self.value(start as u32)?;
        Ok(())
    }

    /// Parses the value starting at byte `start`; consumes its structural
    /// positions and appends its entries. Returns the byte offset just past
    /// the value.
    fn value(&mut self, start: u32) -> Result<u32, TapeError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(TapeError::new("nesting too deep", start as usize));
        }
        let result = match self.byte_at(start) {
            b'{' => self.container(start, b'}', EntryKind::Object),
            b'[' => self.container(start, b']', EntryKind::Array),
            b'"' => self.string(start, EntryKind::String),
            _ => self.scalar(start),
        };
        self.depth -= 1;
        result
    }

    fn container(&mut self, start: u32, close: u8, kind: EntryKind) -> Result<u32, TapeError> {
        // Consume the opener from the positions stream.
        debug_assert_eq!(self.peek_pos(), Some(start));
        self.i += 1;
        let my_entry = self.entries.len();
        self.entries.push(Entry {
            kind,
            span: (start, 0),
            next: 0,
        });
        let is_object = kind == EntryKind::Object;
        // Empty container: the closer follows the opener with only
        // whitespace in between (a scalar element would also present the
        // closer as the next structural position, hence the byte check).
        if let Some(p) = self.peek_pos() {
            if self.byte_at(p) == close && self.only_ws_between(start + 1, p) {
                self.i += 1;
                return self.close_container(my_entry, p);
            }
        }
        loop {
            let p = self
                .peek_pos()
                .ok_or_else(|| TapeError::new("unterminated container", start as usize))?;
            let c = self.byte_at(p);
            if is_object {
                // Attribute: key string, colon, value.
                if c != b'"' {
                    return Err(TapeError::new("expected attribute name", p as usize));
                }
                let key_end = self.string_close(p)?;
                self.entries.push(Entry {
                    kind: EntryKind::Key,
                    span: (p + 1, key_end),
                    next: self.entries.len() as u32 + 1,
                });
                let colon = self
                    .peek_pos()
                    .ok_or_else(|| TapeError::new("expected `:`", key_end as usize))?;
                if self.byte_at(colon) != b':' {
                    return Err(TapeError::new("expected `:`", colon as usize));
                }
                self.i += 1;
                let vstart = self.value_start_after(colon + 1)?;
                self.value(vstart)?;
            } else {
                // Array element: starts after the `[` or the last `,`.
                let vstart = self.value_start_after(self.prev_consumed_end())?;
                self.value(vstart)?;
            }
            // Delimiter: `,` continues, the closer ends the container.
            let d = self
                .peek_pos()
                .ok_or_else(|| TapeError::new("unterminated container", start as usize))?;
            match self.byte_at(d) {
                b',' => {
                    self.i += 1;
                }
                c if c == close => {
                    self.i += 1;
                    return self.close_container(my_entry, d);
                }
                _ => return Err(TapeError::new("expected `,` or closer", d as usize)),
            }
        }
    }

    /// Whether the bytes in `[from, to)` are all JSON whitespace.
    fn only_ws_between(&self, from: u32, to: u32) -> bool {
        self.input[from as usize..to as usize]
            .iter()
            .all(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    }

    fn close_container(&mut self, my_entry: usize, close_pos: u32) -> Result<u32, TapeError> {
        let next = self.entries.len() as u32;
        let e = &mut self.entries[my_entry];
        e.span.1 = close_pos + 1;
        e.next = next;
        Ok(close_pos + 1)
    }

    /// Byte offset where scanning for the next value may begin: one past
    /// the most recently consumed structural position.
    fn prev_consumed_end(&self) -> u32 {
        debug_assert!(self.i > 0);
        self.positions[self.i - 1] + 1
    }

    /// Finds the first non-whitespace byte at/after `from` (the start of a
    /// value).
    fn value_start_after(&self, from: u32) -> Result<u32, TapeError> {
        let mut j = from as usize;
        while j < self.input.len() {
            match self.input[j] {
                b' ' | b'\t' | b'\n' | b'\r' => j += 1,
                _ => return Ok(j as u32),
            }
        }
        Err(TapeError::new("expected value", from as usize))
    }

    /// Consumes the two quote positions of the string opening at `open`,
    /// returning the closing quote's position.
    fn string_close(&mut self, open: u32) -> Result<u32, TapeError> {
        debug_assert_eq!(self.peek_pos(), Some(open));
        self.i += 1;
        let close = self
            .peek_pos()
            .ok_or_else(|| TapeError::new("unterminated string", open as usize))?;
        if self.byte_at(close) != b'"' {
            return Err(TapeError::new("unterminated string", close as usize));
        }
        self.i += 1;
        Ok(close)
    }

    fn string(&mut self, open: u32, kind: EntryKind) -> Result<u32, TapeError> {
        let close = self.string_close(open)?;
        self.entries.push(Entry {
            kind,
            span: (open, close + 1),
            next: self.entries.len() as u32 + 1,
        });
        Ok(close + 1)
    }

    /// A number / `true` / `false` / `null`: runs from `start` to the next
    /// structural position (exclusive), right-trimmed.
    fn scalar(&mut self, start: u32) -> Result<u32, TapeError> {
        let end_limit = self
            .peek_pos()
            .map(|p| p as usize)
            .unwrap_or(self.input.len());
        if end_limit <= start as usize {
            return Err(TapeError::new("expected value", start as usize));
        }
        let mut end = end_limit;
        while end > start as usize && matches!(self.input[end - 1], b' ' | b'\t' | b'\n' | b'\r') {
            end -= 1;
        }
        let text = &self.input[start as usize..end];
        let kind = match text[0] {
            b't' => EntryKind::True,
            b'f' => EntryKind::False,
            b'n' => EntryKind::Null,
            b'-' | b'0'..=b'9' => EntryKind::Number,
            _ => return Err(TapeError::new("invalid scalar", start as usize)),
        };
        self.entries.push(Entry {
            kind,
            span: (start, end as u32),
            next: self.entries.len() as u32 + 1,
        });
        Ok(end as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_preorder_tape() {
        let json = br#"{"a": [1, "x"], "b": true}"#;
        let tape = Tape::build(json).unwrap();
        let kinds: Vec<EntryKind> = tape.entries().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EntryKind::Object,
                EntryKind::Key, // a
                EntryKind::Array,
                EntryKind::Number, // 1
                EntryKind::String, // "x"
                EntryKind::Key,    // b
                EntryKind::True,
            ]
        );
        // The object's `next` covers the whole tape.
        assert_eq!(tape.entries()[0].next as usize, tape.entries().len());
        // The array subtree is entries 2..5.
        assert_eq!(tape.entries()[2].next, 5);
    }

    #[test]
    fn spans_reconstruct_text() {
        let json = br#"{"a": [1, "x"], "b": true}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(tape.text(2), br#"[1, "x"]"#);
        assert_eq!(tape.text(3), b"1");
        assert_eq!(tape.text(4), br#""x""#);
        assert_eq!(tape.text(6), b"true");
        assert_eq!(tape.text(0), &json[..]);
    }

    #[test]
    fn scalars_between_structurals() {
        let json = b"[1, 2.5e1, -3, true, false, null]";
        let tape = Tape::build(json).unwrap();
        let kinds: Vec<EntryKind> = tape.entries()[1..].iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EntryKind::Number,
                EntryKind::Number,
                EntryKind::Number,
                EntryKind::True,
                EntryKind::False,
                EntryKind::Null,
            ]
        );
    }

    #[test]
    fn empty_containers() {
        let tape = Tape::build(b"{}").unwrap();
        assert_eq!(tape.entries().len(), 1);
        let tape = Tape::build(b"[ ]").unwrap();
        assert_eq!(tape.entries().len(), 1);
    }

    #[test]
    fn bare_scalar_root() {
        let tape = Tape::build(b"  42 ").unwrap();
        assert_eq!(tape.entries()[0].kind, EntryKind::Number);
        assert_eq!(tape.text(0), b"42");
    }

    #[test]
    fn blank_input_is_empty_tape() {
        let tape = Tape::build(b"   ").unwrap();
        assert!(tape.entries().is_empty());
    }

    #[test]
    fn structural_errors_detected() {
        assert!(Tape::build(br#"{"a": 1"#).is_err());
        assert!(Tape::build(br#"{"a" 1}"#).is_err());
        assert!(Tape::build(br#"{1: 2}"#).is_err());
        assert!(Tape::build(br#"["unclosed]"#).is_err());
    }

    #[test]
    fn deeply_nested_guard() {
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(b'[', 3000));
        v.extend(std::iter::repeat_n(b']', 3000));
        assert!(Tape::build(&v).is_err());
    }

    #[test]
    fn nested_objects_have_correct_next_links() {
        let json = br#"{"o": {"i": {"x": 1}}, "after": 2}"#;
        let tape = Tape::build(json).unwrap();
        // entry 0 Object, 1 Key o, 2 Object, 3 Key i, 4 Object, 5 Key x,
        // 6 Number, 7 Key after, 8 Number
        assert_eq!(tape.entries()[2].next, 7);
        assert_eq!(tape.entries()[4].next, 7);
        assert_eq!(tape.text(8), b"2");
    }
}
