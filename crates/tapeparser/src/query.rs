//! On-tape query evaluation.
//!
//! Containers carry `next` links, so irrelevant subtrees are jumped over in
//! O(1) — but only because stage 2 already paid to discover every span.

use jsonpath::Step;

use crate::stage2::{EntryKind, Tape};

/// Collects matches of `steps` under the value rooted at tape index `idx`.
pub(crate) fn collect<'a>(tape: &Tape<'a>, idx: usize, steps: &[Step], out: &mut Vec<&'a [u8]>) {
    let entries = tape.entries();
    let entry = entries[idx];
    let Some((step, rest)) = steps.split_first() else {
        out.push(tape.text(idx));
        return;
    };
    match (entry.kind, step) {
        (EntryKind::Object, Step::Child(_) | Step::AnyChild) => {
            let end = entry.next as usize;
            let mut i = idx + 1;
            while i < end {
                debug_assert_eq!(entries[i].kind, EntryKind::Key);
                let key = tape.text(i);
                let value = i + 1;
                let matches = match step {
                    Step::Child(name) => jsonpath::names::matches(key, name),
                    _ => true,
                };
                if matches {
                    collect(tape, value, rest, out);
                }
                i = entries[value].next as usize;
            }
        }
        (EntryKind::Array, s) if s.is_array_step() => {
            let end = entry.next as usize;
            let mut i = idx + 1;
            let mut counter = 0usize;
            while i < end {
                if step.selects_index(counter) {
                    collect(tape, i, rest, out);
                }
                i = entries[i].next as usize;
                counter += 1;
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use jsonpath::Path;

    fn q<'a>(tape: &Tape<'a>, query: &str) -> Vec<&'a [u8]> {
        let path: Path = query.parse().unwrap();
        tape.query(&path)
    }

    #[test]
    fn child_chain() {
        let json = br#"{"a": {"b": {"c": 9}}, "z": 0}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$.a.b.c"), vec![b"9"]);
        assert!(q(&tape, "$.a.b.x").is_empty());
    }

    #[test]
    fn wildcard_and_slices() {
        let json = br#"{"it": [{"nm": "a"}, {"nm": "b"}, {"pr": 1}, {"nm": "c"}]}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(
            q(&tape, "$.it[*].nm"),
            vec![&b"\"a\""[..], b"\"b\"", b"\"c\""]
        );
        assert_eq!(q(&tape, "$.it[1:3].nm"), vec![&b"\"b\""[..]]);
        assert_eq!(q(&tape, "$.it[0].nm"), vec![&b"\"a\""[..]]);
    }

    #[test]
    fn key_with_escapes_matches_raw() {
        let json = br#"{"a": 1}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(tape.count(&"$.a".parse().unwrap()), 1);
    }

    #[test]
    fn root_and_empty() {
        let json = br#"[{"x": 1}]"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$"), vec![&json[..]]);
        let blank = Tape::build(b" ").unwrap();
        assert_eq!(blank.count(&"$".parse().unwrap()), 0);
    }

    #[test]
    fn kind_mismatch() {
        let json = br#"{"a": [1, 2]}"#;
        let tape = Tape::build(json).unwrap();
        assert!(q(&tape, "$.a.b").is_empty());
        assert!(q(&tape, "$[0]").is_empty());
    }
}
