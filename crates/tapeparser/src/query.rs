//! On-tape query evaluation.
//!
//! Containers carry `next` links, so irrelevant subtrees are jumped over in
//! O(1) — but only because stage 2 already paid to discover every span.
//!
//! The walker carries the query automaton's position set ([`State`]) down
//! the tape, calling the shared transitions ([`Path::on_key`],
//! [`Path::on_element`], [`Path::prune_state`]) at each edge. Matches are
//! emitted *before* recursing so output order is span-start ascending
//! (pre-order), byte-identical to the streaming engines. Filter predicates
//! probe the element's source bytes via its tape span.

use jsonpath::{ContainerKind, Path, State, Status};

use crate::stage2::{EntryKind, Tape};

/// Collects matches under the value rooted at tape index `idx`, whose
/// automaton value state is `state` (possibly carrying the accept bit).
pub(crate) fn collect<'a>(
    tape: &Tape<'a>,
    idx: usize,
    path: &Path,
    state: State,
    out: &mut Vec<&'a [u8]>,
) {
    let entries = tape.entries();
    let entry = entries[idx];
    match path.status_of(state) {
        Status::Unmatched => return,
        Status::Accept => {
            out.push(tape.text(idx));
            return;
        }
        Status::AcceptAndDescend => out.push(tape.text(idx)),
        Status::Matched => {}
    }
    match entry.kind {
        EntryKind::Object => {
            let set = path.prune_state(state, ContainerKind::Object);
            if set.is_unmatched() {
                return;
            }
            let end = entry.next as usize;
            let mut i = idx + 1;
            while i < end {
                debug_assert_eq!(entries[i].kind, EntryKind::Key);
                // Keys are stored raw; the transition compares escape-aware
                // like all engines.
                let key = tape.text(i);
                let value = i + 1;
                let vs = path.on_key(set, key);
                collect(tape, value, path, vs, out);
                i = entries[value].next as usize;
            }
        }
        EntryKind::Array => {
            let set = path.prune_state(state, ContainerKind::Array);
            if set.is_unmatched() {
                return;
            }
            let end = entry.next as usize;
            let input = tape.input();
            let mut i = idx + 1;
            let mut counter = 0usize;
            while i < end {
                let start = entries[i].span.0 as usize;
                let vs = path.on_element(set, counter, &mut |expr| {
                    jsonpath::filter::eval(expr, &input[start..])
                });
                collect(tape, i, path, vs, out);
                i = entries[i].next as usize;
                counter += 1;
            }
        }
        _ => {} // scalar: nothing below to extend a live position
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use jsonpath::Path;

    fn q<'a>(tape: &Tape<'a>, query: &str) -> Vec<&'a [u8]> {
        let path: Path = query.parse().unwrap();
        tape.query(&path)
    }

    #[test]
    fn child_chain() {
        let json = br#"{"a": {"b": {"c": 9}}, "z": 0}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$.a.b.c"), vec![b"9"]);
        assert!(q(&tape, "$.a.b.x").is_empty());
    }

    #[test]
    fn wildcard_and_slices() {
        let json = br#"{"it": [{"nm": "a"}, {"nm": "b"}, {"pr": 1}, {"nm": "c"}]}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(
            q(&tape, "$.it[*].nm"),
            vec![&b"\"a\""[..], b"\"b\"", b"\"c\""]
        );
        assert_eq!(q(&tape, "$.it[1:3].nm"), vec![&b"\"b\""[..]]);
        assert_eq!(q(&tape, "$.it[0].nm"), vec![&b"\"a\""[..]]);
    }

    #[test]
    fn key_with_escapes_matches_raw() {
        let json = br#"{"a": 1}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(tape.count(&"$.a".parse().unwrap()), 1);
    }

    #[test]
    fn root_and_empty() {
        let json = br#"[{"x": 1}]"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$"), vec![&json[..]]);
        let blank = Tape::build(b" ").unwrap();
        assert_eq!(blank.count(&"$".parse().unwrap()), 0);
    }

    #[test]
    fn kind_mismatch() {
        let json = br#"{"a": [1, 2]}"#;
        let tape = Tape::build(json).unwrap();
        assert!(q(&tape, "$.a.b").is_empty());
        assert!(q(&tape, "$[0]").is_empty());
    }

    #[test]
    fn descendant_matches_every_depth_in_pre_order() {
        let json = br#"{"a": {"a": 1}, "b": [{"a": 2}], "c": 3}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$..a"), vec![&br#"{"a": 1}"#[..], b"1", b"2"]);
        assert_eq!(q(&tape, "$..b[0].a"), vec![&b"2"[..]]);
    }

    #[test]
    fn descendant_index_applies_in_every_array() {
        let json = br#"{"x": [[9, 8], [7]], "y": [6]}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$..[0]"), vec![&b"[9, 8]"[..], b"9", b"7", b"6"]);
    }

    #[test]
    fn unions_select_listed_members() {
        let json = br#"{"a": 1, "b": 2, "c": 3}"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$['a','c']"), vec![&b"1"[..], b"3"]);
        let arr = br#"[10, 20, 30, 40]"#;
        let tape = Tape::build(arr).unwrap();
        assert_eq!(q(&tape, "$[0,2]"), vec![&b"10"[..], b"30"]);
    }

    #[test]
    fn filters_probe_element_bytes() {
        let json = br#"[{"x": 1}, {"x": 5}, {"y": 9}]"#;
        let tape = Tape::build(json).unwrap();
        assert_eq!(q(&tape, "$[?(@.x > 2)]"), vec![&br#"{"x": 5}"#[..]]);
        let prims = br#"[1, "two", 3]"#;
        let tape = Tape::build(prims).unwrap();
        assert_eq!(q(&tape, "$[?(@ == 3)]"), vec![&b"3"[..]]);
    }
}
