//! On-demand navigation over a built tape (the simdjson "DOM API" analog).
//!
//! [`View`] is a lightweight cursor into a [`Tape`]: child lookups walk the
//! `next` links so skipping a sibling subtree is O(1), and scalar accessors
//! parse lazily from the original bytes.

use std::borrow::Cow;

use jsonpath::names;

use crate::stage2::{EntryKind, Tape};

/// A value inside a [`Tape`].
#[derive(Clone, Copy, Debug)]
pub struct View<'t, 'a> {
    tape: &'t Tape<'a>,
    idx: usize,
}

impl<'a> Tape<'a> {
    /// A view of the root value, or `None` for a blank document.
    pub fn root(&self) -> Option<View<'_, 'a>> {
        if self.entries().is_empty() {
            None
        } else {
            Some(View { tape: self, idx: 0 })
        }
    }
}

impl<'t, 'a> View<'t, 'a> {
    /// The value's kind.
    pub fn kind(&self) -> EntryKind {
        self.tape.entries()[self.idx].kind
    }

    /// The raw source text of this value.
    pub fn text(&self) -> &'a [u8] {
        self.tape.text(self.idx)
    }

    /// Looks up an object attribute by (escape-aware) name.
    pub fn get(&self, name: &str) -> Option<View<'t, 'a>> {
        let entries = self.tape.entries();
        if self.kind() != EntryKind::Object {
            return None;
        }
        let end = entries[self.idx].next as usize;
        let mut i = self.idx + 1;
        while i < end {
            debug_assert_eq!(entries[i].kind, EntryKind::Key);
            let value = i + 1;
            if names::matches(self.tape.text(i), name) {
                return Some(View {
                    tape: self.tape,
                    idx: value,
                });
            }
            i = entries[value].next as usize;
        }
        None
    }

    /// Indexes into an array, skipping earlier siblings in O(1) each.
    pub fn at(&self, index: usize) -> Option<View<'t, 'a>> {
        let entries = self.tape.entries();
        if self.kind() != EntryKind::Array {
            return None;
        }
        let end = entries[self.idx].next as usize;
        let mut i = self.idx + 1;
        let mut n = 0usize;
        while i < end {
            if n == index {
                return Some(View {
                    tape: self.tape,
                    idx: i,
                });
            }
            i = entries[i].next as usize;
            n += 1;
        }
        None
    }

    /// Number of children (array elements or object attributes).
    pub fn len(&self) -> usize {
        let entries = self.tape.entries();
        let end = entries[self.idx].next as usize;
        match self.kind() {
            EntryKind::Array => {
                let mut i = self.idx + 1;
                let mut n = 0;
                while i < end {
                    i = entries[i].next as usize;
                    n += 1;
                }
                n
            }
            EntryKind::Object => {
                let mut i = self.idx + 1;
                let mut n = 0;
                while i < end {
                    i = entries[i + 1].next as usize; // key, then value subtree
                    n += 1;
                }
                n
            }
            _ => 0,
        }
    }

    /// Whether the value has no children (true for all scalars).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// String contents with JSON escapes resolved (borrowed when none).
    pub fn as_str(&self) -> Option<Cow<'a, str>> {
        if self.kind() != EntryKind::String {
            return None;
        }
        let raw = self.text();
        let body = &raw[1..raw.len() - 1]; // strip quotes
        if body.contains(&b'\\') {
            names::unescape(body).map(Cow::Owned)
        } else {
            std::str::from_utf8(body).ok().map(Cow::Borrowed)
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        if self.kind() != EntryKind::Number {
            return None;
        }
        std::str::from_utf8(self.text()).ok()?.parse().ok()
    }

    /// Boolean value, if this is `true`/`false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self.kind() {
            EntryKind::True => Some(true),
            EntryKind::False => Some(false),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        self.kind() == EntryKind::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"{
        "nm": "wid\"get",
        "price": 19.5,
        "tags": ["a", "b", "c"],
        "meta": {"active": true, "legacy": false, "notes": null},
        "empty": {}
    }"#;

    #[test]
    fn navigation_and_scalars() {
        let tape = Tape::build(DOC).unwrap();
        let root = tape.root().unwrap();
        assert_eq!(root.kind(), EntryKind::Object);
        assert_eq!(root.len(), 5);
        assert!(!root.is_empty());

        assert_eq!(root.get("nm").unwrap().as_str().unwrap(), "wid\"get");
        assert_eq!(root.get("price").unwrap().as_f64(), Some(19.5));
        let tags = root.get("tags").unwrap();
        assert_eq!(tags.len(), 3);
        assert_eq!(tags.at(1).unwrap().as_str().unwrap(), "b");
        assert!(tags.at(3).is_none());

        let meta = root.get("meta").unwrap();
        assert_eq!(meta.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(meta.get("legacy").unwrap().as_bool(), Some(false));
        assert!(meta.get("notes").unwrap().is_null());
        assert!(root.get("empty").unwrap().is_empty());
        assert!(root.get("missing").is_none());
    }

    #[test]
    fn kind_mismatches_return_none() {
        let tape = Tape::build(DOC).unwrap();
        let root = tape.root().unwrap();
        assert!(root.at(0).is_none()); // object, not array
        assert!(root.get("price").unwrap().get("x").is_none());
        assert!(root.get("price").unwrap().as_str().is_none());
        assert!(root.get("nm").unwrap().as_f64().is_none());
        assert!(root.get("nm").unwrap().as_bool().is_none());
        assert!(!root.get("nm").unwrap().is_null());
    }

    #[test]
    fn borrowed_vs_owned_strings() {
        let tape = Tape::build(br#"["plain", "esc\nape"]"#).unwrap();
        let root = tape.root().unwrap();
        assert!(matches!(
            root.at(0).unwrap().as_str(),
            Some(Cow::Borrowed("plain"))
        ));
        assert!(matches!(root.at(1).unwrap().as_str(), Some(Cow::Owned(s)) if s == "esc\nape"));
    }

    #[test]
    fn blank_document_has_no_root() {
        assert!(Tape::build(b"  ").unwrap().root().is_none());
    }

    #[test]
    fn text_reconstructs_subtrees() {
        let tape = Tape::build(DOC).unwrap();
        let tags = tape.root().unwrap().get("tags").unwrap();
        assert_eq!(tags.text(), br#"["a", "b", "c"]"#);
    }
}
