//! Property-based serial/parallel pipeline equivalence: on random record
//! batches — including injected malformed records — a [`Pipeline`] must
//! deliver a byte-identical match stream, the same summary, and the same
//! deterministic metrics totals for every worker count and both error
//! policies. Evaluated-side counters are additionally compared under
//! [`ErrorPolicy::SkipMalformed`], where every record is evaluated exactly
//! once regardless of parallelism (under `FailFast` workers may speculate
//! past the failing record, so only delivered-side counters are portable).

use std::ops::ControlFlow;
use std::sync::Arc;

use proptest::prelude::*;

use jsonski::{
    CancellationToken, EngineError, ErrorPolicy, JsonSki, Match, MatchSink, Metrics,
    MetricsSnapshot, Pipeline, PipelineSummary, RecordSource, SliceRecords,
};

/// Owned in-memory record batch (malformed records included verbatim —
/// unlike `SliceRecords`, boundaries are given, not discovered).
struct OwnedRecords {
    records: Vec<Vec<u8>>,
    next: usize,
}

impl RecordSource for OwnedRecords {
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
        if self.next >= self.records.len() {
            return Ok(None);
        }
        let r = &self.records[self.next];
        self.next += 1;
        Ok(Some(r))
    }
}

/// Sink recording the full delivered stream: matches and skip reports.
#[derive(Default, PartialEq, Eq, Debug)]
struct Recorder {
    matches: Vec<(u64, Vec<u8>)>,
    errors: Vec<u64>,
}

impl MatchSink for Recorder {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.matches.push((m.record_idx(), m.bytes().to_vec()));
        ControlFlow::Continue(())
    }

    fn on_record_error(&mut self, record_idx: u64, _error: &EngineError) -> ControlFlow<()> {
        self.errors.push(record_idx);
        ControlFlow::Continue(())
    }
}

/// A well-formed record drawing from the key/shape universe the queries
/// below can address.
fn valid_record() -> BoxedStrategy<Vec<u8>> {
    let scalar = prop_oneof![
        Just("null".to_string()),
        (-999i64..999).prop_map(|n| n.to_string()),
        Just("\"x{y}\\\"z\"".to_string()),
    ];
    scalar
        .prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4)
                    .prop_map(|vs| format!("[{}]", vs.join(", "))),
                prop::collection::btree_map(
                    prop_oneof![
                        Just("a".to_string()),
                        Just("b".to_string()),
                        Just("c".to_string())
                    ],
                    inner,
                    0..4
                )
                .prop_map(|m| {
                    let fields: Vec<String> = m
                        .into_iter()
                        .map(|(k, v)| format!("\"{k}\": {v}"))
                        .collect();
                    format!("{{{}}}", fields.join(", "))
                }),
            ]
        })
        .prop_map(String::into_bytes)
        .boxed()
}

/// A structurally malformed record (missing colon, unclosed or mismatched
/// containers) — the kinds of damage every engine must diagnose.
fn malformed_record() -> BoxedStrategy<Vec<u8>> {
    prop_oneof![
        Just(b"{\"a\" 1}".to_vec()),
        Just(b"{\"a\": [1, 2".to_vec()),
        Just(b"{\"a\": [3, 30}".to_vec()),
        Just(b"[1, {\"b\": 2]".to_vec()),
    ]
    .boxed()
}

/// A batch of up to a dozen records, roughly one in five malformed.
fn batch() -> BoxedStrategy<Vec<Vec<u8>>> {
    prop::collection::vec(
        prop_oneof![4 => valid_record(), 1 => malformed_record()],
        0..12,
    )
    .boxed()
}

/// A record that breaks the *splitter* (not just evaluation): excess
/// closers error mid-stream and resynchronize past the line; unbalanced
/// opens swallow following lines until balance or end of stream. Both
/// exercise [`MatchSink::on_resync`] under [`ErrorPolicy::SkipMalformed`].
fn splitter_breaking_record() -> BoxedStrategy<Vec<u8>> {
    prop_oneof![
        Just(b"]".to_vec()),
        Just(b"}".to_vec()),
        Just(b"[1, 2]]".to_vec()),
        Just(b"{\"a\": 1}}".to_vec()),
        Just(b"{\"a\": [1, 2".to_vec()),
    ]
    .boxed()
}

/// A batch dense in splitter-breaking damage, so most runs resynchronize
/// at least once.
fn resync_batch() -> BoxedStrategy<Vec<Vec<u8>>> {
    prop::collection::vec(
        prop_oneof![2 => valid_record(), 1 => splitter_breaking_record()],
        1..12,
    )
    .boxed()
}

fn query() -> BoxedStrategy<String> {
    prop_oneof![
        Just("$.a".to_string()),
        Just("$.a[*]".to_string()),
        Just("$[*]".to_string()),
        Just("$.*".to_string()),
        Just("$.a.b".to_string()),
    ]
    .boxed()
}

/// The metrics totals that must be identical for every worker count.
fn delivered_totals(s: &MetricsSnapshot) -> (u64, u64, u64, u64) {
    (
        s.records_delivered,
        s.matches_delivered,
        s.bytes_delivered,
        s.records_skipped,
    )
}

/// The evaluated-side totals, portable only when every record is evaluated
/// exactly once (SkipMalformed, or failure-free FailFast runs).
fn evaluated_totals(s: &MetricsSnapshot) -> (u64, u64, u64, u64, [u64; 5]) {
    (
        s.records_evaluated,
        s.records_failed,
        s.matches_emitted,
        s.bytes_evaluated,
        s.ff_skipped,
    )
}

#[allow(clippy::type_complexity)]
fn run(
    engine: &JsonSki,
    records: &[Vec<u8>],
    jobs: usize,
    policy: ErrorPolicy,
) -> (Recorder, Result<PipelineSummary, String>, MetricsSnapshot) {
    let metrics = Arc::new(Metrics::new());
    let mut source = OwnedRecords {
        records: records.to_vec(),
        next: 0,
    };
    let mut sink = Recorder::default();
    let result = Pipeline::new()
        .workers(jobs)
        .error_policy(policy)
        .metrics(Arc::clone(&metrics))
        .run(engine, &mut source, &mut sink)
        .map_err(|e| e.to_string());
    (sink, result, metrics.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_pipeline_equals_serial(records in batch(), q in query()) {
        let engine = JsonSki::compile(&q).unwrap();
        let has_malformed = records.iter().any(|r| engine.count(r).is_err());
        for policy in [ErrorPolicy::FailFast, ErrorPolicy::SkipMalformed] {
            let (ref_sink, ref_result, ref_snap) = run(&engine, &records, 1, policy);
            for jobs in [2usize, 8] {
                let (sink, result, snap) = run(&engine, &records, jobs, policy);
                prop_assert_eq!(
                    &sink, &ref_sink,
                    "delivered stream diverges: q={} jobs={} policy={:?}", q, jobs, policy
                );
                match (&result, &ref_result) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "summary: q={} jobs={}", q, jobs),
                    (Err(_), Err(_)) => {}
                    (a, b) => {
                        prop_assert!(false, "result kind diverges: jobs={} {:?} vs {:?}", jobs, a, b);
                    }
                }
                prop_assert_eq!(
                    delivered_totals(&snap),
                    delivered_totals(&ref_snap),
                    "delivered metrics: q={} jobs={} policy={:?}", q, jobs, policy
                );
                // SkipMalformed evaluates every record exactly once whatever
                // the worker count; so does FailFast when nothing fails.
                if policy == ErrorPolicy::SkipMalformed || !has_malformed {
                    prop_assert_eq!(
                        evaluated_totals(&snap),
                        evaluated_totals(&ref_snap),
                        "evaluated metrics: q={} jobs={} policy={:?}", q, jobs, policy
                    );
                }
            }
            // The pipeline's own summary must agree with the sink's view and
            // the metrics registry's delivered counters.
            if let Ok(summary) = &ref_result {
                prop_assert_eq!(summary.matches, ref_sink.matches.len());
                prop_assert_eq!(summary.failed, ref_sink.errors.len() as u64);
                prop_assert_eq!(ref_snap.matches_delivered, ref_sink.matches.len() as u64);
                prop_assert_eq!(ref_snap.records_skipped, ref_sink.errors.len() as u64);
            }
        }
    }

    // Summary accounting must not drift across checkpoints: splitting a
    // batch at an arbitrary point and summing the two segments' summaries
    // must equal the uninterrupted run, counter for counter, with the
    // delivered match stream concatenating byte-identically.
    #[test]
    fn split_run_summaries_sum_to_the_whole(
        records in batch(),
        q in query(),
        split in 0usize..12,
        jobs in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let engine = JsonSki::compile(&q).unwrap();
        let k = split.min(records.len());
        let (full_sink, full, _) = run(&engine, &records, jobs, ErrorPolicy::SkipMalformed);
        let full = full.unwrap();
        let (head_sink, head, _) = run(&engine, &records[..k], jobs, ErrorPolicy::SkipMalformed);
        let (tail_sink, tail, _) = run(&engine, &records[k..], jobs, ErrorPolicy::SkipMalformed);
        let (head, tail) = (head.unwrap(), tail.unwrap());

        prop_assert_eq!(head.records + tail.records, full.records);
        prop_assert_eq!(head.matches + tail.matches, full.matches);
        prop_assert_eq!(head.failed + tail.failed, full.failed);
        prop_assert_eq!(head.resyncs + tail.resyncs, full.resyncs);
        prop_assert_eq!(head.resync_bytes + tail.resync_bytes, full.resync_bytes);

        let whole: Vec<&[u8]> = full_sink.matches.iter().map(|(_, b)| b.as_slice()).collect();
        let glued: Vec<&[u8]> = head_sink
            .matches
            .iter()
            .chain(tail_sink.matches.iter())
            .map(|(_, b)| b.as_slice())
            .collect();
        prop_assert_eq!(glued, whole, "q={} jobs={} k={}", q, jobs, k);
    }

    // Cancelling mid-run and resuming from the committed offset must cover
    // the byte stream exactly once: segment summaries sum to the
    // uninterrupted run's, and the match bytes concatenate identically —
    // even when resynchronizations occupy part of the stream.
    #[test]
    fn cancel_then_resume_covers_the_stream_once(
        records in batch(),
        q in query(),
        cancel_at in 1usize..8,
        jobs in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let engine = JsonSki::compile(&q).unwrap();
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(r);
            stream.push(b'\n');
        }

        let run_slice = |bytes: &[u8], token: Option<CancellationToken>| {
            let mut source = SliceRecords::new(bytes);
            let mut sink = Recorder::default();
            let mut pipeline = Pipeline::new()
                .workers(jobs)
                .error_policy(ErrorPolicy::SkipMalformed);
            if let Some(t) = &token {
                pipeline = pipeline.cancel_token(t.clone());
            }
            let summary = pipeline.run(&engine, &mut source, &mut sink).unwrap();
            (sink, summary)
        };

        let (full_sink, full) = run_slice(&stream, None);

        let token = CancellationToken::new();
        let trip = token.clone();
        let mut seen = 0usize;
        let mut first_sink = Recorder::default();
        let first = {
            struct CancelAfter<'a> {
                inner: &'a mut Recorder,
                seen: &'a mut usize,
                at: usize,
                token: &'a CancellationToken,
            }
            impl MatchSink for CancelAfter<'_> {
                fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
                    *self.seen += 1;
                    if *self.seen == self.at {
                        self.token.cancel();
                    }
                    self.inner.on_match(m)
                }
                fn on_record_error(
                    &mut self,
                    record_idx: u64,
                    error: &EngineError,
                ) -> ControlFlow<()> {
                    self.inner.on_record_error(record_idx, error)
                }
            }
            let mut source = SliceRecords::new(&stream);
            let mut sink = CancelAfter {
                inner: &mut first_sink,
                seen: &mut seen,
                at: cancel_at,
                token: &trip,
            };
            Pipeline::new()
                .workers(jobs)
                .error_policy(ErrorPolicy::SkipMalformed)
                .cancel_token(token)
                .run(&engine, &mut source, &mut sink)
                .unwrap()
        };

        let (second_sink, second) = run_slice(&stream[first.committed_offset as usize..], None);

        prop_assert_eq!(first.records + second.records, full.records);
        prop_assert_eq!(first.matches + second.matches, full.matches);
        prop_assert_eq!(first.failed + second.failed, full.failed);
        prop_assert_eq!(first.resyncs + second.resyncs, full.resyncs);
        prop_assert_eq!(first.resync_bytes + second.resync_bytes, full.resync_bytes);

        let whole: Vec<&[u8]> = full_sink.matches.iter().map(|(_, b)| b.as_slice()).collect();
        let glued: Vec<&[u8]> = first_sink
            .matches
            .iter()
            .chain(second_sink.matches.iter())
            .map(|(_, b)| b.as_slice())
            .collect();
        prop_assert_eq!(glued, whole, "q={} jobs={} cancel_at={}", q, jobs, cancel_at);
    }

    // A cancellation that lands *during* a SkipMalformed resynchronization
    // must still leave a consistent committed offset: the abandoned span is
    // either fully inside the first leg (counted once, offset past it) or
    // fully in the resumed leg — never split, never double-counted. The two
    // legs' summaries must sum to the uninterrupted run's, counter for
    // counter, resync bytes included.
    #[test]
    fn cancel_during_resync_still_commits_consistently(
        records in resync_batch(),
        q in query(),
        cancel_at in 1usize..4,
        jobs in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let engine = JsonSki::compile(&q).unwrap();
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(r);
            stream.push(b'\n');
        }

        let run_slice = |bytes: &[u8]| {
            let mut source = SliceRecords::new(bytes);
            let mut sink = Recorder::default();
            let summary = Pipeline::new()
                .workers(jobs)
                .error_policy(ErrorPolicy::SkipMalformed)
                .run(&engine, &mut source, &mut sink)
                .unwrap();
            (sink, summary)
        };

        let (full_sink, full) = run_slice(&stream);

        // First leg: trip the token inside the `cancel_at`-th resync report,
        // mid-resynchronization from the pipeline's point of view.
        struct CancelOnResync<'a> {
            inner: &'a mut Recorder,
            resyncs_seen: &'a mut usize,
            at: usize,
            token: &'a CancellationToken,
        }
        impl MatchSink for CancelOnResync<'_> {
            fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
                self.inner.on_match(m)
            }
            fn on_record_error(&mut self, record_idx: u64, error: &EngineError) -> ControlFlow<()> {
                self.inner.on_record_error(record_idx, error)
            }
            fn on_resync(&mut self, _span: (u64, u64), _error: &EngineError) -> ControlFlow<()> {
                *self.resyncs_seen += 1;
                if *self.resyncs_seen == self.at {
                    self.token.cancel();
                }
                ControlFlow::Continue(())
            }
        }
        let token = CancellationToken::new();
        let mut first_sink = Recorder::default();
        let mut resyncs_seen = 0usize;
        let first = {
            let mut source = SliceRecords::new(&stream);
            let mut sink = CancelOnResync {
                inner: &mut first_sink,
                resyncs_seen: &mut resyncs_seen,
                at: cancel_at,
                token: &token,
            };
            Pipeline::new()
                .workers(jobs)
                .error_policy(ErrorPolicy::SkipMalformed)
                .cancel_token(token.clone())
                .run(&engine, &mut source, &mut sink)
                .unwrap()
        };

        // The first leg's own accounting must agree with what the sink saw,
        // and its committed offset must stay inside the stream.
        prop_assert_eq!(first.resyncs, resyncs_seen as u64);
        prop_assert!(first.committed_offset as usize <= stream.len());

        let (second_sink, second) = run_slice(&stream[first.committed_offset as usize..]);

        prop_assert_eq!(first.records + second.records, full.records,
            "records: q={} jobs={} cancel_at={}", q, jobs, cancel_at);
        prop_assert_eq!(first.matches + second.matches, full.matches);
        prop_assert_eq!(first.failed + second.failed, full.failed);
        prop_assert_eq!(first.resyncs + second.resyncs, full.resyncs,
            "resyncs: q={} jobs={} cancel_at={}", q, jobs, cancel_at);
        prop_assert_eq!(first.resync_bytes + second.resync_bytes, full.resync_bytes,
            "resync bytes: q={} jobs={} cancel_at={}", q, jobs, cancel_at);

        let whole: Vec<&[u8]> = full_sink.matches.iter().map(|(_, b)| b.as_slice()).collect();
        let glued: Vec<&[u8]> = first_sink
            .matches
            .iter()
            .chain(second_sink.matches.iter())
            .map(|(_, b)| b.as_slice())
            .collect();
        prop_assert_eq!(glued, whole, "q={} jobs={} cancel_at={}", q, jobs, cancel_at);
    }
}
