//! Crash-safety integration tests: worker panic isolation, resource
//! deadlines under the parallel pipeline, cooperative cancellation across
//! threads, and checkpoint/resume producing byte-identical output.
//!
//! These run without the `faults` feature, so panic injection uses a local
//! [`Evaluate`] wrapper rather than `jsonski::faults`.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use jsonski::{
    digest_parts, CancellationToken, Checkpoint, CheckpointCadence, ChunkedRecords, EngineError,
    ErrorPolicy, Evaluate, JsonSki, LimitExceeded, Match, MatchSink, Pipeline, PipelineSummary,
    RecordOutcome, ResourceLimits, SliceRecords,
};

/// Panics on the listed record ordinals, delegating everything else.
struct PanicOn<'a> {
    inner: &'a JsonSki,
    at: &'a [u64],
}

impl Evaluate for PanicOn<'_> {
    fn name(&self) -> &'static str {
        "panic-on"
    }

    fn evaluate(&self, record: &[u8], record_idx: u64, sink: &mut dyn MatchSink) -> RecordOutcome {
        if self.at.contains(&record_idx) {
            panic!("injected panic on record {record_idx}");
        }
        self.inner.evaluate(record, record_idx, sink)
    }
}

/// Sink recording matches and per-record failures in delivery order.
#[derive(Default)]
struct Recorder {
    matches: Vec<(u64, Vec<u8>)>,
    errors: Vec<(u64, String)>,
}

impl MatchSink for Recorder {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.matches.push((m.record_idx(), m.bytes().to_vec()));
        ControlFlow::Continue(())
    }

    fn on_record_error(&mut self, record_idx: u64, error: &EngineError) -> ControlFlow<()> {
        self.errors.push((record_idx, error.to_string()));
        ControlFlow::Continue(())
    }
}

fn stream_of(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(format!("{{\"a\": {i}}}\n").as_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// ResourceLimits::deadline under the parallel pipeline
// ---------------------------------------------------------------------------

/// A pathological deep-nesting record trips the (already expired) deadline
/// the moment the engine descends into it; array records never descend a
/// matched container for `$.a`, so they evaluate cleanly even with a 1 ns
/// budget. The failure must surface at exactly the deep record's index for
/// every worker count and both error policies.
#[test]
fn deadline_limit_fires_at_the_right_record_under_parallelism() {
    let mut stream = Vec::new();
    for i in 0..8 {
        stream.extend_from_slice(format!("[{i}, {i}]\n").as_bytes());
    }
    let mut deep = String::new();
    for _ in 0..32 {
        deep.push_str("{\"x\": ");
    }
    deep.push('1');
    deep.push_str(&"}".repeat(32));
    deep.push('\n');
    stream.extend_from_slice(deep.as_bytes()); // record 8
    for i in 0..4 {
        stream.extend_from_slice(format!("[{i}]\n").as_bytes()); // records 9..13
    }

    let limits = ResourceLimits::default().deadline(Duration::from_nanos(1));
    let engine = JsonSki::compile("$.a").unwrap().with_limits(limits);

    for jobs in [1usize, 2, 8] {
        // SkipMalformed: the batch completes, the deadline failure is
        // reported once, at the deep record's ordinal.
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let summary = Pipeline::new()
            .workers(jobs)
            .error_policy(ErrorPolicy::SkipMalformed)
            .limits(limits)
            .run(&engine, &mut source, &mut sink)
            .unwrap();
        assert_eq!(summary.records, 13, "jobs={jobs}");
        assert_eq!(summary.failed, 1, "jobs={jobs}");
        assert_eq!(sink.errors.len(), 1, "jobs={jobs}");
        assert_eq!(sink.errors[0].0, 8, "jobs={jobs}");
        assert!(
            sink.errors[0].1.contains("deadline"),
            "jobs={jobs}: {}",
            sink.errors[0].1
        );

        // FailFast: the run aborts with the typed limit error.
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let err = Pipeline::new()
            .workers(jobs)
            .error_policy(ErrorPolicy::FailFast)
            .limits(limits)
            .run(&engine, &mut source, &mut sink)
            .unwrap_err();
        match err {
            EngineError::Limit(LimitExceeded::Deadline { .. }) => {}
            other => panic!("jobs={jobs}: expected deadline limit, got {other}"),
        }
        // In-order drain: exactly the eight records before the failure were
        // delivered (arrays produce no `$.a` matches, so check the count).
        assert!(sink.errors.is_empty(), "jobs={jobs}");
    }
}

// ---------------------------------------------------------------------------
// Worker panic isolation (no `faults` feature required)
// ---------------------------------------------------------------------------

#[test]
fn injected_panics_surface_as_typed_errors_without_deadlock() {
    let stream = stream_of(20);
    let inner = JsonSki::compile("$.a").unwrap();
    let engine = PanicOn {
        inner: &inner,
        at: &[4, 11],
    };

    for jobs in [1usize, 2, 8] {
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let summary = Pipeline::new()
            .workers(jobs)
            .error_policy(ErrorPolicy::SkipMalformed)
            .run(&engine, &mut source, &mut sink)
            .unwrap();
        assert_eq!(summary.records, 20, "jobs={jobs}");
        assert_eq!(summary.failed, 2, "jobs={jobs}");
        assert_eq!(summary.matches, 18, "jobs={jobs}");
        let failed: Vec<u64> = sink.errors.iter().map(|(i, _)| *i).collect();
        assert_eq!(failed, vec![4, 11], "jobs={jobs}");
        for (_, msg) in &sink.errors {
            assert!(msg.contains("panicked"), "jobs={jobs}: {msg}");
        }
        // Matches stay in record order and skip exactly the panicked records.
        let matched: Vec<u64> = sink.matches.iter().map(|(i, _)| *i).collect();
        let expected: Vec<u64> = (0..20).filter(|i| *i != 4 && *i != 11).collect();
        assert_eq!(matched, expected, "jobs={jobs}");
    }
}

#[test]
fn fail_fast_panic_aborts_with_in_order_prefix() {
    let stream = stream_of(20);
    let inner = JsonSki::compile("$.a").unwrap();
    let engine = PanicOn {
        inner: &inner,
        at: &[7],
    };

    for jobs in [1usize, 4] {
        let mut source = SliceRecords::new(&stream);
        let mut sink = Recorder::default();
        let err = Pipeline::new()
            .workers(jobs)
            .error_policy(ErrorPolicy::FailFast)
            .run(&engine, &mut source, &mut sink)
            .unwrap_err();
        match err {
            EngineError::Panic { record_idx, .. } => assert_eq!(record_idx, 7, "jobs={jobs}"),
            other => panic!("jobs={jobs}: expected panic error, got {other}"),
        }
        // Every record before the panic was delivered, nothing after it.
        let matched: Vec<u64> = sink.matches.iter().map(|(i, _)| *i).collect();
        assert_eq!(matched, (0..7).collect::<Vec<u64>>(), "jobs={jobs}");
    }
}

// ---------------------------------------------------------------------------
// Cross-thread cooperative cancellation
// ---------------------------------------------------------------------------

/// A sink that, on its first match, asks a foreign thread to cancel the
/// token and blocks until the flag is visible — proving cancellation
/// propagates across threads while the pipeline is mid-run.
struct CancelFromAfar {
    token: CancellationToken,
    trigger: Option<mpsc::Sender<()>>,
    matches: usize,
}

impl MatchSink for CancelFromAfar {
    fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
        self.matches += 1;
        if let Some(tx) = self.trigger.take() {
            tx.send(()).unwrap();
            while !self.token.is_cancelled() {
                thread::yield_now();
            }
        }
        ControlFlow::Continue(())
    }
}

#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let stream = stream_of(64);
    let engine = JsonSki::compile("$.a").unwrap();
    let token = CancellationToken::new();
    let (tx, rx) = mpsc::channel();
    let canceller = {
        let token = token.clone();
        thread::spawn(move || {
            rx.recv().unwrap();
            token.cancel();
        })
    };

    let mut source = SliceRecords::new(&stream);
    let mut sink = CancelFromAfar {
        token: token.clone(),
        trigger: Some(tx),
        matches: 0,
    };
    let summary = Pipeline::new()
        .workers(2)
        .cancel_token(token)
        .run(&engine, &mut source, &mut sink)
        .unwrap();
    canceller.join().unwrap();

    assert!(summary.cancelled);
    assert!(summary.records >= 1);
    assert!(
        summary.records < 64,
        "cancellation should cut the run short"
    );
    assert_eq!(summary.matches, sink.matches);
    // Every delivered record is durably committed.
    assert!(summary.committed_offset > 0);
    assert!(summary.committed_offset <= stream.len() as u64);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume through the pipeline
// ---------------------------------------------------------------------------

/// A durable sink modelled on the CLI's: matches are staged in memory and
/// flushed to the "output" only when a checkpoint commits, so the saved
/// `output_bytes` never claims undelivered work.
struct DurableSink {
    staged: Vec<u8>,
    flushed: Vec<u8>,
    baseline: Checkpoint,
    path: PathBuf,
    saves: usize,
    cancel_after: Option<(usize, CancellationToken)>,
    seen: usize,
}

impl MatchSink for DurableSink {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.staged.extend_from_slice(m.bytes());
        self.staged.push(b'\n');
        self.seen += 1;
        if let Some((k, token)) = &self.cancel_after {
            if self.seen == *k {
                token.cancel();
            }
        }
        ControlFlow::Continue(())
    }

    fn on_checkpoint(&mut self, summary: &PipelineSummary) -> Result<(), EngineError> {
        self.flushed.extend_from_slice(&self.staged);
        self.staged.clear();
        let mut ck = self.baseline.advanced(summary);
        ck.output_bytes = self.flushed.len() as u64;
        ck.save(&self.path).map_err(EngineError::Io)?;
        self.saves += 1;
        Ok(())
    }
}

fn temp_checkpoint_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "jsonski-crash-safety-{}-{tag}-{seq}.ckpt",
        std::process::id()
    ))
}

#[test]
fn checkpoint_resume_produces_byte_identical_output() {
    let stream = stream_of(40);
    let engine = JsonSki::compile("$.a").unwrap();
    let identity = digest_parts(&["$.a", "skip-malformed", "jobs=4"]);

    // Uninterrupted reference output.
    let reference: Vec<u8> = (0..40)
        .flat_map(|i| format!("{i}\n").into_bytes())
        .collect();

    let path = temp_checkpoint_path("resume");

    // Segment 1: cancelled after 13 delivered matches.
    let token = CancellationToken::new();
    let mut source = ChunkedRecords::with_buffer_size(&stream[..], 64);
    let mut sink = DurableSink {
        staged: Vec::new(),
        flushed: Vec::new(),
        baseline: Checkpoint::new(identity),
        path: path.clone(),
        saves: 0,
        cancel_after: Some((13, token.clone())),
        seen: 0,
    };
    let first = Pipeline::new()
        .workers(4)
        .cancel_token(token)
        .checkpoints(CheckpointCadence::default().every_records(4))
        .run(&engine, &mut source, &mut sink)
        .unwrap();
    assert!(first.cancelled);
    assert!(first.records >= 13);
    assert!(first.records < 40);
    assert!(sink.saves >= 1, "cadence of 4 must have fired");

    // "Crash": all that survives is the checkpoint file and the output
    // bytes it vouches for.
    let ck = Checkpoint::load(&path).unwrap();
    assert_eq!(ck.identity, identity);
    assert_eq!(ck.offset, first.committed_offset);
    assert_eq!(ck.records, first.records);
    assert_eq!(ck.matches, first.matches as u64);
    assert!(!ck.complete);
    let mut surviving = sink.flushed.clone();
    surviving.truncate(ck.output_bytes as usize);

    // Segment 2: resume from the committed offset; absolute offsets come
    // from `start_offset` so the advanced checkpoint never rewinds.
    let off = ck.offset as usize;
    let mut source = ChunkedRecords::with_buffer_size(&stream[off..], 64).start_offset(ck.offset);
    let mut sink = DurableSink {
        staged: Vec::new(),
        flushed: Vec::new(),
        baseline: ck.clone(),
        path: path.clone(),
        saves: 0,
        cancel_after: None,
        seen: 0,
    };
    let second = Pipeline::new()
        .workers(4)
        .checkpoints(CheckpointCadence::default().every_records(4))
        .run(&engine, &mut source, &mut sink)
        .unwrap();
    assert!(!second.cancelled);
    assert_eq!(first.records + second.records, 40);

    let final_ck = Checkpoint::load(&path).unwrap();
    assert_eq!(final_ck.records, 40);
    assert_eq!(final_ck.matches, 40);
    assert_eq!(final_ck.failed, 0);
    assert!(final_ck.offset >= stream.len() as u64 - 1);

    // The concatenated output is byte-identical to the uninterrupted run.
    surviving.extend_from_slice(&sink.flushed);
    assert_eq!(surviving, reference);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_refuses_mismatched_identity() {
    let path = temp_checkpoint_path("identity");
    Checkpoint::new(digest_parts(&["$.a"])).save(&path).unwrap();
    let ck = Checkpoint::load(&path).unwrap();
    // The resume harness compares digests; a different query set must differ.
    assert_ne!(ck.identity, digest_parts(&["$.b"]));
    assert_eq!(ck.identity, digest_parts(&["$.a"]));
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Reader-level cancellation + resume
// ---------------------------------------------------------------------------

#[test]
fn reader_cancellation_resumes_from_committed_offset() {
    let stream = stream_of(30);
    let engine = JsonSki::compile("$.a").unwrap();

    for jobs in [1usize, 4] {
        let token = CancellationToken::new();
        let mut source =
            ChunkedRecords::with_buffer_size(&stream[..], 64).cancel_token(token.clone());
        let mut sink = DurableSink {
            staged: Vec::new(),
            flushed: Vec::new(),
            baseline: Checkpoint::new(0),
            path: temp_checkpoint_path("reader"),
            saves: 0,
            cancel_after: Some((5, token.clone())),
            seen: 0,
        };
        let first = Pipeline::new()
            .workers(jobs)
            .cancel_token(token)
            .run(&engine, &mut source, &mut sink)
            .unwrap();
        assert!(first.cancelled, "jobs={jobs}");
        assert!(first.records >= 5, "jobs={jobs}");
        assert!(first.records < 30, "jobs={jobs}");

        let off = first.committed_offset as usize;
        let mut source = ChunkedRecords::with_buffer_size(&stream[off..], 64);
        let mut rest = Recorder::default();
        let second = Pipeline::new()
            .workers(jobs)
            .run(&engine, &mut source, &mut rest)
            .unwrap();
        assert_eq!(first.records + second.records, 30, "jobs={jobs}");
        assert_eq!(
            first.matches + second.matches,
            30,
            "jobs={jobs}: every record matches exactly once"
        );
        let _ = std::fs::remove_file(&sink.path);
    }
}
