//! Mid-stream resynchronization edge cases, driven end to end through the
//! reader, the serial pipeline, and the parallel pipeline.
//!
//! The invariant under test: for a stream of `n` records of which `k` are
//! broken (structurally malformed, truncated, or over a resource limit),
//! [`ErrorPolicy::SkipMalformed`] delivers exactly the matches of the
//! `n - k` healthy records — at every level of the stack, with identical
//! sink callback sequences for any worker count — and reports each
//! abandoned byte span through [`MatchSink::on_resync`].

use std::ops::ControlFlow;

use jsonski::{
    ChunkedRecords, EngineError, ErrorPolicy, Evaluate, JsonSki, Match, MatchSink, Pipeline,
    PipelineSummary, RecordOutcome, ResourceLimits,
};

/// Sink that records every callback, for comparing full event sequences.
#[derive(Debug, Default)]
struct Trace {
    matches: Vec<(u64, Vec<u8>)>,
    errors: Vec<u64>,
    resyncs: Vec<(u64, u64)>,
    stop_on_resync: bool,
}

impl MatchSink for Trace {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        self.matches.push((m.record_idx(), m.bytes().to_vec()));
        ControlFlow::Continue(())
    }

    fn on_record_error(&mut self, record_idx: u64, _error: &EngineError) -> ControlFlow<()> {
        self.errors.push(record_idx);
        ControlFlow::Continue(())
    }

    fn on_resync(&mut self, span: (u64, u64), _error: &EngineError) -> ControlFlow<()> {
        self.resyncs.push(span);
        if self.stop_on_resync {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// Runs `$.a` over `input` through a pipeline fed by the chunked reader.
fn run_pipeline(
    input: &[u8],
    workers: usize,
    policy: ErrorPolicy,
    limits: ResourceLimits,
) -> Result<(Trace, PipelineSummary), EngineError> {
    let engine = JsonSki::compile("$.a").unwrap().with_limits(limits);
    let mut source = ChunkedRecords::new(input).limits(limits);
    let mut trace = Trace::default();
    let summary = Pipeline::new()
        .workers(workers)
        .error_policy(policy)
        .limits(limits)
        .run(&engine, &mut source, &mut trace)?;
    Ok((trace, summary))
}

fn skip(input: &[u8], workers: usize, limits: ResourceLimits) -> (Trace, PipelineSummary) {
    run_pipeline(input, workers, ErrorPolicy::SkipMalformed, limits).expect("skip mode recovers")
}

#[test]
fn truncated_final_record_is_skipped_with_exact_span() {
    let input = b"{\"a\": 1}\n{\"a\": 3}\n{\"a\": [1, 2";
    for workers in [1, 4] {
        let (trace, summary) = skip(input, workers, ResourceLimits::default());
        assert_eq!(
            trace.matches,
            vec![(0, b"1".to_vec()), (1, b"3".to_vec())],
            "workers={workers}"
        );
        assert_eq!(trace.resyncs, vec![(18, 29)], "workers={workers}");
        assert_eq!(summary.records, 2);
        assert_eq!(summary.resyncs, 1);
        assert_eq!(summary.resync_bytes, 11);
        assert!(trace.errors.is_empty());
    }
}

#[test]
fn unterminated_string_tail_is_skipped() {
    let input = b"{\"a\": 1}\n{\"a\": \"oops";
    for workers in [1, 4] {
        let (trace, summary) = skip(input, workers, ResourceLimits::default());
        assert_eq!(trace.matches, vec![(0, b"1".to_vec())], "workers={workers}");
        assert_eq!(trace.resyncs, vec![(9, 20)]);
        assert_eq!(summary.resyncs, 1);
    }
}

#[test]
fn oversized_first_record_resyncs_and_reindexes_from_zero() {
    // The first record trips `max_record_bytes`; the survivors must still be
    // numbered from 0 (resynced spans consume no record index).
    let input = b"{\"a\": [1, 2, 3, 4]}\n{\"a\": 5}\n{\"a\": 6}\n";
    let limits = ResourceLimits::default().max_record_bytes(16);
    for workers in [1, 4] {
        let (trace, summary) = skip(input, workers, limits);
        assert_eq!(
            trace.matches,
            vec![(0, b"5".to_vec()), (1, b"6".to_vec())],
            "workers={workers}"
        );
        assert_eq!(summary.resyncs, 1);
        assert_eq!(summary.records, 2);
    }
}

#[test]
fn back_to_back_broken_records_each_resync() {
    let input = b"{\"a\": [1, 2, 3, 4]}\n{\"a\": [5, 6, 7, 8]}\n{\"a\": 9}\n";
    let limits = ResourceLimits::default().max_record_bytes(16);
    for workers in [1, 4] {
        let (trace, summary) = skip(input, workers, limits);
        assert_eq!(trace.matches, vec![(0, b"9".to_vec())], "workers={workers}");
        assert_eq!(summary.resyncs, 2);
        // Complete-but-oversized records are skipped by their exact span
        // (19 bytes each), not to the following newline.
        assert_eq!(summary.resync_bytes, 38);
        assert_eq!(trace.resyncs, vec![(0, 19), (20, 39)]);
    }
}

#[test]
fn scalar_garbage_between_records_is_a_record_not_a_resync() {
    // Top-level tokens that are not containers or strings split as scalar
    // records: they evaluate cleanly to zero matches rather than breaking
    // the boundary scan. Pinned here so the tokenizer's (documented)
    // permissiveness doesn't silently change.
    let input = b"{\"a\": 1}\n@@@ not json @@@\n{\"a\": 3}\n";
    for workers in [1, 4] {
        let (trace, summary) = skip(input, workers, ResourceLimits::default());
        let values: Vec<&[u8]> = trace.matches.iter().map(|(_, m)| m.as_slice()).collect();
        assert_eq!(values, vec![b"1".as_slice(), b"3".as_slice()]);
        assert_eq!(summary.resyncs, 0, "workers={workers}");
        assert!(trace.errors.is_empty());
    }
}

#[test]
fn fail_fast_aborts_on_broken_source() {
    let input = b"{\"a\": 1}\n{\"a\": [1, 2";
    for workers in [1, 4] {
        let err = run_pipeline(
            input,
            workers,
            ErrorPolicy::FailFast,
            ResourceLimits::default(),
        )
        .expect_err("fail-fast must abort");
        assert!(
            matches!(err, EngineError::Stream(_)),
            "workers={workers}: {err}"
        );
    }
    let limits = ResourceLimits::default().max_record_bytes(4);
    let err = run_pipeline(input, 1, ErrorPolicy::FailFast, limits).expect_err("limit aborts");
    assert!(matches!(err, EngineError::Limit(_)), "{err}");
}

#[test]
fn sink_can_stop_the_stream_from_on_resync() {
    let input = b"{\"a\": 1}\n{\"a\": [2, 3, 4, 5]}\n{\"a\": 6}\n";
    let limits = ResourceLimits::default().max_record_bytes(16);
    for workers in [1, 4] {
        let engine = JsonSki::compile("$.a").unwrap().with_limits(limits);
        let mut source = ChunkedRecords::new(&input[..]).limits(limits);
        let mut trace = Trace {
            stop_on_resync: true,
            ..Trace::default()
        };
        let summary = Pipeline::new()
            .workers(workers)
            .error_policy(ErrorPolicy::SkipMalformed)
            .limits(limits)
            .run(&engine, &mut source, &mut trace)
            .expect("stopping is not an error");
        assert!(summary.stopped, "workers={workers}");
        assert_eq!(trace.matches, vec![(0, b"1".to_vec())]);
        assert_eq!(trace.resyncs.len(), 1);
    }
}

/// Builds an `n`-record stream with engine-malformed and oversized records
/// mixed in; returns `(input, good, engine_bad, oversized)`.
fn mixed_stream(n: usize) -> (Vec<u8>, usize, usize, usize) {
    let mut input = Vec::new();
    let (mut good, mut engine_bad, mut oversized) = (0, 0, 0);
    for i in 0..n {
        if i % 10 == 3 {
            // Balanced but structurally invalid: splits fine, fails in the
            // engine, and is skipped without a resync.
            input.extend_from_slice(format!("{{\"a\" {i}}}\n").as_bytes());
            engine_bad += 1;
        } else if i % 10 == 7 {
            // Over the record-size cap: rejected by the reader and skipped
            // precisely via resync.
            input.extend_from_slice(format!("{{\"a\": \"{}\"}}\n", "x".repeat(40)).as_bytes());
            oversized += 1;
        } else {
            input.extend_from_slice(format!("{{\"a\": {i}}}\n").as_bytes());
            good += 1;
        }
    }
    (input, good, engine_bad, oversized)
}

#[test]
fn n_minus_k_invariant_at_the_reader_level() {
    let (input, good, engine_bad, oversized) = mixed_stream(40);
    let limits = ResourceLimits::default().max_record_bytes(32);
    let engine = JsonSki::compile("$.a").unwrap().with_limits(limits);
    let mut records = ChunkedRecords::new(&input[..]).limits(limits);
    let (mut delivered, mut failures, mut resyncs) = (0u64, 0u64, 0u64);
    loop {
        // The record borrows the reader, so carry the failure out of the
        // match before calling `resync` (which re-borrows it).
        let failed = match records.next_record() {
            Ok(None) => break,
            Err(_) => true,
            Ok(Some(record)) => {
                let mut sink = jsonski::CountSink::default();
                match engine.evaluate(record, delivered, &mut sink) {
                    RecordOutcome::Failed(_) => failures += 1,
                    _ => delivered += 1,
                }
                false
            }
        };
        if failed {
            match records.resync() {
                Ok(Some(_)) => resyncs += 1,
                Ok(None) => break,
                Err(e) => panic!("unrecoverable: {e}"),
            }
        }
    }
    assert_eq!(delivered, good as u64);
    assert_eq!(failures, engine_bad as u64);
    assert_eq!(resyncs, oversized as u64);
}

#[test]
fn n_minus_k_invariant_matches_across_worker_counts() {
    let (input, good, engine_bad, oversized) = mixed_stream(60);
    let limits = ResourceLimits::default().max_record_bytes(32);
    let (serial, serial_summary) = skip(&input, 1, limits);
    assert_eq!(serial.matches.len(), good);
    assert_eq!(serial.errors.len(), engine_bad);
    assert_eq!(serial.resyncs.len(), oversized);
    assert_eq!(serial_summary.failed, engine_bad as u64);
    assert_eq!(serial_summary.resyncs, oversized as u64);
    for workers in [2, 4, 8] {
        let (parallel, summary) = skip(&input, workers, limits);
        assert_eq!(parallel.matches, serial.matches, "workers={workers}");
        assert_eq!(parallel.errors, serial.errors, "workers={workers}");
        assert_eq!(parallel.resyncs, serial.resyncs, "workers={workers}");
        assert_eq!(summary.records, serial_summary.records);
        assert_eq!(summary.resync_bytes, serial_summary.resync_bytes);
    }
}
