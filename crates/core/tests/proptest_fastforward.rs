//! Property tests for the fast-forward primitives: the counting-based
//! pairing strategy must agree with a character-at-a-time model on random
//! well-formed JSON, wherever the skip starts.

use proptest::prelude::*;

use jsonski::cursor::Cursor;
use jsonski::fastforward::{go_over_ary, go_over_obj};
use jsonski::{FastForwardStats, Group};

/// Random JSON value rendered to text (same shape as the root test-suite's
/// generator, duplicated here to keep the crate self-contained).
fn json_value(depth: u32) -> BoxedStrategy<String> {
    let scalar = prop_oneof![
        Just("null".to_string()),
        (-999i64..999).prop_map(|n| n.to_string()),
        prop::collection::vec(
            prop_oneof![
                Just("x".to_string()),
                Just("{".to_string()),
                Just("]".to_string()),
                Just("\\\"".to_string()),
                Just("\\\\".to_string()),
            ],
            0..6
        )
        .prop_map(|parts| format!("\"{}\"", parts.concat())),
    ];
    scalar
        .prop_recursive(depth, 48, 5, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..5)
                    .prop_map(|vs| format!("[{}]", vs.join(", "))),
                prop::collection::btree_map("[a-d]", inner, 0..5).prop_map(|m| {
                    let fields: Vec<String> = m
                        .into_iter()
                        .map(|(k, v)| format!("\"{k}\": {v}"))
                        .collect();
                    format!("{{{}}}", fields.join(", "))
                }),
            ]
        })
        .boxed()
}

/// Character-at-a-time reference: byte offset just past the container that
/// starts at `input[0]`.
fn scalar_container_end(input: &[u8]) -> usize {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    input.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn counting_pairing_matches_scalar_model(doc in json_value(4), suffix in "[ ,x\\]}]*") {
        // Embed the value in arbitrary trailing context so the skip must
        // stop exactly at the right closer, not merely at input end.
        let text = format!("{doc}{suffix}");
        let bytes = text.as_bytes();
        let first = bytes[0];
        if first != b'{' && first != b'[' {
            return Ok(()); // only containers are skippable this way
        }
        let want = scalar_container_end(bytes);
        let mut cur = Cursor::new(bytes);
        let mut st = FastForwardStats::new();
        let got = if first == b'{' {
            go_over_obj(&mut cur, &mut st, Group::G2)
        } else {
            go_over_ary(&mut cur, &mut st, Group::G2)
        };
        let (_, end) = got.expect("well-formed container must pair");
        prop_assert_eq!(end, want, "doc: {}", text);
        prop_assert_eq!(cur.pos(), want);
        prop_assert_eq!(st.skipped(Group::G2) as usize, want);
    }

    #[test]
    fn skip_is_independent_of_start_offset(doc in json_value(3), pad in 0usize..70) {
        // Leading whitespace shifts the container across word boundaries;
        // the skip result must only translate, never change.
        let padded = format!("{}{doc}", " ".repeat(pad));
        let bytes = padded.as_bytes();
        let first = bytes[pad];
        if first != b'{' && first != b'[' {
            return Ok(());
        }
        let mut cur = Cursor::new(bytes);
        cur.skip_ws();
        let mut st = FastForwardStats::new();
        let got = if first == b'{' {
            go_over_obj(&mut cur, &mut st, Group::G2)
        } else {
            go_over_ary(&mut cur, &mut st, Group::G2)
        };
        let (start, end) = got.expect("pairs");
        prop_assert_eq!(start, pad);
        prop_assert_eq!(end, pad + doc.len());
    }

    #[test]
    fn engine_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Malformed input must produce Err or Ok, never a panic.
        let q = jsonski::JsonSki::compile("$.a[0].b").unwrap();
        let _ = q.count(&bytes);
    }

    #[test]
    fn engine_never_panics_on_json_like_garbage(s in "[\\{\\}\\[\\],:\"\\\\a1 ]{0,200}") {
        let q = jsonski::JsonSki::compile("$[*].a").unwrap();
        let _ = q.count(s.as_bytes());
    }
}
