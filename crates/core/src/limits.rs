//! Resource guards for hostile or degraded input.
//!
//! The paper's streaming scenario assumes well-formed NDJSON from a
//! cooperative source; a production ingestion service cannot. A single
//! never-closing record would otherwise grow the reader buffer without
//! bound, a deeply-nested record would exhaust the recursive-descent call
//! stack, and a pathological record could pin a worker indefinitely.
//! [`ResourceLimits`] turns each of those failure modes into a typed,
//! policy-respecting rejection ([`crate::EngineError::Limit`]): under
//! [`ErrorPolicy::SkipMalformed`] an over-limit record is skipped like any
//! other malformed record, and the stream keeps going.
//!
//! [`ErrorPolicy::SkipMalformed`]: crate::ErrorPolicy::SkipMalformed

use std::fmt;
use std::time::Duration;

use crate::engine::MAX_DEPTH;

/// Default cap on the streaming reader's buffer (256 MiB).
pub const DEFAULT_MAX_BUFFER_BYTES: usize = 256 * 1024 * 1024;

/// Caps on the resources one record may consume, threaded through
/// [`EngineConfig`], [`ChunkedRecords`], and [`Pipeline`].
///
/// The defaults match the engine's historical behaviour (depth 1024,
/// 256 MiB records) so existing callers see no change; tighten them for
/// ingestion from untrusted sources:
///
/// ```
/// use jsonski::ResourceLimits;
///
/// let limits = ResourceLimits::default()
///     .max_record_bytes(1 << 20) // 1 MiB records
///     .max_depth(64);
/// assert_eq!(limits.max_depth, 64);
/// ```
///
/// [`EngineConfig`]: crate::EngineConfig
/// [`ChunkedRecords`]: crate::ChunkedRecords
/// [`Pipeline`]: crate::Pipeline
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Largest record (in bytes) accepted for evaluation or buffering.
    pub max_record_bytes: usize,
    /// Maximum container nesting before a record is rejected
    /// (bounds the recursive-descent call stack).
    pub max_depth: usize,
    /// Cap on the streaming reader's internal buffer. A record that never
    /// closes hits this cap instead of growing the buffer to OOM.
    pub max_buffer_bytes: usize,
    /// Optional wall-clock budget for evaluating one record; checked at
    /// container boundaries during the scan. `None` (the default) compiles
    /// to a never-taken branch — no clock calls on the hot path.
    pub deadline: Option<Duration>,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_record_bytes: DEFAULT_MAX_BUFFER_BYTES,
            max_depth: MAX_DEPTH,
            max_buffer_bytes: DEFAULT_MAX_BUFFER_BYTES,
            deadline: None,
        }
    }
}

impl ResourceLimits {
    /// Limits that never trigger (useful for trusted in-memory input).
    pub fn unbounded() -> Self {
        ResourceLimits {
            max_record_bytes: usize::MAX,
            max_depth: usize::MAX,
            max_buffer_bytes: usize::MAX,
            deadline: None,
        }
    }

    /// Sets the record-size cap (builder-style).
    pub fn max_record_bytes(mut self, bytes: usize) -> Self {
        self.max_record_bytes = bytes;
        self
    }

    /// Sets the nesting-depth cap (builder-style).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the reader-buffer cap (builder-style).
    pub fn max_buffer_bytes(mut self, bytes: usize) -> Self {
        self.max_buffer_bytes = bytes;
        self
    }

    /// Sets the per-record evaluation deadline (builder-style).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A typed resource-limit violation; carried by
/// [`EngineError::Limit`](crate::EngineError::Limit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LimitExceeded {
    /// A record is larger than [`ResourceLimits::max_record_bytes`].
    RecordBytes {
        /// The record's size in bytes (for a still-open record, the bytes
        /// buffered so far).
        len: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The streaming reader would have to grow its buffer past
    /// [`ResourceLimits::max_buffer_bytes`] to make progress.
    BufferBytes {
        /// Bytes the buffer would need to hold.
        needed: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Nesting exceeded [`ResourceLimits::max_depth`].
    Depth {
        /// Byte offset of the opener that exceeded the limit.
        pos: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Evaluation ran past [`ResourceLimits::deadline`].
    Deadline {
        /// The configured budget.
        limit: Duration,
    },
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitExceeded::RecordBytes { len, limit } => {
                write!(f, "record of {len} bytes exceeds max_record_bytes={limit}")
            }
            LimitExceeded::BufferBytes { needed, limit } => write!(
                f,
                "record needs {needed} buffered bytes, exceeding max_buffer_bytes={limit}"
            ),
            LimitExceeded::Depth { pos, limit } => {
                write!(f, "nesting at byte {pos} exceeds max_depth={limit}")
            }
            LimitExceeded::Deadline { limit } => {
                write!(
                    f,
                    "evaluation exceeded the per-record deadline of {limit:?}"
                )
            }
        }
    }
}

impl std::error::Error for LimitExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_behaviour() {
        let l = ResourceLimits::default();
        assert_eq!(l.max_depth, MAX_DEPTH);
        assert_eq!(l.max_record_bytes, DEFAULT_MAX_BUFFER_BYTES);
        assert_eq!(l.max_buffer_bytes, DEFAULT_MAX_BUFFER_BYTES);
        assert!(l.deadline.is_none());
    }

    #[test]
    fn builder_setters_compose() {
        let l = ResourceLimits::default()
            .max_record_bytes(10)
            .max_depth(2)
            .max_buffer_bytes(20)
            .deadline(Duration::from_millis(5));
        assert_eq!(l.max_record_bytes, 10);
        assert_eq!(l.max_depth, 2);
        assert_eq!(l.max_buffer_bytes, 20);
        assert_eq!(l.deadline, Some(Duration::from_millis(5)));
        let u = ResourceLimits::unbounded();
        assert_eq!(u.max_depth, usize::MAX);
    }

    #[test]
    fn limit_errors_display_the_numbers() {
        let e = LimitExceeded::RecordBytes { len: 9, limit: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = LimitExceeded::BufferBytes {
            needed: 33,
            limit: 32,
        };
        assert!(e.to_string().contains("33"));
        let e = LimitExceeded::Depth { pos: 7, limit: 2 };
        assert!(e.to_string().contains("max_depth=2"));
        let e = LimitExceeded::Deadline {
            limit: Duration::from_millis(1),
        };
        assert!(e.to_string().contains("deadline"));
    }
}
