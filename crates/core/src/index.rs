//! Persistent structural index: cached per-record offsets and word bitmaps.
//!
//! The structural bitmaps JSONSki streams over (paper stage 1; the
//! "Parsing Gigabytes of JSON per Second" lineage) are a pure function of
//! the input bytes — for a *stored* corpus queried repeatedly, there is no
//! reason to rebuild them per request. [`StructuralIndex`] persists, per
//! corpus file, the record spans discovered by the bit-parallel
//! [`RecordSplitter`](crate::RecordSplitter) plus every record's
//! [`BlockBitmaps`], so a later evaluation can skip classification
//! entirely: [`IndexedJsonSki`] feeds the pre-built bitmaps straight into
//! the streaming cursor ([`JsonSki::stream_prebuilt`]).
//!
//! # On-disk format (version `JSKIDX1`)
//!
//! All integers are little-endian `u64`; each section carries its own
//! FNV-1a checksum so corruption is localized and detected before any
//! byte is trusted:
//!
//! ```text
//! magic            8 bytes  b"JSKIDX1\n"
//! config_digest    u64      engine-config digest (see [`config_digest`])
//! input_len        u64      corpus length in bytes
//! fingerprint_head u64      FNV of the first 4096 corpus bytes
//! fingerprint_tail u64      FNV of the last 4096 corpus bytes
//! record_count     u64      number of record spans
//! bitmap_words     u64      total 64-byte words across all records
//! header_checksum  u64      FNV of everything above
//! spans            record_count × (start u64, end u64)
//! spans_checksum   u64      FNV of the spans section
//! bitmaps          bitmap_words × 64 bytes ([`BlockBitmaps::to_wire`])
//! bitmaps_checksum u64      FNV of the bitmaps section
//! ```
//!
//! Records are classified independently (the classifier's cross-block
//! string state resets at each record boundary), exactly mirroring how
//! per-record evaluation constructs its cursor — which is what makes the
//! cached and uncached paths byte-identical.
//!
//! # Robustness contract
//!
//! A cache file is advisory, never authoritative:
//!
//! * every load failure — missing, torn, truncated, bit-flipped,
//!   version-skewed, config-mismatched, or stale against the live corpus
//!   bytes — is a typed [`IndexError`], and the caller's answer is always
//!   the same: evaluate with full classification and (optionally) rebuild;
//! * [`StructuralIndex::save`] stages into a `.tmp` sibling, fsyncs, and
//!   renames (the [`Checkpoint`](crate::Checkpoint) discipline), so a
//!   crash at any byte leaves either the old valid index or none;
//! * [`StructuralIndex::from_bytes`] fully validates structure (span
//!   monotonicity, bounds, word accounting) before returning, so a loaded
//!   index can never panic the cursor downstream;
//! * a mis-sized bitmap slice degrades to classification inside
//!   [`Cursor::with_prebuilt`](crate::cursor::Cursor::with_prebuilt) —
//!   belt and braces under the braces of load-time validation.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use simdbits::{classify_stream, BlockBitmaps, Classifier, BLOCK};

use crate::checkpoint::{digest_parts, fingerprint, FINGERPRINT_BYTES};
use crate::engine::{EngineConfig, JsonSki};
use crate::error::StreamError;
use crate::evaluate::{classify_stream_error, EngineError, Evaluate, MatchSink, RecordOutcome};
use crate::limits::LimitExceeded;
use crate::pipeline::RecordSource;

/// Magic prefix of an index file; bump the digit on any layout change so
/// older/newer builds see a typed [`IndexError::BadMagic`], not garbage.
const MAGIC: &[u8; 8] = b"JSKIDX1\n";

/// Fixed header length: magic + six `u64` fields + header checksum.
const HEADER_BYTES: usize = 8 + 6 * 8 + 8;

/// Why a persistent index could not be used. Every variant means the same
/// thing operationally — evaluate with full classification instead — but
/// the caller's metrics distinguish *miss* (no index yet), *stale*
/// (corpus or config changed), and *corrupt* (the file itself is bad).
#[derive(Debug)]
pub enum IndexError {
    /// No index file exists at the probed path.
    Missing,
    /// Reading or writing the index file failed.
    Io(io::Error),
    /// The file does not start with this version's magic (foreign file or
    /// version skew).
    BadMagic,
    /// The file is shorter than its sections claim (torn or truncated
    /// write).
    Truncated {
        /// Bytes the header said the file needs.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A section's checksum does not match its bytes (bit corruption).
    Checksum {
        /// Which section failed: `"header"`, `"spans"`, or `"bitmaps"`.
        section: &'static str,
    },
    /// The sections are internally inconsistent (overlapping or
    /// out-of-bounds spans, word counts that do not add up).
    Malformed {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The index was built under a different engine configuration.
    ConfigMismatch,
    /// The corpus bytes changed since the index was built (length or
    /// head/tail fingerprint mismatch).
    Stale,
    /// Building a fresh index failed because the corpus itself cannot be
    /// split into records; nothing was persisted.
    Build(StreamError),
}

impl IndexError {
    /// Whether this failure means the cache *file* is damaged (as opposed
    /// to merely absent or out of date); feeds the corrupt-fallback
    /// counter.
    pub fn is_corrupt(&self) -> bool {
        matches!(
            self,
            IndexError::Io(_)
                | IndexError::BadMagic
                | IndexError::Truncated { .. }
                | IndexError::Checksum { .. }
                | IndexError::Malformed { .. }
        )
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Missing => write!(f, "no index file"),
            IndexError::Io(e) => write!(f, "index i/o error: {e}"),
            IndexError::BadMagic => write!(f, "not a jsonski index (bad magic)"),
            IndexError::Truncated { expected, got } => {
                write!(f, "index truncated: expected {expected} bytes, got {got}")
            }
            IndexError::Checksum { section } => {
                write!(f, "index {section} checksum mismatch")
            }
            IndexError::Malformed { reason } => write!(f, "index malformed: {reason}"),
            IndexError::ConfigMismatch => {
                write!(f, "index built under a different configuration")
            }
            IndexError::Stale => write!(f, "index is stale (corpus changed)"),
            IndexError::Build(e) => write!(f, "index build failed: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            IndexError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::NotFound {
            IndexError::Missing
        } else {
            IndexError::Io(e)
        }
    }
}

/// Digests the parts of an [`EngineConfig`] that a persistent index must
/// not alias across: fast-forward toggles, validation mode, the effective
/// kernel (the `JSONSKI_KERNEL` override included, defensively — bitmaps
/// are kernel-invariant by the equivalence tests, but a digest is cheaper
/// than an argument), and the limits that shape per-record outcomes.
pub fn config_digest(config: &EngineConfig) -> u64 {
    let kernel = simdbits::forced_kernel().or(config.kernel);
    digest_parts(&[
        "jsonski-index v1".to_string(),
        format!("g1={} g4={} g5={}", config.g1, config.g4, config.g5),
        format!("validation={:?}", config.validation),
        format!("kernel={}", kernel.map_or("auto", |k| k.name())),
        format!("max_record_bytes={}", config.limits.max_record_bytes),
        format!("max_depth={}", config.limits.max_depth),
    ])
}

/// The cache file path for a corpus named `name` under `dir`: the name is
/// fingerprinted (not embedded) so arbitrary corpus names can never
/// traverse or collide in the cache directory.
pub fn index_path_for(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{:016x}.jskidx", fingerprint(name.as_bytes())))
}

/// Lock-free counters for index-cache outcomes; shared by reference
/// between the serving path and the metrics scrape.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Requests answered from a valid index (classification skipped).
    pub hits: AtomicU64,
    /// Requests with no index file yet.
    pub misses: AtomicU64,
    /// Requests whose index was stale or config-mismatched.
    pub stale: AtomicU64,
    /// Requests whose index file was damaged (magic, checksum, truncation,
    /// structural inconsistency, or I/O failure).
    pub corrupt_fallback: AtomicU64,
    /// Background index (re)builds scheduled.
    pub rebuilds: AtomicU64,
    /// Input bytes whose classification was skipped thanks to index hits.
    pub skipped_bytes: AtomicU64,
}

impl IndexStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a non-hit outcome under the counter its [`IndexError`]
    /// classifies into: missing → miss, stale/config → stale, anything
    /// else → corrupt fallback.
    pub fn record_error(&self, e: &IndexError) {
        match e {
            IndexError::Missing => &self.misses,
            IndexError::Stale | IndexError::ConfigMismatch => &self.stale,
            _ => &self.corrupt_fallback,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as `(name, value)` pairs in render order, named for the
    /// metrics scrape (`index_hit`, `index_miss`, …).
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("index_hit", self.hits.load(Ordering::Relaxed)),
            ("index_miss", self.misses.load(Ordering::Relaxed)),
            ("index_stale", self.stale.load(Ordering::Relaxed)),
            (
                "index_corrupt_fallback",
                self.corrupt_fallback.load(Ordering::Relaxed),
            ),
            ("index_rebuilds", self.rebuilds.load(Ordering::Relaxed)),
            (
                "index_skipped_classification_bytes",
                self.skipped_bytes.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// A corpus's persistent structural index: record spans plus every
/// record's word bitmaps, bound to the corpus bytes (length + head/tail
/// fingerprints) and an engine-config digest. See the module docs for the
/// file format and the robustness contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuralIndex {
    config_digest: u64,
    input_len: u64,
    fingerprint_head: u64,
    fingerprint_tail: u64,
    spans: Vec<(u64, u64)>,
    /// `word_offsets[i]` is record `i`'s first word in `bitmaps`; derived
    /// from the spans on construction, never persisted.
    word_offsets: Vec<usize>,
    bitmaps: Vec<BlockBitmaps>,
}

impl StructuralIndex {
    /// Builds an index over `input` by splitting it into records
    /// ([`split_records`](crate::split_records)) and classifying each
    /// record independently — the same per-record classifier lifecycle
    /// evaluation uses, so the stored bitmaps are bit-for-bit what a
    /// fresh cursor would compute.
    ///
    /// # Errors
    ///
    /// [`IndexError::Build`] when the corpus cannot be split into records;
    /// nothing is usable (or persistable) from a partial split.
    pub fn build(input: &[u8], config_digest: u64) -> Result<StructuralIndex, IndexError> {
        let spans = crate::records::split_records(input).map_err(IndexError::Build)?;
        let mut cls = Classifier::new();
        let mut bitmaps = Vec::new();
        let mut word_offsets = Vec::with_capacity(spans.len());
        for &(s, e) in &spans {
            word_offsets.push(bitmaps.len());
            cls.reset();
            classify_stream(&mut cls, &input[s..e], |_, bm| bitmaps.push(bm));
        }
        Ok(StructuralIndex {
            config_digest,
            input_len: input.len() as u64,
            fingerprint_head: fingerprint(&input[..input.len().min(FINGERPRINT_BYTES)]),
            fingerprint_tail: fingerprint(&input[input.len().saturating_sub(FINGERPRINT_BYTES)..]),
            spans: spans.iter().map(|&(s, e)| (s as u64, e as u64)).collect(),
            word_offsets,
            bitmaps,
        })
    }

    /// The digest of the configuration this index was built under.
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Record spans (byte ranges into the corpus), in corpus order.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// Number of records covered.
    pub fn record_count(&self) -> usize {
        self.spans.len()
    }

    /// Approximate resident footprint of this index in bytes (span,
    /// word-offset, and bitmap storage), for memory-budget accounting.
    pub fn size_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<(u64, u64)>()
            + self.word_offsets.len() * std::mem::size_of::<usize>()
            + self.bitmaps.len() * std::mem::size_of::<BlockBitmaps>()
    }

    /// Record `idx`'s bitmaps: one [`BlockBitmaps`] per 64-byte word of
    /// the record's span. `None` when `idx` is out of range.
    pub fn bitmaps_for(&self, idx: usize) -> Option<&[BlockBitmaps]> {
        let &(s, e) = self.spans.get(idx)?;
        let off = *self.word_offsets.get(idx)?;
        let words = ((e - s) as usize).div_ceil(BLOCK);
        self.bitmaps.get(off..off + words)
    }

    /// Checks that this index still describes `input` under the
    /// configuration digested as `config_digest`.
    ///
    /// # Errors
    ///
    /// [`IndexError::ConfigMismatch`] or [`IndexError::Stale`]; config is
    /// checked first (a config mismatch says nothing about the corpus).
    pub fn verify(&self, input: &[u8], config_digest: u64) -> Result<(), IndexError> {
        if self.config_digest != config_digest {
            return Err(IndexError::ConfigMismatch);
        }
        let head = fingerprint(&input[..input.len().min(FINGERPRINT_BYTES)]);
        let tail = fingerprint(&input[input.len().saturating_sub(FINGERPRINT_BYTES)..]);
        if self.input_len != input.len() as u64
            || self.fingerprint_head != head
            || self.fingerprint_tail != tail
        {
            return Err(IndexError::Stale);
        }
        Ok(())
    }

    /// Serializes to the on-disk format (see the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_BYTES + self.spans.len() * 16 + 8 + self.bitmaps.len() * 64 + 8,
        );
        out.extend_from_slice(MAGIC);
        for v in [
            self.config_digest,
            self.input_len,
            self.fingerprint_head,
            self.fingerprint_tail,
            self.spans.len() as u64,
            self.bitmaps.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let header_sum = fingerprint(&out);
        out.extend_from_slice(&header_sum.to_le_bytes());

        let spans_start = out.len();
        for &(s, e) in &self.spans {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&e.to_le_bytes());
        }
        let spans_sum = fingerprint(&out[spans_start..]);
        out.extend_from_slice(&spans_sum.to_le_bytes());

        let bitmaps_start = out.len();
        for bm in &self.bitmaps {
            out.extend_from_slice(&bm.to_wire());
        }
        let bitmaps_sum = fingerprint(&out[bitmaps_start..]);
        out.extend_from_slice(&bitmaps_sum.to_le_bytes());
        out
    }

    /// Parses and *fully validates* a serialized index: magic, per-section
    /// checksums, exact length, span monotonicity and bounds, and word
    /// accounting. An index this returns can be streamed over without any
    /// possibility of an out-of-range bitmap access.
    ///
    /// # Errors
    ///
    /// The typed [`IndexError`] for whichever check failed first.
    pub fn from_bytes(bytes: &[u8]) -> Result<StructuralIndex, IndexError> {
        if bytes.len() < HEADER_BYTES {
            if bytes.len() >= 8 && &bytes[..8] != MAGIC {
                return Err(IndexError::BadMagic);
            }
            return Err(IndexError::Truncated {
                expected: HEADER_BYTES,
                got: bytes.len(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let u64_at =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte field"));
        let header_sum = u64_at(HEADER_BYTES - 8);
        if fingerprint(&bytes[..HEADER_BYTES - 8]) != header_sum {
            return Err(IndexError::Checksum { section: "header" });
        }
        let config_digest = u64_at(8);
        let input_len = u64_at(16);
        let fingerprint_head = u64_at(24);
        let fingerprint_tail = u64_at(32);
        let record_count = u64_at(40);
        let bitmap_words = u64_at(48);

        // Expected total length, guarded against a (checksummed but
        // absurd) header overflowing usize arithmetic.
        let too_big = || IndexError::Malformed {
            reason: "section sizes overflow".to_string(),
        };
        let spans_bytes = usize::try_from(record_count)
            .ok()
            .and_then(|n| n.checked_mul(16))
            .ok_or_else(too_big)?;
        let bitmap_bytes = usize::try_from(bitmap_words)
            .ok()
            .and_then(|n| n.checked_mul(64))
            .ok_or_else(too_big)?;
        let expected = HEADER_BYTES
            .checked_add(spans_bytes)
            .and_then(|n| n.checked_add(8))
            .and_then(|n| n.checked_add(bitmap_bytes))
            .and_then(|n| n.checked_add(8))
            .ok_or_else(too_big)?;
        if bytes.len() != expected {
            return Err(IndexError::Truncated {
                expected,
                got: bytes.len(),
            });
        }

        let spans_start = HEADER_BYTES;
        let spans_end = spans_start + spans_bytes;
        if fingerprint(&bytes[spans_start..spans_end]) != u64_at(spans_end) {
            return Err(IndexError::Checksum { section: "spans" });
        }
        let bitmaps_start = spans_end + 8;
        let bitmaps_end = bitmaps_start + bitmap_bytes;
        if fingerprint(&bytes[bitmaps_start..bitmaps_end]) != u64_at(bitmaps_end) {
            return Err(IndexError::Checksum { section: "bitmaps" });
        }

        let malformed = |reason: String| IndexError::Malformed { reason };
        let mut spans = Vec::with_capacity(record_count as usize);
        let mut word_offsets = Vec::with_capacity(record_count as usize);
        let mut prev_end = 0u64;
        let mut words = 0usize;
        for i in 0..record_count as usize {
            let s = u64_at(spans_start + i * 16);
            let e = u64_at(spans_start + i * 16 + 8);
            if s > e || e > input_len {
                return Err(malformed(format!("span {i} ({s}..{e}) out of bounds")));
            }
            if s < prev_end {
                return Err(malformed(format!("span {i} overlaps its predecessor")));
            }
            prev_end = e;
            word_offsets.push(words);
            words += ((e - s) as usize).div_ceil(BLOCK);
            spans.push((s, e));
        }
        if words as u64 != bitmap_words {
            return Err(malformed(format!(
                "spans need {words} bitmap words, file holds {bitmap_words}"
            )));
        }
        let mut bitmaps = Vec::with_capacity(bitmap_words as usize);
        for i in 0..bitmap_words as usize {
            let off = bitmaps_start + i * 64;
            let wire: &[u8; 64] = bytes[off..off + 64].try_into().expect("64-byte block");
            bitmaps.push(BlockBitmaps::from_wire(wire));
        }
        Ok(StructuralIndex {
            config_digest,
            input_len,
            fingerprint_head,
            fingerprint_tail,
            spans,
            word_offsets,
            bitmaps,
        })
    }

    /// Atomically persists the index at `path`: staged into a `.tmp`
    /// sibling, fsynced, renamed over the destination, parent directory
    /// synced best-effort — a crash at any byte leaves the old index or
    /// none.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, syncing, or renaming.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads, parses, validates, and verifies the index at `path` against
    /// the live corpus bytes and configuration — the one-call read path.
    ///
    /// # Errors
    ///
    /// [`IndexError::Missing`] when no file exists; otherwise whichever
    /// typed failure [`from_bytes`](Self::from_bytes) or
    /// [`verify`](Self::verify) hits first.
    pub fn load(
        path: &Path,
        input: &[u8],
        config_digest: u64,
    ) -> Result<StructuralIndex, IndexError> {
        let mut bytes = Vec::new();
        File::open(path)?
            .read_to_end(&mut bytes)
            .map_err(IndexError::Io)?;
        let index = StructuralIndex::from_bytes(&bytes)?;
        index.verify(input, config_digest)?;
        Ok(index)
    }
}

/// The sibling temp file a [`StructuralIndex::save`] stages into.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// [`RecordSource`] over a corpus using an index's *persisted* spans —
/// record discovery is skipped along with classification. Record ordinals
/// assigned by the [`Pipeline`](crate::Pipeline) equal span indices, which
/// is what lets [`IndexedJsonSki`] find each record's bitmaps.
#[derive(Debug)]
pub struct IndexedRecords<'a> {
    corpus: &'a [u8],
    spans: &'a [(u64, u64)],
    next: usize,
    consumed: u64,
}

impl<'a> IndexedRecords<'a> {
    /// Iterates `corpus` according to `index`'s spans. The index must have
    /// been [`verify`](StructuralIndex::verify)-ed against these same
    /// bytes; span bounds were already validated at load time.
    pub fn new(corpus: &'a [u8], index: &'a StructuralIndex) -> Self {
        IndexedRecords {
            corpus,
            spans: index.spans(),
            next: 0,
            consumed: 0,
        }
    }
}

impl RecordSource for IndexedRecords<'_> {
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
        let Some(&(s, e)) = self.spans.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        self.consumed = e;
        Ok(Some(&self.corpus[s as usize..e as usize]))
    }

    fn consumed_offset(&self) -> Option<u64> {
        Some(self.consumed)
    }
}

/// An [`Evaluate`] adapter that answers records of an indexed corpus with
/// [`JsonSki::stream_prebuilt`]: classification is skipped, bitmaps come
/// from the [`StructuralIndex`], and outcome mapping (limits, strict
/// verdicts, error classification) mirrors the plain [`JsonSki`]
/// implementation exactly — the differential tests pin the two paths
/// byte-identical.
///
/// Records must be delivered with ordinals matching span indices (which
/// [`IndexedRecords`] + [`Pipeline`](crate::Pipeline) guarantee); a
/// record the index cannot place falls back to plain evaluation.
pub struct IndexedJsonSki<'a> {
    engine: &'a JsonSki,
    index: &'a StructuralIndex,
    stats: Option<&'a IndexStats>,
}

impl<'a> IndexedJsonSki<'a> {
    /// Wraps `engine` to serve bitmaps from `index`, optionally counting
    /// hit bytes into `stats`.
    pub fn new(
        engine: &'a JsonSki,
        index: &'a StructuralIndex,
        stats: Option<&'a IndexStats>,
    ) -> Self {
        IndexedJsonSki {
            engine,
            index,
            stats,
        }
    }

    /// The record's bitmap slice, when the ordinal and length line up with
    /// the index.
    fn prebuilt_for(&self, record: &[u8], record_idx: u64) -> Option<&'a [BlockBitmaps]> {
        let idx = usize::try_from(record_idx).ok()?;
        let &(s, e) = self.index.spans().get(idx)?;
        if (e - s) as usize != record.len() {
            return None;
        }
        self.index.bitmaps_for(idx)
    }

    fn count_skip(&self, record: &[u8], words_classified: usize) {
        if let Some(stats) = self.stats {
            let bytes = (words_classified * BLOCK).min(record.len()) as u64;
            stats.skipped_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }
}

impl Evaluate for IndexedJsonSki<'_> {
    fn name(&self) -> &'static str {
        "JSONSki+index"
    }

    fn evaluate(&self, record: &[u8], record_idx: u64, sink: &mut dyn MatchSink) -> RecordOutcome {
        let Some(prebuilt) = self.prebuilt_for(record, record_idx) else {
            return self.engine.evaluate(record, record_idx, sink);
        };
        let limits = self.engine.config().limits;
        if record.len() > limits.max_record_bytes {
            return RecordOutcome::Failed(EngineError::Limit(LimitExceeded::RecordBytes {
                len: record.len(),
                limit: limits.max_record_bytes,
            }));
        }
        match self.engine.stream_prebuilt(record, prebuilt, |m| {
            sink.on_match(m.with_record_idx(record_idx))
        }) {
            Ok(outcome) => {
                self.count_skip(record, outcome.words_classified);
                if outcome.stopped {
                    RecordOutcome::Stopped {
                        matches: outcome.matches,
                    }
                } else {
                    RecordOutcome::Complete {
                        matches: outcome.matches,
                    }
                }
            }
            Err(e) => RecordOutcome::Failed(classify_stream_error(e, &limits)),
        }
    }

    /// Mirrors [`JsonSki::evaluate_metered`]'s counter accounting over the
    /// prebuilt-bitmap path (words "classified" are words served from the
    /// index; `classify_ns` is the time the index saved, reported as 0).
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn MatchSink,
        metrics: &crate::Metrics,
    ) -> RecordOutcome {
        if !metrics.is_enabled() {
            return self.evaluate(record, record_idx, sink);
        }
        let Some(prebuilt) = self.prebuilt_for(record, record_idx) else {
            return self
                .engine
                .evaluate_metered(record, record_idx, sink, metrics);
        };
        let limits = self.engine.config().limits;
        if record.len() > limits.max_record_bytes {
            let ro = RecordOutcome::Failed(EngineError::Limit(LimitExceeded::RecordBytes {
                len: record.len(),
                limit: limits.max_record_bytes,
            }));
            metrics.record_limit_rejection();
            metrics.record_outcome(record.len(), &ro);
            return ro;
        }
        let sw = metrics.stopwatch();
        match self.engine.stream_prebuilt(record, prebuilt, |m| {
            sink.on_match(m.with_record_idx(record_idx))
        }) {
            Ok(outcome) => {
                let eval_ns = sw.elapsed_ns();
                self.count_skip(record, outcome.words_classified);
                metrics.record_fast_forward(&outcome.stats);
                metrics.record_bitmap(outcome.words_classified as u64, outcome.word_cache_hits);
                metrics.add_eval_ns(eval_ns);
                metrics.add_build_ns(outcome.classify_ns);
                metrics.add_traverse_ns(eval_ns.saturating_sub(outcome.classify_ns));
                let ro = if outcome.stopped {
                    RecordOutcome::Stopped {
                        matches: outcome.matches,
                    }
                } else {
                    RecordOutcome::Complete {
                        matches: outcome.matches,
                    }
                };
                metrics.record_outcome(record.len(), &ro);
                ro
            }
            Err(e) => {
                metrics.add_eval_ns(sw.elapsed_ns());
                let ro = RecordOutcome::Failed(classify_stream_error(e, &limits));
                if matches!(ro, RecordOutcome::Failed(EngineError::Limit(_))) {
                    metrics.record_limit_rejection();
                }
                metrics.record_outcome(record.len(), &ro);
                ro
            }
        }
    }
}

// Evaluate requires Sync; all fields are shared references to Sync types.
#[allow(dead_code)]
fn assert_sync(v: IndexedJsonSki<'_>) -> impl Sync + '_ {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::FnSink;
    use crate::pipeline::{Pipeline, SliceRecords};
    use std::ops::ControlFlow;

    const CORPUS: &[u8] = b"{\"a\": 1, \"b\": {\"x\": [1, 2, 3]}}\n{\"a\": 2}\n{\"c\": [true, null]}\n{\"a\": {\"deep\": {\"a\": 3}}}\n";

    fn digest() -> u64 {
        config_digest(&EngineConfig::default())
    }

    fn collect(engine: &dyn Evaluate, source: &mut dyn RecordSource) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut sink = FnSink::new(|m: crate::Match<'_>| {
            out.push((m.record_idx(), m.bytes().to_vec()));
            ControlFlow::Continue(())
        });
        Pipeline::new()
            .workers(1)
            .run(engine, source, &mut sink)
            .unwrap();
        out
    }

    #[test]
    fn build_covers_every_record_and_word() {
        let idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        assert_eq!(idx.record_count(), 4);
        for (i, &(s, e)) in idx.spans().iter().enumerate() {
            let words = ((e - s) as usize).div_ceil(BLOCK);
            assert_eq!(idx.bitmaps_for(i).unwrap().len(), words);
        }
        assert!(idx.bitmaps_for(4).is_none());
    }

    #[test]
    fn roundtrip_preserves_index() {
        let idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        let parsed = StructuralIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(parsed, idx);
        parsed.verify(CORPUS, digest()).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_config_and_stale_corpus() {
        let idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        assert!(matches!(
            idx.verify(CORPUS, digest() ^ 1),
            Err(IndexError::ConfigMismatch)
        ));
        let mut mutated = CORPUS.to_vec();
        mutated[3] = b'z';
        assert!(matches!(
            idx.verify(&mutated, digest()),
            Err(IndexError::Stale)
        ));
        let mut longer = CORPUS.to_vec();
        longer.extend_from_slice(b"{\"d\": 4}\n");
        assert!(matches!(
            idx.verify(&longer, digest()),
            Err(IndexError::Stale)
        ));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = StructuralIndex::build(CORPUS, digest()).unwrap().to_bytes();
        for cut in 0..bytes.len() {
            let err = StructuralIndex::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, IndexError::Truncated { .. } | IndexError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = StructuralIndex::build(CORPUS, digest()).unwrap().to_bytes();
        let original = StructuralIndex::from_bytes(&bytes).unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            match StructuralIndex::from_bytes(&bad) {
                // A flip inside a checksum-or-checksummed byte is caught…
                Err(_) => {}
                // …and a flip that still parses must decode to different
                // bytes being rejected elsewhere — it can never silently
                // equal the original.
                Ok(parsed) => assert_ne!(parsed, original, "flip at {pos} undetected"),
            }
        }
    }

    #[test]
    fn version_skew_is_bad_magic() {
        let mut bytes = StructuralIndex::build(CORPUS, digest()).unwrap().to_bytes();
        bytes[6] = b'2'; // JSKIDX2
        assert!(matches!(
            StructuralIndex::from_bytes(&bytes),
            Err(IndexError::BadMagic)
        ));
        assert!(matches!(
            StructuralIndex::from_bytes(
                b"PNG\r\n\x1a\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
            ),
            Err(IndexError::BadMagic)
        ));
    }

    #[test]
    fn malformed_spans_are_rejected_structurally() {
        // Hand-craft an index whose checksums are valid but whose spans
        // overlap: structural validation must catch it.
        let mut idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        idx.spans[1].0 = 0; // overlaps span 0
        let bytes = idx.to_bytes();
        assert!(matches!(
            StructuralIndex::from_bytes(&bytes),
            Err(IndexError::Malformed { .. })
        ));
        let mut idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        let last = idx.spans.len() - 1;
        idx.spans[last].1 = idx.input_len + 100; // out of bounds
        assert!(matches!(
            StructuralIndex::from_bytes(&idx.to_bytes()),
            Err(IndexError::Malformed { .. })
        ));
    }

    #[test]
    fn save_load_roundtrip_and_missing() {
        let dir = std::env::temp_dir().join(format!("jsonski-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = index_path_for(&dir, "corpus.jsonl");
        assert!(matches!(
            StructuralIndex::load(&path, CORPUS, digest()),
            Err(IndexError::Missing)
        ));
        let idx = StructuralIndex::build(CORPUS, digest()).unwrap();
        idx.save(&path).unwrap();
        assert_eq!(StructuralIndex::load(&path, CORPUS, digest()).unwrap(), idx);
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_refuses_unsplittable_corpus() {
        assert!(matches!(
            StructuralIndex::build(b"{\"never\": [1, 2\n", digest()),
            Err(IndexError::Build(_))
        ));
    }

    #[test]
    fn indexed_evaluation_is_byte_identical_to_uncached() {
        for query in ["$.a", "$.b.x[*]", "$..a", "$.c[1]"] {
            let engine = JsonSki::compile(query).unwrap();
            let idx = StructuralIndex::build(CORPUS, digest()).unwrap();
            let uncached = collect(&engine, &mut SliceRecords::new(CORPUS));
            let indexed = IndexedJsonSki::new(&engine, &idx, None);
            let cached = collect(&indexed, &mut IndexedRecords::new(CORPUS, &idx));
            assert_eq!(cached, uncached, "{query}");
        }
    }

    #[test]
    fn index_path_is_traversal_proof() {
        let dir = Path::new("/cache");
        let p = index_path_for(dir, "../../etc/passwd");
        assert!(p.starts_with(dir));
        assert!(p.to_str().unwrap().ends_with(".jskidx"));
        assert_ne!(index_path_for(dir, "a"), index_path_for(dir, "b"));
    }

    #[test]
    fn stats_classify_errors_into_counters() {
        let stats = IndexStats::new();
        stats.record_error(&IndexError::Missing);
        stats.record_error(&IndexError::Stale);
        stats.record_error(&IndexError::ConfigMismatch);
        stats.record_error(&IndexError::Checksum { section: "spans" });
        stats.record_error(&IndexError::BadMagic);
        let pairs: std::collections::HashMap<_, _> = stats.pairs().into_iter().collect();
        assert_eq!(pairs["index_miss"], 1);
        assert_eq!(pairs["index_stale"], 2);
        assert_eq!(pairs["index_corrupt_fallback"], 2);
        assert_eq!(pairs["index_hit"], 0);
    }
}
