//! **jsonski** — streaming JSONPath evaluation with bit-parallel
//! fast-forwarding, a Rust reproduction of *JSONSki: Streaming
//! Semi-structured Data with Bit-Parallel Fast-Forwarding* (Jiang & Zhao,
//! ASPLOS 2022).
//!
//! The streaming scheme evaluates a path query in a single pass over the
//! raw JSON bytes, with no parse tree and no structural index. What makes it
//! fast is *fast-forwarding*: substructures that provably cannot affect the
//! query result are skipped using bitwise/SIMD primitives instead of being
//! tokenized:
//!
//! | Group | Opportunity | Module |
//! |-------|-------------|--------|
//! | G1 | seek the next attribute/element of the type the query demands | [`fastforward`] |
//! | G2 | skip an unmatched attribute value or element wholesale | [`fastforward`] |
//! | G3 | skip an accepted value while emitting its bytes | [`fastforward`] |
//! | G4 | skip to the end of an object once a unique name matched | [`fastforward`] |
//! | G5 | skip array elements outside an index-range constraint | [`fastforward`] |
//!
//! The skips locate object/array ends with the counting-based pairing
//! strategy (paper Theorem 4.3) over per-64-byte-word metacharacter bitmaps
//! supplied by the [`simdbits`] crate, and [`interval`] provides the
//! word-local *structural interval* primitives of the paper's Algorithm 3.
//!
//! # Quick start
//!
//! ```
//! use jsonski::JsonSki;
//!
//! let json = br#"{"pd": [{"id": 7, "tags": ["a", "b"]}, {"id": 9}]}"#;
//! let query = JsonSki::compile("$.pd[*].id")?;
//! assert_eq!(query.matches(json)?, vec![&b"7"[..], &b"9"[..]]);
//!
//! // On-demand extraction: JSON-pointer lookup with lazy typed decoding.
//! let id = jsonski::get(json, "/pd/1/id")?.expect("present");
//! assert_eq!(id.as_i64(), Some(9));
//!
//! // Fast-forward accounting (the paper's Table 6 metric):
//! let stats = query.run(json, |_| {})?;
//! assert!(stats.overall_ratio() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod cancel;
mod checkpoint;
pub mod cursor;
mod engine;
mod error;
mod evaluate;
pub mod fastforward;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
#[cfg(any(test, feature = "faults"))]
pub mod fuzz;
pub mod index;
pub mod interval;
mod lazy;
mod limits;
pub mod membudget;
pub mod metrics;
mod multi;
mod pipeline;
mod pointer;
mod reader;
mod records;
mod stats;
mod validate;

pub use cancel::CancellationToken;
pub use checkpoint::{digest_parts, fingerprint, Checkpoint, CheckpointCadence, FINGERPRINT_BYTES};
pub use engine::{EngineConfig, EngineConfigBuilder, JsonSki, StreamOutcome, MAX_DEPTH};
pub use error::{InvalidReason, StreamError};
#[allow(deprecated)]
pub use evaluate::ByteFnSink;
pub use evaluate::{
    CountSink, EngineError, ErrorPolicy, Evaluate, FnSink, Match, MatchSink, RecordOutcome,
};
pub use index::{IndexError, IndexStats, IndexedJsonSki, IndexedRecords, StructuralIndex};
pub use lazy::{ArrayIter, DecodeError, LazyValue, ObjectIter, ValueKind};
pub use limits::{LimitExceeded, ResourceLimits, DEFAULT_MAX_BUFFER_BYTES};
pub use membudget::{MemBudget, MemDenied, MemPermit};
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot, Stopwatch, MAX_TRACKED_WORKERS};
pub use multi::MultiQuery;
pub use pipeline::{Pipeline, PipelineSummary, RecordSource, SliceRecords};
pub use pointer::{
    get, get_many, ExtractError, Extraction, Extractor, JsonPointer, PointerParseError,
    MAX_POINTER_DEPTH,
};
pub use reader::{ChunkedRecords, ReadRecordError, RetryPolicy, DEFAULT_BUFFER};
pub use records::{split_records, RecordSplitter};
pub use stats::{FastForwardStats, Group};
pub use validate::{validate_record, validate_record_with, ValidationMode, Validator};

// Re-export the kernel selector so embedders can force one without a direct
// simdbits dependency (mirrors the `--kernel` / `JSONSKI_KERNEL` plumbing).
pub use simdbits::{best_kernel, Kernel};

// Re-export the query types so downstream users need only this crate.
pub use jsonpath::{ExpectedType, ParsePathError, Path, Step};
