//! Bit-parallel record splitting for multi-record streams.
//!
//! The paper's second processing scenario is "a sequence of small records"
//! with "an offset array for starting positions". When the offsets are not
//! given (e.g. a raw JSON-Lines feed), this module discovers them with the
//! same counting-based pairing used for fast-forwarding: each top-level
//! container is skipped bit-parallel to find its end, without tokenizing
//! record contents at all.

use simdbits::BLOCK;

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::fastforward::{go_over_ary, go_over_obj};
use crate::stats::{FastForwardStats, Group};

/// Iterator over the byte spans of consecutive top-level JSON values in a
/// whitespace/newline-separated stream.
///
/// # Example
///
/// ```
/// use jsonski::RecordSplitter;
///
/// let stream = b"{\"a\": 1}\n[2, 3]\n\"four\"\n";
/// let spans: Result<Vec<_>, _> = RecordSplitter::new(stream).collect();
/// let spans = spans?;
/// assert_eq!(spans.len(), 3);
/// assert_eq!(&stream[spans[1].0..spans[1].1], b"[2, 3]");
/// # Ok::<(), jsonski::StreamError>(())
/// ```
#[derive(Debug)]
pub struct RecordSplitter<'a> {
    cursor: Cursor<'a>,
    stats: FastForwardStats,
    failed: bool,
    /// Start offset of the record most recently attempted, for resync
    /// span reporting.
    record_start: usize,
}

impl<'a> RecordSplitter<'a> {
    /// Creates a splitter over `stream`.
    pub fn new(stream: &'a [u8]) -> Self {
        RecordSplitter {
            cursor: Cursor::new(stream),
            stats: FastForwardStats::new(),
            failed: false,
            record_start: 0,
        }
    }

    /// The underlying stream.
    pub fn stream(&self) -> &'a [u8] {
        self.cursor.input()
    }

    /// The splitter's current position: the byte just past the most
    /// recently returned record (or, after [`resync`](Self::resync), the
    /// resume point past the abandoned span). This is the offset a
    /// checkpoint can safely restart from.
    pub fn pos(&self) -> usize {
        self.cursor.pos()
    }

    /// After [`next`](Iterator::next) returned an error, skips forward to
    /// the byte after the next raw `\n` (or to the end of the stream) and
    /// re-arms the iterator, returning the `(start, end)` span of the bytes
    /// given up on. Returns `None` when no error is pending.
    ///
    /// A raw (unescaped) newline cannot occur inside a valid JSON string,
    /// so for newline-delimited streams the byte after the next `\n` is a
    /// sound place to expect the next record boundary. The scan uses the
    /// same SWAR word-at-a-time search as `find_newline`.
    pub fn resync(&mut self) -> Option<(usize, usize)> {
        if !self.failed {
            return None;
        }
        self.failed = false;
        let input = self.cursor.input();
        // The error was detected at or after the record's start; scanning
        // from the detection point (not the record start) avoids resyncing
        // into the middle of the record that just failed.
        let from = self.cursor.pos().max(self.record_start);
        let resume = match find_newline(&input[from..]) {
            Some(i) => from + i + 1,
            None => input.len(),
        };
        // The failed scan may have classified words beyond the resume point,
        // and the streaming discipline discards every word's bitmaps but the
        // newest — a rewind into a discarded word must restart the cursor so
        // classification re-runs from the stream head. The classifier is
        // deterministic, so the re-derived bitmaps are identical; the cost
        // (re-classifying the abandoned prefix) stays on this cold path.
        let frontier = self.cursor.words_classified().saturating_sub(1) * BLOCK;
        if resume < frontier {
            self.cursor = Cursor::new(input);
        }
        self.cursor.set_pos(resume);
        Some((self.record_start, resume))
    }
}

/// Position of the first raw `\n` in `haystack`, scanning eight bytes per
/// step with SWAR zero-byte detection (Mycroft's `(w - 0x0101..) & !w &
/// 0x8080..` trick on the XOR against a broadcast `\n`).
pub fn find_newline(haystack: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const NL: u64 = LO * b'\n' as u64;
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = u64::from_le_bytes(haystack[i..i + 8].try_into().unwrap()) ^ NL;
        let zeros = w.wrapping_sub(LO) & !w & HI;
        if zeros != 0 {
            return Some(i + (zeros.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| i + p)
}

impl Iterator for RecordSplitter<'_> {
    /// A record's `(start, end)` byte span, or the structural error that
    /// ended the scan.
    type Item = Result<(usize, usize), StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        self.cursor.skip_ws();
        let t = self.cursor.peek()?;
        self.record_start = self.cursor.pos();
        let result = match t {
            b'{' => go_over_obj(&mut self.cursor, &mut self.stats, Group::G2),
            b'[' => go_over_ary(&mut self.cursor, &mut self.stats, Group::G2),
            b'"' => {
                // A top-level string record: ends at its closing quote.
                let start = self.cursor.pos();
                self.cursor.seek_string_end(start).map(|end| {
                    self.cursor.set_pos(end + 1);
                    (start, end + 1)
                })
            }
            _ => {
                // A top-level number/literal record: at the top level the
                // only delimiter is whitespace (or end of stream); scalars
                // are short, so a byte scan suffices.
                let start = self.cursor.pos();
                let mut end = start;
                let input = self.cursor.input();
                while end < input.len() && !matches!(input[end], b' ' | b'\t' | b'\n' | b'\r') {
                    end += 1;
                }
                self.cursor.set_pos(end);
                Ok((start, end))
            }
        };
        match result {
            Ok(span) => Some(Ok(span)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Splits a stream into record spans, failing on the first structural error.
///
/// # Errors
///
/// [`StreamError::Unbalanced`] (or EOF variants) if a record never closes.
pub fn split_records(stream: &[u8]) -> Result<Vec<(usize, usize)>, StreamError> {
    RecordSplitter::new(stream).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_mixed_records() {
        let stream = br#"{"a": {"b": [1]}}  [1, {"x": "]"}]   42 "s,tr" true"#;
        let spans = split_records(stream).unwrap();
        let texts: Vec<&[u8]> = spans.iter().map(|&(s, e)| &stream[s..e]).collect();
        assert_eq!(
            texts,
            vec![
                &br#"{"a": {"b": [1]}}"#[..],
                br#"[1, {"x": "]"}]"#,
                b"42",
                br#""s,tr""#,
                b"true",
            ]
        );
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(split_records(b"").unwrap().is_empty());
        assert!(split_records(b"  \n\t ").unwrap().is_empty());
    }

    #[test]
    fn unbalanced_record_errors() {
        let err = split_records(br#"{"a": 1} {"b": "#).unwrap_err();
        assert!(matches!(err, StreamError::Unbalanced { .. }));
        // The iterator stops after the error.
        let mut it = RecordSplitter::new(br#"{"ok": 1} {"bad": "#);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn spans_never_overlap_and_are_ordered() {
        let mut stream = Vec::new();
        for i in 0..50 {
            stream.extend_from_slice(format!("{{\"i\": {i}, \"p\": [{i}, {i}]}}\n").as_bytes());
        }
        let spans = split_records(&stream).unwrap();
        assert_eq!(spans.len(), 50);
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn stream_accessor() {
        let s = b"1 2 3";
        let it = RecordSplitter::new(s);
        assert_eq!(it.stream(), s);
    }

    #[test]
    fn find_newline_matches_naive_scan() {
        // Exercise every offset/length combination around the 8-byte SWAR
        // word boundary.
        for len in 0..40 {
            for at in 0..=len {
                let mut v = vec![b'x'; len];
                let expected = if at < len {
                    v[at] = b'\n';
                    Some(at)
                } else {
                    None
                };
                assert_eq!(find_newline(&v), expected, "len={len} at={at}");
            }
        }
        // First of several newlines wins.
        assert_eq!(find_newline(b"ab\ncd\nef"), Some(2));
        assert_eq!(find_newline(b"\n"), Some(0));
    }

    #[test]
    fn resync_skips_to_next_line_and_continues() {
        let stream = b"{\"ok\": 1}\n{\"bad\": \n{\"ok\": 2}\n";
        let mut it = RecordSplitter::new(stream);
        assert_eq!(it.next().unwrap().unwrap(), (0, 9));
        assert!(it.next().unwrap().is_err());
        // Nothing pending before an error: resync is a no-op.
        let span = it.resync().expect("error pending");
        assert_eq!(&stream[span.0..span.1], b"{\"bad\": \n");
        assert_eq!(it.resync(), None);
        let next = it.next().unwrap().unwrap();
        assert_eq!(&stream[next.0..next.1], b"{\"ok\": 2}");
        assert!(it.next().is_none());
    }

    #[test]
    fn resync_rewinds_past_the_classified_frontier() {
        // The unclosed record's pairing scan classifies every word of the
        // stream looking for its `]`; the resync point is back in word 0.
        // The cursor must recover (restart classification) rather than hand
        // out discarded bitmaps — and still split the surviving records.
        let mut stream = b"{\"a\": [1, 2\n".to_vec();
        for i in 0..30 {
            stream.extend_from_slice(format!("{{\"b\": {i}}}\n").as_bytes());
        }
        let mut it = RecordSplitter::new(&stream);
        assert!(it.next().unwrap().is_err());
        let span = it.resync().unwrap();
        assert_eq!(&stream[span.0..span.1], b"{\"a\": [1, 2\n");
        let mut seen = 0;
        for next in it {
            let (s, e) = next.unwrap();
            assert_eq!(&stream[s..e], format!("{{\"b\": {seen}}}").as_bytes());
            seen += 1;
        }
        assert_eq!(seen, 30);
    }

    #[test]
    fn resync_at_stream_end_consumes_the_tail() {
        let stream = b"{\"ok\": 1} {\"bad\": ";
        let mut it = RecordSplitter::new(stream);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        let span = it.resync().unwrap();
        assert_eq!(span, (10, stream.len()));
        assert!(it.next().is_none());
    }
}
