//! Recursive-descent streaming with fast-forwarding (paper Algorithms 1–2).
//!
//! [`JsonSki`] drives the query automaton with a recursive-descent parser
//! whose `object()`/`array()` functions invoke the bit-parallel fast-forward
//! primitives of [`crate::fastforward`]:
//!
//! * type-directed attribute search (G1) when the query dictates the type of
//!   the matching value,
//! * whole-value skips (G2) for unmatched attributes/elements,
//! * skip-and-output (G3) for accepted values,
//! * skip-to-object-end (G4) once a uniquely-named attribute has matched,
//! * index-range skips (G5) for arrays with `[n]`/`[m:n]` constraints.

use std::ops::ControlFlow;

use jsonpath::{
    ContainerKind, ExpectedType, Legality, ParsePathError, Path, Runtime, State, Status,
};

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::evaluate::Match;
use crate::fastforward::{
    go_over_ary, go_over_obj, go_over_primitive, go_over_primitives_to_opener, go_to_ary_end,
    go_to_attr_with_opener, go_to_obj_end, Span,
};
use crate::lazy::LazyValue;
use crate::limits::ResourceLimits;
use crate::stats::{FastForwardStats, Group};
use crate::validate::ValidationMode;
use simdbits::Kernel;

/// Default maximum container nesting accepted before
/// [`StreamError::TooDeep`]; bounds the recursion of the recursive-descent
/// design. Override per engine via
/// [`ResourceLimits::max_depth`](crate::ResourceLimits::max_depth).
pub const MAX_DEPTH: usize = 1024;

/// A compiled JSONPath query evaluated by streaming with bit-parallel
/// fast-forwarding.
///
/// # Example
///
/// ```
/// use jsonski::JsonSki;
///
/// let json = br#"{
///   "coordinates": [40.74, -73.99],
///   "user": {"id": 6253282},
///   "place": {"name": "Manhattan", "bounding_box": {"type": "Polygon"}}
/// }"#;
/// let query = JsonSki::compile("$.place.name")?;
/// let matches = query.matches(json)?;
/// assert_eq!(matches, vec![&b"\"Manhattan\""[..]]);
/// assert_eq!(matches[0].as_str()?, "Manhattan"); // lazy typed decoding
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct JsonSki {
    path: Path,
    config: EngineConfig,
}

/// Ablation switches: disable individual fast-forward groups to measure
/// their contribution (the per-group ratios of the paper's Table 6 hint at
/// what each is worth; the `ablation` bench quantifies it in time).
///
/// G2/G3 (value skipping and skip-with-output) are the engine's substance
/// and cannot be disabled — an engine without them *is* the JPStream
/// baseline.
///
/// The struct is `#[non_exhaustive]` so future fast-forward groups can be
/// added without breaking downstream crates; construct it through
/// [`EngineConfig::builder`]:
///
/// ```
/// use jsonski::EngineConfig;
///
/// let cfg = EngineConfig::builder().disable_g4().build();
/// assert!(cfg.g1 && !cfg.g4 && cfg.g5);
/// ```
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Enable G1 type-directed attribute seeking.
    pub g1: bool,
    /// Enable G4 skip-to-object-end after a unique-name match.
    pub g4: bool,
    /// Enable G5 index-range skipping in arrays.
    pub g5: bool,
    /// Resource guards applied while evaluating (nesting depth, record
    /// size, optional per-record deadline).
    pub limits: ResourceLimits,
    /// Input trust level: [`ValidationMode::Strict`] validates every byte —
    /// including fast-forwarded spans — for UTF-8 well-formedness, string
    /// escape grammar, balanced structure, and trailing garbage.
    pub validation: ValidationMode,
    /// Forces a specific bitmap kernel instead of runtime auto-detection
    /// (`None`). Used for kernel differential verification; the
    /// `JSONSKI_KERNEL` environment variable overrides even this.
    pub kernel: Option<Kernel>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            g1: true,
            g4: true,
            g5: true,
            limits: ResourceLimits::default(),
            validation: ValidationMode::Permissive,
            kernel: None,
        }
    }
}

impl EngineConfig {
    /// Starts a builder with every group enabled.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Builder for [`EngineConfig`] (ablation switches).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets G1 type-directed attribute seeking.
    pub fn g1(mut self, enabled: bool) -> Self {
        self.config.g1 = enabled;
        self
    }

    /// Sets G4 skip-to-object-end after a unique-name match.
    pub fn g4(mut self, enabled: bool) -> Self {
        self.config.g4 = enabled;
        self
    }

    /// Sets G5 index-range skipping in arrays.
    pub fn g5(mut self, enabled: bool) -> Self {
        self.config.g5 = enabled;
        self
    }

    /// Disables G1 type-directed attribute seeking.
    pub fn disable_g1(self) -> Self {
        self.g1(false)
    }

    /// Disables G4 skip-to-object-end.
    pub fn disable_g4(self) -> Self {
        self.g4(false)
    }

    /// Disables G5 index-range skipping.
    pub fn disable_g5(self) -> Self {
        self.g5(false)
    }

    /// Sets the resource guards ([`ResourceLimits`]).
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Sets the input trust level ([`ValidationMode`]).
    pub fn validation(mut self, mode: ValidationMode) -> Self {
        self.config.validation = mode;
        self
    }

    /// Shorthand for `validation(ValidationMode::Strict)`.
    pub fn strict(self) -> Self {
        self.validation(ValidationMode::Strict)
    }

    /// Forces a specific bitmap kernel (`None` restores auto-detection).
    pub fn kernel(mut self, kernel: Option<Kernel>) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

impl JsonSki {
    /// Wraps an already-parsed path.
    pub fn new(path: Path) -> Self {
        JsonSki {
            path,
            config: EngineConfig::default(),
        }
    }

    /// Compiles a JSONPath expression.
    ///
    /// # Errors
    ///
    /// Returns the parse error for unsupported or malformed expressions.
    pub fn compile(query: &str) -> Result<Self, ParsePathError> {
        Ok(JsonSki {
            path: query.parse()?,
            config: EngineConfig::default(),
        })
    }

    /// Replaces the ablation configuration (builder-style).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces only the resource guards (builder-style), keeping the
    /// ablation switches.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The compiled path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Streams one JSON record through `sink`, the primitive every other
    /// entry point wraps. The sink receives a borrowed [`Match`] handle —
    /// span, raw bytes, and lazy typed decoding over the input buffer —
    /// and steers the scan: returning [`ControlFlow::Break`] stops
    /// evaluation immediately — no further input bytes are examined —
    /// which is how `--limit`-style early exit avoids scanning the rest
    /// of a record.
    ///
    /// ```
    /// use std::ops::ControlFlow;
    /// use jsonski::JsonSki;
    ///
    /// let q = JsonSki::compile("$.it[*]")?;
    /// let json = br#"{"it": [1, 2, 3, 4]}"#;
    /// let mut first = None;
    /// let outcome = q.stream(json, |m| {
    ///     first = Some(m.value());
    ///     ControlFlow::Break(())
    /// })?;
    /// assert_eq!(first.unwrap().as_i64(), Some(1));
    /// assert!(outcome.stopped);
    /// assert!(outcome.consumed < json.len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`StreamError`] on malformed input discovered on the examined path or
    /// by pairing validation within fast-forwarded segments.
    pub fn stream<'a, F>(&self, input: &'a [u8], sink: F) -> Result<StreamOutcome, StreamError>
    where
        F: FnMut(Match<'a>) -> ControlFlow<()>,
    {
        self.stream_cursor(
            Cursor::with_options(input, self.config.kernel, self.config.validation),
            sink,
        )
    }

    /// Streams one JSON record like [`JsonSki::stream`], but serves word
    /// bitmaps from `prebuilt` (one [`simdbits::BlockBitmaps`] per 64-byte
    /// word of `input`, e.g. from a persistent structural index) instead of
    /// classifying. Matches, errors, and strict-validation verdicts are
    /// byte-identical to [`JsonSki::stream`] given a faithful `prebuilt`;
    /// a mis-sized slice is ignored and the record is classified normally
    /// (see [`Cursor::with_prebuilt`]).
    ///
    /// # Errors
    ///
    /// [`StreamError`] exactly as [`JsonSki::stream`] reports it.
    pub fn stream_prebuilt<'a, F>(
        &self,
        input: &'a [u8],
        prebuilt: &'a [simdbits::BlockBitmaps],
        sink: F,
    ) -> Result<StreamOutcome, StreamError>
    where
        F: FnMut(Match<'a>) -> ControlFlow<()>,
    {
        self.stream_cursor(
            Cursor::with_prebuilt(input, prebuilt, self.config.kernel, self.config.validation),
            sink,
        )
    }

    fn stream_cursor<'a, F>(&self, cur: Cursor<'a>, sink: F) -> Result<StreamOutcome, StreamError>
    where
        F: FnMut(Match<'a>) -> ControlFlow<()>,
    {
        let mut eval = Eval {
            cur,
            rt: Runtime::new(&self.path),
            stats: FastForwardStats::new(),
            sink,
            matches: 0,
            depth: 0,
            pending: Vec::new(),
            flush_from: 0,
            config: self.config,
            deadline: self
                .config
                .limits
                .deadline
                .map(|d| std::time::Instant::now() + d),
        };
        let stopped = match eval.record() {
            Ok(()) => {
                debug_assert!(
                    eval.pending.is_empty(),
                    "pending matches must all be flushed by end of record"
                );
                // Strict mode validates to the end of the record even though
                // evaluation may have fast-forwarded past (or stopped before)
                // the remaining bytes. No-op in Permissive mode.
                eval.cur.finish_strict()?;
                false
            }
            // Sink-requested early exit deliberately skips the rest of the
            // input — "no further input bytes are examined" (see above)
            // extends to validation.
            Err(Abort::Stop) => true,
            Err(Abort::Err(e)) => {
                // A structural error in Strict mode is often the *echo* of a
                // validity fault (e.g. an unterminated string surfaces as
                // UnexpectedEof from the seek that ran off the end). Finish
                // validation and prefer its typed, offset-bearing verdict so
                // streaming evaluation and a validate-then-parse pre-pass
                // report identical first failures.
                if let Err(invalid @ StreamError::Invalid { .. }) = eval.cur.finish_strict() {
                    return Err(invalid);
                }
                return Err(e);
            }
        };
        Ok(StreamOutcome {
            stats: eval.stats,
            matches: eval.matches,
            stopped,
            consumed: eval.cur.pos(),
            words_classified: eval.cur.words_classified(),
            word_cache_hits: eval.cur.word_cache_hits(),
            classify_ns: eval.cur.classify_ns(),
        })
    }

    /// Streams one JSON record, invoking `sink` with the [`Match`] handle
    /// of every match, and returns the fast-forward statistics for the
    /// record. Thin wrapper over [`JsonSki::stream`] that never stops
    /// early.
    ///
    /// # Errors
    ///
    /// [`StreamError`] on malformed input discovered on the examined path or
    /// by pairing validation within fast-forwarded segments.
    pub fn run<'a, F>(&self, input: &'a [u8], mut sink: F) -> Result<FastForwardStats, StreamError>
    where
        F: FnMut(Match<'a>),
    {
        let outcome = self.stream(input, |m| {
            sink(m);
            ControlFlow::Continue(())
        })?;
        Ok(outcome.stats)
    }

    /// Streams a whole multi-record stream (e.g. JSON Lines): records are
    /// discovered with the bit-parallel [`crate::RecordSplitter`] and each
    /// is evaluated in turn. Returns the accumulated statistics.
    ///
    /// # Errors
    ///
    /// [`StreamError`] from either record splitting or evaluation.
    ///
    /// ```
    /// # use jsonski::JsonSki;
    /// let stream = b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n";
    /// let q = JsonSki::compile("$.a")?;
    /// let mut hits = 0;
    /// q.run_stream(stream, |_| hits += 1)?;
    /// assert_eq!(hits, 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_stream<'a, F>(
        &self,
        stream: &'a [u8],
        mut sink: F,
    ) -> Result<FastForwardStats, StreamError>
    where
        F: FnMut(Match<'a>),
    {
        let mut total = FastForwardStats::new();
        for (idx, span) in crate::RecordSplitter::new(stream).enumerate() {
            let (s, e) = span?;
            total += self.run(&stream[s..e], |m| sink(m.with_record_idx(idx as u64)))?;
        }
        Ok(total)
    }

    /// Counts the matches in one record. Thin wrapper over
    /// [`JsonSki::stream`].
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from [`JsonSki::stream`].
    pub fn count(&self, input: &[u8]) -> Result<usize, StreamError> {
        let outcome = self.stream(input, |_| ControlFlow::Continue(()))?;
        Ok(outcome.matches)
    }

    /// Collects lazy handles to all matches in one record. Thin wrapper
    /// over [`JsonSki::stream`]. The handles borrow `input` and compare
    /// equal to raw byte slices; call
    /// [`as_raw`](crate::LazyValue::as_raw) for the bytes or the typed
    /// accessors to decode on demand.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from [`JsonSki::stream`].
    pub fn matches<'a>(&self, input: &'a [u8]) -> Result<Vec<LazyValue<'a>>, StreamError> {
        let mut out = Vec::new();
        self.stream(input, |m| {
            out.push(m.value());
            ControlFlow::Continue(())
        })?;
        Ok(out)
    }
}

/// What one [`JsonSki::stream`] call did: the fast-forward statistics,
/// how many matches the sink saw, whether the sink stopped the scan, and
/// how many input bytes were examined before the scan ended.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// Per-group fast-forward statistics for the scanned prefix.
    pub stats: FastForwardStats,
    /// Number of matches delivered to the sink (including the one the
    /// sink broke on, if any).
    pub matches: usize,
    /// `true` when the sink returned [`ControlFlow::Break`].
    pub stopped: bool,
    /// Cursor position when the scan ended: `input.len()` minus trailing
    /// unscanned bytes. Strictly less than the input length when a break
    /// saved work.
    pub consumed: usize,
    /// 64-byte words classified while scanning (bitmap-construction
    /// effort; feeds [`Metrics::record_bitmap`](crate::Metrics::record_bitmap)).
    pub words_classified: usize,
    /// Word requests served by the single-word bitmap cache. Always 0
    /// without the `metrics` cargo feature.
    pub word_cache_hits: u64,
    /// Nanoseconds spent constructing word bitmaps. Always 0 without the
    /// `metrics` cargo feature.
    pub classify_ns: u64,
}

/// Propagates either a hard parse error or a sink-requested stop up
/// through the recursive descent.
enum Abort {
    Err(StreamError),
    Stop,
}

impl From<StreamError> for Abort {
    fn from(e: StreamError) -> Self {
        Abort::Err(e)
    }
}

/// A match whose emission is deferred to preserve pre-order (span-start
/// ascending) under descendant queries: an [`AcceptAndDescend`] container
/// must reach the sink before the matches found inside it, but its span's
/// end is only known once the traversal returns. `end == None` marks a
/// still-open container entry.
///
/// Descendant-free queries never open an entry, so every emission stays
/// immediate — the queue costs them nothing.
///
/// [`AcceptAndDescend`]: Status::AcceptAndDescend
struct PendingMatch {
    start: usize,
    end: Option<usize>,
}

struct Eval<'a, 'p, F> {
    cur: Cursor<'a>,
    rt: Runtime<'p>,
    stats: FastForwardStats,
    sink: F,
    matches: usize,
    depth: usize,
    /// Deferred matches (see [`PendingMatch`]); `flush_from` indexes the
    /// first entry not yet delivered to the sink.
    pending: Vec<PendingMatch>,
    flush_from: usize,
    config: EngineConfig,
    /// Absolute cut-off instant when a per-record deadline is configured;
    /// `None` (the default) keeps the hot path free of clock calls.
    deadline: Option<std::time::Instant>,
}

impl<'a, F: FnMut(Match<'a>) -> ControlFlow<()>> Eval<'a, '_, F> {
    /// Depth/deadline guard shared by `object()` and `array()`: called
    /// once per container entry, after `depth` was incremented.
    fn check_guards(&mut self) -> Result<(), Abort> {
        if self.depth > self.config.limits.max_depth {
            return Err(Abort::Err(StreamError::TooDeep {
                pos: self.cur.pos(),
            }));
        }
        if let Some(dl) = self.deadline {
            if std::time::Instant::now() >= dl {
                return Err(Abort::Err(StreamError::DeadlineExpired {
                    pos: self.cur.pos(),
                }));
            }
        }
        Ok(())
    }

    /// Emits a completed span, or queues it while an enclosing
    /// [`Status::AcceptAndDescend`] container entry is still open (the
    /// container must reach the sink first).
    fn emit(&mut self, span: Span) -> Result<(), Abort> {
        if self.flush_from == self.pending.len() {
            self.emit_now(span)
        } else {
            self.pending.push(PendingMatch {
                start: span.0,
                end: Some(span.1),
            });
            Ok(())
        }
    }

    fn emit_now(&mut self, span: Span) -> Result<(), Abort> {
        self.matches += 1;
        // Match::new is the shared normalization point (evaluate.rs): the
        // span every engine reports is trimmed there, not here.
        match (self.sink)(Match::new(0, self.cur.input(), span)) {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(()) => Err(Abort::Stop),
        }
    }

    /// Opens a pending entry for an accepted container about to be
    /// descended; [`Eval::close_pending`] completes it once the end is
    /// known and flushes everything that became ready.
    fn open_pending(&mut self, start: usize) {
        self.pending.push(PendingMatch { start, end: None });
    }

    fn close_pending(&mut self, end: usize) -> Result<(), Abort> {
        let open = self
            .pending
            .iter_mut()
            .rev()
            .find(|p| p.end.is_none())
            .expect("unbalanced pending-match close");
        open.end = Some(end);
        self.flush_pending()
    }

    /// Delivers queued matches from the front while their spans are
    /// complete; stops at the first still-open container entry.
    fn flush_pending(&mut self) -> Result<(), Abort> {
        while let Some(p) = self.pending.get(self.flush_from) {
            let Some(end) = p.end else { break };
            let span = (p.start, end);
            self.flush_from += 1;
            self.emit_now(span)?;
        }
        if self.flush_from == self.pending.len() {
            self.pending.clear();
            self.flush_from = 0;
        }
        Ok(())
    }

    /// Descends into a container value (opener not yet consumed) whose
    /// computed automaton state is `state`.
    fn descend(&mut self, kind: ContainerKind, state: State) -> Result<(), Abort> {
        self.cur.bump();
        self.rt.enter(kind, state);
        let r = match kind {
            ContainerKind::Object => self.object(),
            ContainerKind::Array => self.array(),
        };
        self.rt.exit();
        r
    }

    /// [`Status::AcceptAndDescend`] on a container value: the container is
    /// itself a result *and* must be searched. Emission is deferred through
    /// the pending queue so the sink sees it before its interior matches.
    fn descend_with_output(&mut self, kind: ContainerKind, state: State) -> Result<(), Abort> {
        self.open_pending(self.cur.pos());
        self.descend(kind, state)?;
        self.close_pending(self.cur.pos())
    }

    fn record(&mut self) -> Result<(), Abort> {
        self.stats.add_total(self.cur.input().len() as u64);
        self.cur.skip_ws();
        let Some(t) = self.cur.peek() else {
            return Ok(()); // blank input: zero records, zero matches
        };
        match t {
            b'{' => {
                match self.rt.enter_root(ContainerKind::Object) {
                    Status::Accept => {
                        let span = go_over_obj(&mut self.cur, &mut self.stats, Group::G3)?;
                        self.emit(span)?;
                    }
                    Status::Unmatched => {
                        go_over_obj(&mut self.cur, &mut self.stats, Group::G2)?;
                    }
                    Status::Matched => {
                        self.cur.expect(b'{', "`{`")?;
                        self.object()?;
                    }
                    // The root value has no enclosing selector, so it is
                    // never simultaneously a result and a search frontier.
                    Status::AcceptAndDescend => unreachable!("root cannot AcceptAndDescend"),
                }
                self.rt.exit();
            }
            b'[' => {
                match self.rt.enter_root(ContainerKind::Array) {
                    Status::Accept => {
                        let span = go_over_ary(&mut self.cur, &mut self.stats, Group::G3)?;
                        self.emit(span)?;
                    }
                    Status::Unmatched => {
                        go_over_ary(&mut self.cur, &mut self.stats, Group::G2)?;
                    }
                    Status::Matched => {
                        self.cur.expect(b'[', "`[`")?;
                        self.array()?;
                    }
                    Status::AcceptAndDescend => unreachable!("root cannot AcceptAndDescend"),
                }
                self.rt.exit();
            }
            _ => {
                // Primitive root record: matches only the `$` path.
                if self.rt.path().is_empty() {
                    let span = go_over_primitive(&mut self.cur, &mut self.stats, Group::G3)?;
                    self.emit(span)?;
                } else {
                    go_over_primitive(&mut self.cur, &mut self.stats, Group::G2)?;
                }
            }
        }
        Ok(())
    }

    /// Algorithm 2's `object()`; the opening `{` has been consumed and the
    /// automaton's top frame is this object's.
    fn object(&mut self) -> Result<(), Abort> {
        self.depth += 1;
        self.check_guards()?;
        // Legality is a property of the frame's state set, which is fixed
        // for the whole container scan: compute it once on entry.
        let legal = self.rt.legality();
        let result = match self.rt.expected_type() {
            // Nothing in this object can match: drain to the end (a pure
            // over-skip, accounted as G2).
            None => self.finish_object(Group::G2),
            Some(ExpectedType::Object) if self.config.g1 && legal.g1 => {
                self.object_typed(b'{', legal)
            }
            Some(ExpectedType::Array) if self.config.g1 && legal.g1 => {
                self.object_typed(b'[', legal)
            }
            // `ExpectedType::Unknown` lands here too: descendant and
            // multi-position states have no single candidate type, so G1
            // seeking is off and every attribute is examined.
            Some(_) => self.object_generic(legal),
        };
        self.depth -= 1;
        result
    }

    /// Typed attribute loop: the query dictates that only attributes whose
    /// value opens with `open` can match, so G1 seeks them directly.
    fn object_typed(&mut self, open: u8, legal: Legality) -> Result<(), Abort> {
        let kind = if open == b'{' {
            ContainerKind::Object
        } else {
            ContainerKind::Array
        };
        loop {
            let Some((ns, ne)) = go_to_attr_with_opener(&mut self.cur, &mut self.stats, open)?
            else {
                // No more type-matched attributes; cursor is at `}`.
                self.cur.expect(b'}', "`}`")?;
                return Ok(());
            };
            let raw_name = &self.cur.input()[ns..ne];
            let (state, status) = self.rt.value_state_for_key_raw(raw_name);
            match status {
                Status::Unmatched => {
                    // G2: fast-forward over the unmatched container value.
                    if open == b'{' {
                        go_over_obj(&mut self.cur, &mut self.stats, Group::G2)?;
                    } else {
                        go_over_ary(&mut self.cur, &mut self.stats, Group::G2)?;
                    }
                }
                Status::Accept => {
                    let span = if open == b'{' {
                        go_over_obj(&mut self.cur, &mut self.stats, Group::G3)?
                    } else {
                        go_over_ary(&mut self.cur, &mut self.stats, Group::G3)?
                    };
                    self.emit(span)?;
                    if self.g4_applies(legal) {
                        return self.finish_object(Group::G4);
                    }
                }
                Status::Matched => {
                    self.cur.expect(open, "container opener")?;
                    self.rt.enter(kind, state);
                    let r = if open == b'{' {
                        self.object()
                    } else {
                        self.array()
                    };
                    self.rt.exit();
                    r?;
                    if self.g4_applies(legal) {
                        return self.finish_object(Group::G4);
                    }
                }
                // Unreachable in practice: the typed loop runs only for
                // singleton non-descendant states (`legal.g1`), whose
                // transitions never yield a set that both accepts and
                // stays live. Handled anyway for robustness.
                Status::AcceptAndDescend => {
                    self.cur.skip_ws();
                    let start = self.cur.pos();
                    self.open_pending(start);
                    self.cur.expect(open, "container opener")?;
                    self.rt.enter(kind, state);
                    let r = if open == b'{' {
                        self.object()
                    } else {
                        self.array()
                    };
                    self.rt.exit();
                    r?;
                    self.close_pending(self.cur.pos())?;
                }
            }
        }
    }

    /// Generic attribute loop for states with no inferable candidate type:
    /// the last path level, multi-position (descendant) sets, and wildcard
    /// tails.
    fn object_generic(&mut self, legal: Legality) -> Result<(), Abort> {
        loop {
            let t = self.cur.peek_token("attribute or `}`")?;
            match t {
                b'}' => {
                    self.cur.bump();
                    return Ok(());
                }
                b',' => {
                    self.cur.bump();
                }
                b'"' => {
                    let (ns, ne) = self.cur.read_string()?;
                    self.cur.expect(b':', "`:`")?;
                    let raw_name = &self.cur.input()[ns..ne];
                    let (state, status) = self.rt.value_state_for_key_raw(raw_name);
                    self.cur.skip_ws();
                    let vb = self.cur.peek_token("attribute value")?;
                    match status {
                        Status::Unmatched => {
                            self.skip_value(vb, Group::G2)?;
                        }
                        Status::Accept => {
                            let span = self.skip_value(vb, Group::G3)?;
                            self.emit(span)?;
                            if self.g4_applies(legal) {
                                return self.finish_object(Group::G4);
                            }
                        }
                        Status::Matched => {
                            // Reachable through `.*` at the last level and
                            // below live descendant positions; descend when
                            // the value is a container.
                            match vb {
                                b'{' => self.descend(ContainerKind::Object, state)?,
                                b'[' => self.descend(ContainerKind::Array, state)?,
                                _ => {
                                    self.skip_value(vb, Group::G2)?;
                                }
                            }
                            if self.g4_applies(legal) {
                                return self.finish_object(Group::G4);
                            }
                        }
                        Status::AcceptAndDescend => {
                            // G4 never applies after this status: it only
                            // arises from a live descendant position, whose
                            // legality is NONE.
                            match vb {
                                b'{' => self.descend_with_output(ContainerKind::Object, state)?,
                                b'[' => self.descend_with_output(ContainerKind::Array, state)?,
                                _ => {
                                    // A primitive result has no interior to
                                    // keep searching: plain skip-with-output.
                                    let span = self.skip_value(vb, Group::G3)?;
                                    self.emit(span)?;
                                }
                            }
                        }
                    }
                }
                other => {
                    return Err(Abort::Err(StreamError::Unexpected {
                        expected: "`\"` (attribute name)",
                        found: other,
                        pos: self.cur.pos(),
                    }))
                }
            }
        }
    }

    /// Algorithm 2's `array()` analog; the `[` has been consumed.
    fn array(&mut self) -> Result<(), Abort> {
        self.depth += 1;
        self.check_guards()?;
        let result = self.array_body();
        self.depth -= 1;
        result
    }

    fn array_body(&mut self) -> Result<(), Abort> {
        let Some(expected) = self.rt.expected_type() else {
            // Incompatible step kind: nothing here matches (G2 drain).
            return self.finish_array(Group::G2);
        };
        let legal = self.rt.legality();
        let range = self.rt.index_range();
        let input = self.cur.input();
        loop {
            let t = self.cur.peek_token("element or `]`")?;
            if t == b']' {
                self.cur.bump();
                return Ok(());
            }
            if let Some((lo, hi)) = range.filter(|_| self.config.g5 && legal.g5) {
                let c = self.rt.counter();
                if c >= hi {
                    // G5: everything past the range is irrelevant.
                    return self.finish_array(Group::G5);
                }
                if c < lo {
                    // G5: skip forward to the first in-range element.
                    if self.skip_elements(lo - c)? {
                        self.cur.expect(b']', "`]`")?;
                        return Ok(());
                    }
                    continue;
                }
            }
            // Filter predicates are probed against the candidate element's
            // bytes; `peek_token` already skipped to its first byte.
            let pos = self.cur.pos();
            let (state, status) = self
                .rt
                .element_state_with(&mut |expr| jsonpath::filter::eval(expr, &input[pos..]));
            match status {
                Status::Unmatched => {
                    self.skip_value(t, Group::G2)?;
                }
                Status::Accept => {
                    let span = self.skip_value(t, Group::G3)?;
                    self.emit(span)?;
                }
                Status::AcceptAndDescend => match t {
                    b'{' => self.descend_with_output(ContainerKind::Object, state)?,
                    b'[' => self.descend_with_output(ContainerKind::Array, state)?,
                    _ => {
                        // A primitive result has no interior to keep
                        // searching: plain skip-with-output.
                        let span = self.skip_value(t, Group::G3)?;
                        self.emit(span)?;
                    }
                },
                Status::Matched => match (expected, t) {
                    (ExpectedType::Array, b'{') | (ExpectedType::Object, b'[') => {
                        // Type-mismatched container element: G1 skip.
                        self.skip_value(t, Group::G1)?;
                    }
                    (_, b'{') => self.descend(ContainerKind::Object, state)?,
                    (_, b'[') => self.descend(ContainerKind::Array, state)?,
                    (ExpectedType::Unknown, _) => {
                        // Below descendants/filters a primitive element can
                        // still differ from its neighbors (e.g. `$..[2]`),
                        // so scan only this one — no batch skip.
                        self.skip_value(t, Group::G2)?;
                    }
                    _ => {
                        // Primitive elements cannot carry the match deeper:
                        // batch-skip the whole run (G1), keeping the element
                        // counter exact via the comma count.
                        let commas = go_over_primitives_to_opener(
                            &mut self.cur,
                            &mut self.stats,
                            Group::G1,
                        )?;
                        for _ in 0..commas {
                            self.rt.increment();
                        }
                        // Cursor is at `{`, `[`, `]` (or a malformed `}`);
                        // re-enter the loop without delimiter handling.
                        if self.cur.peek() == Some(b'}') {
                            return Err(Abort::Err(StreamError::Unexpected {
                                expected: "`]` or element",
                                found: b'}',
                                pos: self.cur.pos(),
                            }));
                        }
                        continue;
                    }
                },
            }
            // Element delimiter.
            let d = self.cur.peek_token("`,` or `]`")?;
            match d {
                b',' => {
                    self.cur.bump();
                    self.rt.increment();
                }
                b']' => {
                    self.cur.bump();
                    return Ok(());
                }
                other => {
                    return Err(Abort::Err(StreamError::Unexpected {
                        expected: "`,` or `]`",
                        found: other,
                        pos: self.cur.pos(),
                    }))
                }
            }
        }
    }

    /// G5's `goOverElems(K)`: skips `n` elements (value + delimiter) by
    /// type-directed fast-forwarding; returns `true` when the array ended
    /// first (cursor left at `]`).
    fn skip_elements(&mut self, n: usize) -> Result<bool, Abort> {
        for _ in 0..n {
            let t = self.cur.peek_token("element or `]`")?;
            if t == b']' {
                return Ok(true);
            }
            self.skip_value(t, Group::G5)?;
            let d = self.cur.peek_token("`,` or `]`")?;
            match d {
                b',' => {
                    self.cur.bump();
                    self.rt.increment();
                }
                b']' => return Ok(true),
                other => {
                    return Err(Abort::Err(StreamError::Unexpected {
                        expected: "`,` or `]`",
                        found: other,
                        pos: self.cur.pos(),
                    }))
                }
            }
        }
        Ok(false)
    }

    /// Skips one value of any type, returning its span.
    fn skip_value(&mut self, first_byte: u8, group: Group) -> Result<Span, Abort> {
        let span = match first_byte {
            b'{' => go_over_obj(&mut self.cur, &mut self.stats, group)?,
            b'[' => go_over_ary(&mut self.cur, &mut self.stats, group)?,
            _ => go_over_primitive(&mut self.cur, &mut self.stats, group)?,
        };
        Ok(span)
    }

    /// Whether G4 applies after a match at this object's level: only when
    /// every live position is a uniquely-named child step ([`Legality::g4`]
    /// of the frame, computed once on container entry) can no further
    /// sibling match.
    fn g4_applies(&self, legal: Legality) -> bool {
        self.config.g4 && legal.g4
    }

    fn finish_object(&mut self, group: Group) -> Result<(), Abort> {
        go_to_obj_end(&mut self.cur, &mut self.stats, group)?;
        Ok(self.cur.expect(b'}', "`}`")?)
    }

    fn finish_array(&mut self, group: Group) -> Result<(), Abort> {
        go_to_ary_end(&mut self.cur, &mut self.stats, group)?;
        Ok(self.cur.expect(b']', "`]`")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches_of(query: &str, json: &str) -> Vec<String> {
        let q = JsonSki::compile(query).unwrap();
        q.matches(json.as_bytes())
            .unwrap()
            .into_iter()
            .map(|m| String::from_utf8_lossy(m.as_raw()).into_owned())
            .collect()
    }

    const TWEET: &str = r#"{
        "coordinates": [40.74118764, -73.9998279],
        "user": {"id": 6253282},
        "place": {
            "name": "Manhattan",
            "bounding_box": {"type": "Polygon", "pos": [[-74.026675, 40.683935]]}
        }
    }"#;

    #[test]
    fn paper_running_example() {
        assert_eq!(matches_of("$.place.name", TWEET), vec!["\"Manhattan\""]);
    }

    #[test]
    fn match_object_value() {
        let got = matches_of("$.user", TWEET);
        assert_eq!(got, vec![r#"{"id": 6253282}"#]);
    }

    #[test]
    fn match_number_in_nested_object() {
        assert_eq!(matches_of("$.user.id", TWEET), vec!["6253282"]);
    }

    #[test]
    fn match_array_value() {
        assert_eq!(
            matches_of("$.coordinates", TWEET),
            vec!["[40.74118764, -73.9998279]"]
        );
    }

    #[test]
    fn array_wildcard_at_root() {
        let json = r#"[{"text": "a"}, {"text": "b"}, {"nope": 1}]"#;
        assert_eq!(matches_of("$[*].text", json), vec!["\"a\"", "\"b\""]);
    }

    #[test]
    fn array_index() {
        let json = r#"[10, 20, 30, 40]"#;
        assert_eq!(matches_of("$[2]", json), vec!["30"]);
    }

    #[test]
    fn array_slice_selects_half_open_range() {
        let json = r#"[10, 20, 30, 40, 50]"#;
        assert_eq!(matches_of("$[2:4]", json), vec!["30", "40"]);
    }

    #[test]
    fn array_slice_of_objects() {
        let json = r#"{"pd": [{"cp": [{"id": 1}, {"id": 2}, {"id": 3}, {"id": 4}]}]}"#;
        assert_eq!(matches_of("$.pd[*].cp[1:3].id", json), vec!["2", "3"]);
    }

    #[test]
    fn nested_wildcards() {
        let json = r#"{"dt": [[[1, 2, 3, 4, 5], [6, 7, 8, 9]], [[10, 11, 12, 13]]]}"#;
        assert_eq!(
            matches_of("$.dt[*][*][2:4]", json),
            vec!["3", "4", "8", "9", "12", "13"]
        );
    }

    #[test]
    fn deep_path_with_heterogeneous_siblings() {
        let json = r#"{
            "a": [1, 2, {"skip": true}],
            "b": {"c": {"d": [0, {"e": "found"}]}},
            "z": "tail"
        }"#;
        assert_eq!(matches_of("$.b.c.d[1].e", json), vec!["\"found\""]);
    }

    #[test]
    fn no_match_returns_empty() {
        assert!(matches_of("$.nothing.here", TWEET).is_empty());
        assert!(matches_of("$[*].x", TWEET).is_empty()); // root type mismatch
    }

    #[test]
    fn empty_containers() {
        assert!(matches_of("$.a.b", r#"{}"#).is_empty());
        assert!(matches_of("$[*].b", r#"[]"#).is_empty());
        assert!(matches_of("$.a.b", r#"{"a": {}}"#).is_empty());
    }

    #[test]
    fn root_path_matches_whole_record() {
        assert_eq!(matches_of("$", r#"{"a": 1}"#), vec![r#"{"a": 1}"#]);
        assert_eq!(matches_of("$", "[1, 2]"), vec!["[1, 2]"]);
        assert_eq!(matches_of("$", "42"), vec!["42"]);
    }

    #[test]
    fn object_wildcard() {
        let json = r#"{"a": 1, "b": "two", "c": [3]}"#;
        assert_eq!(matches_of("$.*", json), vec!["1", "\"two\"", "[3]"]);
    }

    #[test]
    fn strings_with_metacharacters_do_not_confuse() {
        let json = r#"{"a": "{\"fake\": [1,2]}", "b": {"t": "}}]]"}, "q": {"t": "x"}}"#;
        assert_eq!(matches_of("$.q.t", json), vec!["\"x\""]);
    }

    #[test]
    fn escaped_quotes_in_names_and_values() {
        let json = r#"{"na\"me": 1, "target": {"v": "a\\\"b"}}"#;
        assert_eq!(matches_of("$.target.v", json), vec![r#""a\\\"b""#]);
    }

    #[test]
    fn type_mismatch_between_query_and_data_is_skipped() {
        // Query expects `a` to be an object, data has an array.
        let json = r#"{"a": [1, 2, 3], "b": 0}"#;
        assert!(matches_of("$.a.b", json).is_empty());
        // Query expects `a` to be an array, data has an object.
        assert!(matches_of("$.a[0]", json.replace("[1, 2, 3]", r#"{"x": 1}"#).as_str()).is_empty());
    }

    #[test]
    fn count_and_run_agree() {
        let q = JsonSki::compile("$[*].text").unwrap();
        let json = br#"[{"text": 1}, {"text": 2}, {"x": 3}]"#;
        assert_eq!(q.count(json).unwrap(), 2);
        assert_eq!(q.matches(json).unwrap().len(), 2);
    }

    #[test]
    fn stats_overall_ratio_is_high_for_selective_query() {
        let q = JsonSki::compile("$.place.name").unwrap();
        let mut n = 0;
        let stats = q.run(TWEET.as_bytes(), |_| n += 1).unwrap();
        assert_eq!(n, 1);
        assert!(stats.overall_ratio() > 0.5, "{stats}");
        assert_eq!(stats.total(), TWEET.len() as u64);
    }

    #[test]
    fn g5_prefix_skip_counts() {
        let json = r#"{"a": [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]}"#;
        let q = JsonSki::compile("$.a[8]").unwrap();
        let stats = q
            .run(json.as_bytes(), |m| assert_eq!(m.bytes(), b"8"))
            .unwrap();
        assert!(stats.skipped(Group::G5) > 0, "{stats}");
    }

    #[test]
    fn malformed_unbalanced_is_reported() {
        let q = JsonSki::compile("$.a").unwrap();
        // Inner object never closes: the G2 skip's pairing detects it.
        assert!(matches!(
            q.count(br#"{"b": {"x": 1"#),
            Err(StreamError::Unbalanced { .. })
        ));
        // Outer object never closes: reported as EOF while scanning.
        assert!(q.count(br#"{"b": {"x": 1}"#).is_err());
    }

    #[test]
    fn malformed_missing_colon_is_reported() {
        let q = JsonSki::compile("$.a").unwrap();
        assert!(q.count(br#"{"a" 1}"#).is_err());
    }

    #[test]
    fn too_deep_is_reported() {
        let mut json = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            json.extend_from_slice(br#"{"a":"#);
        }
        json.extend_from_slice(b"1");
        json.extend(std::iter::repeat_n(b'}', MAX_DEPTH + 2));
        let q = JsonSki::compile("$.a.a.a").unwrap();
        // The match path nests deeper than the limit only if the query
        // descends; `$.a.a.a` descends three levels then outputs, so this
        // input is accepted. A query that keeps descending must error.
        assert!(q.count(&json).is_ok());
        let deep_q = JsonSki::compile("$").unwrap();
        assert!(deep_q.count(&json).is_ok()); // G3 output never recurses
    }

    #[test]
    fn whitespace_heavy_input() {
        let json = "  {  \"a\"  :  [  1 ,  {  \"b\"  :  \"hit\"  }  ]  }  ";
        assert_eq!(matches_of("$.a[1].b", json), vec!["\"hit\""]);
    }

    #[test]
    fn multiple_matches_in_nested_arrays() {
        let json = r#"{"it": [{"nm": "a"}, {"nm": "b"}, {"pr": 1}, {"nm": "c"}]}"#;
        assert_eq!(
            matches_of("$.it[*].nm", json),
            vec!["\"a\"", "\"b\"", "\"c\""]
        );
    }

    #[test]
    fn descendant_name_matches_at_every_depth() {
        let json = r#"{"a": {"name": "x", "b": {"name": "y"}}, "name": "z"}"#;
        assert_eq!(matches_of("$..name", json), vec!["\"x\"", "\"y\"", "\"z\""]);
    }

    #[test]
    fn descendant_emits_enclosing_container_before_inner_match() {
        let json = r#"{"a": {"a": 1}}"#;
        assert_eq!(matches_of("$..a", json), vec![r#"{"a": 1}"#, "1"]);
        let json = r#"{"a": {"x": {"a": {"a": 2}}}}"#;
        assert_eq!(
            matches_of("$..a", json),
            vec![r#"{"x": {"a": {"a": 2}}}"#, r#"{"a": 2}"#, "2"]
        );
    }

    #[test]
    fn descendant_wildcard_selects_members_and_elements() {
        let json = r#"{"a": [1, {"b": 2}]}"#;
        assert_eq!(
            matches_of("$..*", json),
            vec![r#"[1, {"b": 2}]"#, "1", r#"{"b": 2}"#, "2"]
        );
    }

    #[test]
    fn descendant_with_trailing_child() {
        let json = r#"{"x": {"a": {"b": 1}}, "a": {"b": 2}, "arr": [{"a": {"b": 3}}]}"#;
        assert_eq!(matches_of("$..a.b", json), vec!["1", "2", "3"]);
    }

    #[test]
    fn descendant_index_applies_in_every_array() {
        let json = r#"{"m": [[9, 8], [7]]}"#;
        assert_eq!(matches_of("$..[0]", json), vec!["[9, 8]", "9", "7"]);
    }

    #[test]
    fn name_union_selects_listed_names() {
        let json = r#"{"a": 1, "b": 2, "c": 3}"#;
        assert_eq!(matches_of("$['a','c']", json), vec!["1", "3"]);
    }

    #[test]
    fn index_union_selects_listed_indices() {
        let json = r#"[10, 20, 30, 40]"#;
        assert_eq!(matches_of("$[1,3]", json), vec!["20", "40"]);
        // Elements between union members are skipped, tail via G5.
        let q = JsonSki::compile("$[1,3]").unwrap();
        let long = br#"[10, 20, 30, 40, 50, 60, 70, 80]"#;
        let stats = q.run(long, |_| {}).unwrap();
        assert!(stats.skipped(Group::G5) > 0, "{stats}");
    }

    #[test]
    fn filter_comparisons_select_matching_elements() {
        let json = r#"{"items": [{"q": 5, "v": 1}, {"q": 9, "v": 2}, {"v": 3}]}"#;
        assert_eq!(matches_of("$.items[?(@.q > 4)].v", json), vec!["1", "2"]);
        assert_eq!(matches_of("$.items[?(@.q)].v", json), vec!["1", "2"]);
        // RFC semantics: a missing comparable satisfies only `!=`.
        assert_eq!(matches_of("$.items[?(@.q != 5)].v", json), vec!["2", "3"]);
        assert_eq!(matches_of("$.items[?(@.q == 9)].v", json), vec!["2"]);
    }

    #[test]
    fn filter_on_primitive_elements() {
        let json = r#"{"xs": [1, 5, 2, 8]}"#;
        assert_eq!(matches_of("$.xs[?(@ >= 5)]", json), vec!["5", "8"]);
        let json = r#"{"xs": [{"a": 1}, 3, {"a": 2}]}"#;
        assert_eq!(matches_of("$.xs[?(@.a)]", json).len(), 2);
    }

    #[test]
    fn descendant_filter_combination() {
        let json =
            r#"{"a": {"xs": [{"q": 9, "v": 1}, {"q": 1, "v": 2}]}, "xs": [{"q": 7, "v": 3}]}"#;
        assert_eq!(matches_of("$..[?(@.q > 5)].v", json), vec!["1", "3"]);
    }

    #[test]
    fn sink_break_mid_pending_flush_stops_scan() {
        let json = br#"{"a": {"a": {"a": 1}}}"#;
        let q = JsonSki::compile("$..a").unwrap();
        let mut seen = Vec::new();
        let outcome = q
            .stream(json, |m| {
                seen.push(m.bytes().to_vec());
                ControlFlow::Break(())
            })
            .unwrap();
        assert!(outcome.stopped);
        assert_eq!(seen, vec![br#"{"a": {"a": 1}}"#.to_vec()]);
    }

    #[test]
    fn descendant_legality_records_zero_g1_g4_g5() {
        let json = r#"{"a": [0, 1, 2, {"name": "x"}], "b": {"name": "y", "tail": [1, 2, 3]}}"#;
        let q = JsonSki::compile("$..name").unwrap();
        let stats = q.run(json.as_bytes(), |_| {}).unwrap();
        assert_eq!(stats.skipped(Group::G1), 0, "{stats}");
        assert_eq!(stats.skipped(Group::G4), 0, "{stats}");
        assert_eq!(stats.skipped(Group::G5), 0, "{stats}");
    }

    #[test]
    fn descendant_legality_flows_through_metrics() {
        // The per-group skip counters surface through the instrumented
        // path unchanged: a descendant query must leave the G1/G4/G5
        // metrics at zero, while the same document under a plain child
        // query records G4 skips.
        use crate::evaluate::{Evaluate, MatchSink};
        struct Null;
        impl MatchSink for Null {
            fn on_match(&mut self, _m: crate::Match<'_>) -> ControlFlow<()> {
                ControlFlow::Continue(())
            }
        }
        let json = br#"{"a": [0, 1, 2, {"name": "x"}], "b": {"name": "y", "tail": [1, 2, 3]}}"#;
        let metrics = crate::Metrics::new();
        let q = JsonSki::compile("$..name").unwrap();
        q.evaluate_metered(json, 0, &mut Null, &metrics);
        let snap = metrics.snapshot();
        for g in [Group::G1, Group::G4, Group::G5] {
            assert_eq!(snap.ff_skipped(g), 0, "{g:?} fired under a descendant");
        }
        let metrics = crate::Metrics::new();
        let q = JsonSki::compile("$.b.name").unwrap();
        q.evaluate_metered(json, 0, &mut Null, &metrics);
        assert!(metrics.snapshot().ff_skipped(Group::G4) > 0);
    }

    #[test]
    fn g4_stops_after_unique_name_match() {
        // After `name` matches, `rest` must be skipped via G4.
        let json = r#"{"place": {"name": "x", "rest": {"deep": [1,2,3]}}}"#;
        let q = JsonSki::compile("$.place.name").unwrap();
        let stats = q.run(json.as_bytes(), |_| {}).unwrap();
        assert!(stats.skipped(Group::G4) > 0, "{stats}");
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn configs() -> Vec<EngineConfig> {
        let mut out = Vec::new();
        for g1 in [true, false] {
            for g4 in [true, false] {
                for g5 in [true, false] {
                    out.push(EngineConfig::builder().g1(g1).g4(g4).g5(g5).build());
                }
            }
        }
        out
    }

    const DOC: &str = r#"{
        "pd": [
            {"cp": [{"id": 1}, {"id": 2}, {"id": 3}, {"id": 4}], "x": {"d": 1}},
            {"cp": [{"id": 5}], "y": [1, 2]},
            {"cp": [{"id": 6}, {"id": 7}, {"id": 8}]}
        ],
        "tail": {"deep": [1, {"z": 2}]}
    }"#;

    #[test]
    fn all_configs_agree_on_results() {
        for query in [
            "$.pd[*].cp[1:3].id",
            "$.pd[0].cp[*]",
            "$.tail.deep[1].z",
            "$.pd[*].y",
        ] {
            let reference: Vec<Vec<u8>> = JsonSki::compile(query)
                .unwrap()
                .matches(DOC.as_bytes())
                .unwrap()
                .into_iter()
                .map(|m| m.as_raw().to_vec())
                .collect();
            for cfg in configs() {
                let got: Vec<Vec<u8>> = JsonSki::compile(query)
                    .unwrap()
                    .with_config(cfg)
                    .matches(DOC.as_bytes())
                    .unwrap()
                    .into_iter()
                    .map(|m| m.as_raw().to_vec())
                    .collect();
                assert_eq!(got, reference, "{query} with {cfg:?}");
            }
        }
    }

    #[test]
    fn disabled_groups_record_zero() {
        let q = JsonSki::compile("$.tail.deep[1].z").unwrap().with_config(
            EngineConfig::builder()
                .disable_g1()
                .disable_g4()
                .disable_g5()
                .build(),
        );
        let stats = q.run(DOC.as_bytes(), |_| {}).unwrap();
        assert_eq!(stats.skipped(Group::G1), 0);
        assert_eq!(stats.skipped(Group::G4), 0);
        assert_eq!(stats.skipped(Group::G5), 0);
        // The engine still fast-forwards unmatched values (G2).
        assert!(stats.skipped(Group::G2) > 0);
    }

    #[test]
    fn default_config_uses_all_groups_where_applicable() {
        let q = JsonSki::compile("$.pd[0].cp[1:3].id").unwrap();
        assert_eq!(q.config(), EngineConfig::default());
        let stats = q.run(DOC.as_bytes(), |_| {}).unwrap();
        assert!(stats.skipped(Group::G4) > 0, "{stats}");
        assert!(stats.skipped(Group::G5) > 0, "{stats}");
    }

    fn strict(query: &str) -> JsonSki {
        JsonSki::compile(query)
            .unwrap()
            .with_config(EngineConfig::builder().strict().build())
    }

    fn first_invalid(query: &str, json: &[u8]) -> (usize, crate::InvalidReason) {
        match strict(query).matches(json) {
            Err(StreamError::Invalid { pos, reason }) => (pos, reason),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn strict_accepts_clean_input_with_identical_matches() {
        for query in ["$.pd[*].cp[1:3].id", "$.tail.deep[1].z", "$.pd[*].y"] {
            let permissive: Vec<Vec<u8>> = JsonSki::compile(query)
                .unwrap()
                .matches(DOC.as_bytes())
                .unwrap()
                .into_iter()
                .map(|m| m.as_raw().to_vec())
                .collect();
            let got: Vec<Vec<u8>> = strict(query)
                .matches(DOC.as_bytes())
                .unwrap()
                .into_iter()
                .map(|m| m.as_raw().to_vec())
                .collect();
            assert_eq!(got, permissive, "{query}");
        }
    }

    #[test]
    fn strict_rejects_faults_inside_fast_forwarded_spans() {
        use crate::InvalidReason;
        // The query matches "a", so everything under "skipme" is
        // fast-forwarded (G2) — permissive mode never looks at it.
        let bad_utf8 = b"{\"skipme\": \"x\xFFy\", \"a\": 1}";
        let q = JsonSki::compile("$.a").unwrap();
        assert_eq!(q.matches(bad_utf8).unwrap(), vec![&b"1"[..]]);
        assert_eq!(first_invalid("$.a", bad_utf8), (13, InvalidReason::Utf8));

        let lone = br#"{"skipme": "\uD800", "a": 1}"#;
        assert_eq!(
            first_invalid("$.a", lone),
            (12, InvalidReason::LoneSurrogate)
        );

        let ctl = b"{\"skipme\": \"a\x01b\", \"a\": 1}";
        assert_eq!(first_invalid("$.a", ctl), (13, InvalidReason::ControlChar));

        let bad_esc = br#"{"skipme": "\x", "a": 1}"#;
        assert_eq!(
            first_invalid("$.a", bad_esc),
            (13, InvalidReason::BadEscape)
        );
    }

    #[test]
    fn strict_rejects_trailing_garbage_and_unbalanced() {
        use crate::InvalidReason;
        assert_eq!(
            first_invalid("$.a", br#"{"a": 1}}"#),
            (8, InvalidReason::TrailingGarbage)
        );
        // Counting-based pairing does not distinguish `}` from `]`, so the
        // mismatch shows up as depth 1 at end of input.
        assert_eq!(
            first_invalid("$.a", br#"{"a": [1, 2}"#),
            (12, InvalidReason::Unbalanced)
        );
        // An unterminated string surfaces as the validator's typed verdict,
        // not the structural scan's UnexpectedEof echo.
        let unterminated = br#"{"a": "oops"#;
        assert_eq!(
            first_invalid("$.a", unterminated),
            (unterminated.len(), InvalidReason::UnterminatedString)
        );
    }

    #[test]
    fn strict_validates_bytes_after_the_last_match() {
        use crate::InvalidReason;
        // The match for $.a completes before the fault; only a full-record
        // validation pass can see it.
        // The DFA rejects at the byte that fails the continuation check.
        let json = b"{\"a\": 1, \"later\": \"\xC3(\"}";
        let q = JsonSki::compile("$.a").unwrap();
        assert_eq!(q.matches(json).unwrap(), vec![&b"1"[..]]);
        assert_eq!(first_invalid("$.a", json), (20, InvalidReason::Utf8));
    }

    #[test]
    fn strict_early_stop_skips_remaining_validation() {
        // Break from the sink means "no further input bytes are examined",
        // including by the validator. Validation is word-granular, so the
        // fault must live in a 64-byte word past the early stop.
        let mut json = b"{\"it\": [1, 2], \"pad\": \"".to_vec();
        json.extend(std::iter::repeat_n(b'x', 80));
        json.extend_from_slice(b"\", \"bad\": \"\xFF\"}");
        let outcome = strict("$.it[*]")
            .stream(&json, |_| ControlFlow::Break(()))
            .unwrap();
        assert!(outcome.stopped);
        // Same document without the early stop is rejected.
        assert!(matches!(
            strict("$.it[*]").matches(&json),
            Err(StreamError::Invalid { .. })
        ));
    }

    #[test]
    fn forced_kernels_agree_on_matches() {
        for &k in Kernel::all() {
            if !k.is_supported() {
                continue;
            }
            let q = JsonSki::compile("$.pd[0].cp[1:3].id")
                .unwrap()
                .with_config(EngineConfig::builder().kernel(Some(k)).strict().build());
            let got: Vec<Vec<u8>> = q
                .matches(DOC.as_bytes())
                .unwrap()
                .into_iter()
                .map(|m| m.as_raw().to_vec())
                .collect();
            let reference: Vec<Vec<u8>> = JsonSki::compile("$.pd[0].cp[1:3].id")
                .unwrap()
                .matches(DOC.as_bytes())
                .unwrap()
                .into_iter()
                .map(|m| m.as_raw().to_vec())
                .collect();
            assert_eq!(got, reference, "kernel {k:?}");
        }
    }
}
