//! Multi-query streaming: evaluate several JSONPath queries in **one**
//! pass with shared fast-forwarding.
//!
//! JPStream compiles query *sets* into one automaton; JSONSki's paper
//! evaluates single queries but nothing in its design precludes sharing the
//! stream. [`MultiQuery`] runs one automaton instance per query over a
//! single cursor: a value is skipped (bit-parallel, G2) only when *every*
//! query is unmatched on it, the G4 object-end skip fires only when *every*
//! query has exhausted its possibilities at the current level, and accepted
//! values are emitted per query. The per-value work is O(#queries) state
//! updates; the stream is still classified exactly once.

use std::ops::ControlFlow;

use jsonpath::{ContainerKind, ParsePathError, Path, Runtime, State, Status};

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::evaluate::Match;
use crate::fastforward::{
    go_over_ary, go_over_obj, go_over_primitive, go_to_ary_end, go_to_obj_end, Span,
};
use crate::limits::ResourceLimits;
use crate::stats::{FastForwardStats, Group};
use crate::validate::ValidationMode;
use simdbits::Kernel;

/// A set of compiled queries evaluated together in one streaming pass.
///
/// # Example
///
/// ```
/// use jsonski::MultiQuery;
///
/// let json = br#"{"user": {"id": 7}, "place": {"name": "Manhattan"}}"#;
/// let mq = MultiQuery::compile(&["$.place.name", "$.user.id"])?;
/// let counts = mq.counts(json)?;
/// assert_eq!(counts, vec![1, 1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct MultiQuery {
    paths: Vec<Path>,
    limits: ResourceLimits,
    validation: ValidationMode,
    kernel: Option<Kernel>,
}

impl MultiQuery {
    /// Wraps already-parsed paths.
    pub fn new(paths: Vec<Path>) -> Self {
        MultiQuery {
            paths,
            limits: ResourceLimits::default(),
            validation: ValidationMode::Permissive,
            kernel: None,
        }
    }

    /// Replaces the resource guards (builder-style). Depth and deadline
    /// are enforced during the shared scan exactly as for
    /// [`JsonSki`](crate::JsonSki).
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the input trust level (builder-style); Strict validates every
    /// byte of each record exactly as for [`JsonSki`](crate::JsonSki).
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// Forces a specific bitmap kernel (builder-style); `None` restores
    /// auto-detection.
    pub fn with_kernel(mut self, kernel: Option<Kernel>) -> Self {
        self.kernel = kernel;
        self
    }

    /// The active resource guards.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// The active input trust level.
    pub fn validation(&self) -> ValidationMode {
        self.validation
    }

    /// Compiles a set of JSONPath expressions.
    ///
    /// # Errors
    ///
    /// The first expression that fails to parse.
    pub fn compile(queries: &[&str]) -> Result<Self, ParsePathError> {
        Ok(MultiQuery::new(
            queries
                .iter()
                .map(|q| q.parse())
                .collect::<Result<_, _>>()?,
        ))
    }

    /// The compiled paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Streams one record with early-exit support; `sink(query_index, match)`
    /// fires per match and may return [`ControlFlow::Break`] to stop scanning.
    ///
    /// The [`StreamOutcome`] reports combined match counts across all queries,
    /// whether the sink stopped the scan, and how many input bytes were
    /// consumed (strictly fewer than `input.len()` when a break saved work).
    ///
    /// # Errors
    ///
    /// [`StreamError`] on malformed input discovered on any examined path.
    ///
    /// [`StreamOutcome`]: crate::StreamOutcome
    pub fn stream<'a, F>(
        &self,
        input: &'a [u8],
        sink: F,
    ) -> Result<crate::StreamOutcome, StreamError>
    where
        F: FnMut(usize, Match<'a>) -> ControlFlow<()>,
    {
        let mut ev = MultiEval {
            cur: Cursor::with_options(input, self.kernel, self.validation),
            rts: self.paths.iter().map(Runtime::new).collect(),
            stats: FastForwardStats::new(),
            sink,
            matches: 0,
            depth: 0,
            pending: Vec::new(),
            flush_from: 0,
            max_depth: self.limits.max_depth,
            deadline: self.limits.deadline.map(|d| std::time::Instant::now() + d),
        };
        let stopped = match ev.record() {
            Ok(()) => {
                // Strict mode validates the whole record (see the
                // single-query engine for the rationale and error
                // precedence). No-op in Permissive mode.
                ev.cur.finish_strict()?;
                false
            }
            Err(Abort::Stop) => true,
            Err(Abort::Err(e)) => {
                if let Err(invalid @ StreamError::Invalid { .. }) = ev.cur.finish_strict() {
                    return Err(invalid);
                }
                return Err(e);
            }
        };
        Ok(crate::StreamOutcome {
            matches: ev.matches,
            stopped,
            consumed: ev.cur.pos(),
            words_classified: ev.cur.words_classified(),
            word_cache_hits: ev.cur.word_cache_hits(),
            classify_ns: ev.cur.classify_ns(),
            stats: ev.stats,
        })
    }

    /// Streams one record; `sink(query_index, match)` fires per match.
    ///
    /// # Errors
    ///
    /// [`StreamError`] on malformed input discovered on any examined path.
    pub fn run<'a, F>(&self, input: &'a [u8], mut sink: F) -> Result<FastForwardStats, StreamError>
    where
        F: FnMut(usize, Match<'a>),
    {
        let outcome = self.stream(input, |i, m| {
            sink(i, m);
            ControlFlow::Continue(())
        })?;
        Ok(outcome.stats)
    }

    /// Per-query match counts for one record.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamError`] from [`MultiQuery::run`].
    pub fn counts(&self, input: &[u8]) -> Result<Vec<usize>, StreamError> {
        let mut counts = vec![0usize; self.paths.len()];
        self.run(input, |i, _| counts[i] += 1)?;
        Ok(counts)
    }
}

/// Internal control-flow channel: a real stream error, or an early stop
/// requested by the sink via [`ControlFlow::Break`].
enum Abort {
    Err(StreamError),
    Stop,
}

impl From<StreamError> for Abort {
    fn from(e: StreamError) -> Self {
        Abort::Err(e)
    }
}

/// A deferred match (see the single-query engine's `PendingMatch`): under
/// descendant queries an accepted container must reach the sink before the
/// matches found inside it, but its span completes only after traversal.
/// Entries carry the owning query index; same-span entries emit in query
/// order.
struct PendingMatch {
    idx: usize,
    start: usize,
    end: Option<usize>,
}

struct MultiEval<'a, 'p, F> {
    cur: Cursor<'a>,
    rts: Vec<Runtime<'p>>,
    stats: FastForwardStats,
    sink: F,
    matches: usize,
    depth: usize,
    /// Deferred matches; `flush_from` indexes the first entry not yet
    /// delivered. Empty whenever no descendant container is mid-traversal,
    /// so descendant-free query sets always emit immediately.
    pending: Vec<PendingMatch>,
    flush_from: usize,
    max_depth: usize,
    deadline: Option<std::time::Instant>,
}

impl<'a, F: FnMut(usize, Match<'a>) -> ControlFlow<()>> MultiEval<'a, '_, F> {
    /// Depth/deadline guard, mirroring the single-query engine's.
    fn check_guards(&mut self) -> Result<(), Abort> {
        if self.depth > self.max_depth {
            return Err(Abort::Err(StreamError::TooDeep {
                pos: self.cur.pos(),
            }));
        }
        if let Some(dl) = self.deadline {
            if std::time::Instant::now() >= dl {
                return Err(Abort::Err(StreamError::DeadlineExpired {
                    pos: self.cur.pos(),
                }));
            }
        }
        Ok(())
    }

    /// Emits a completed span, or queues it while an enclosing accepted
    /// container's entry is still open (pre-order: the container first).
    fn emit(&mut self, idx: usize, span: Span) -> Result<(), Abort> {
        if self.flush_from == self.pending.len() {
            self.emit_now(idx, span)
        } else {
            self.pending.push(PendingMatch {
                idx,
                start: span.0,
                end: Some(span.1),
            });
            Ok(())
        }
    }

    fn emit_now(&mut self, idx: usize, span: Span) -> Result<(), Abort> {
        self.matches += 1;
        match (self.sink)(idx, Match::new(0, self.cur.input(), span)) {
            ControlFlow::Continue(()) => Ok(()),
            ControlFlow::Break(()) => Err(Abort::Stop),
        }
    }

    /// Opens a pending entry for query `idx` accepting the container that
    /// starts at `start` and is about to be descended.
    fn open_pending(&mut self, idx: usize, start: usize) {
        self.pending.push(PendingMatch {
            idx,
            start,
            end: None,
        });
    }

    /// Completes the last `opened` open entries with `end` and flushes
    /// every queued match whose span is now known.
    fn close_pending(&mut self, opened: usize, end: usize) -> Result<(), Abort> {
        if opened > 0 {
            let mut left = opened;
            for p in self.pending.iter_mut().rev() {
                if p.end.is_none() {
                    p.end = Some(end);
                    left -= 1;
                    if left == 0 {
                        break;
                    }
                }
            }
            assert_eq!(left, 0, "unbalanced pending-match close");
        }
        while let Some(p) = self.pending.get(self.flush_from) {
            let Some(end) = p.end else { break };
            let (idx, span) = (p.idx, (p.start, end));
            self.flush_from += 1;
            self.emit_now(idx, span)?;
        }
        if self.flush_from == self.pending.len() {
            self.pending.clear();
            self.flush_from = 0;
        }
        Ok(())
    }

    fn record(&mut self) -> Result<(), Abort> {
        self.stats.add_total(self.cur.input().len() as u64);
        self.cur.skip_ws();
        let Some(t) = self.cur.peek() else {
            return Ok(());
        };
        let kind = match t {
            b'{' => ContainerKind::Object,
            b'[' => ContainerKind::Array,
            _ => {
                // Primitive root: only `$` queries match.
                let accepts: Vec<usize> = (0..self.rts.len())
                    .filter(|&i| self.rts[i].path().is_empty())
                    .collect();
                let group = if accepts.is_empty() {
                    Group::G2
                } else {
                    Group::G3
                };
                let span = go_over_primitive(&mut self.cur, &mut self.stats, group)?;
                for i in accepts {
                    self.emit(i, span)?;
                }
                return Ok(());
            }
        };
        let statuses: Vec<Status> = self.rts.iter_mut().map(|rt| rt.enter_root(kind)).collect();
        let any_matched = statuses.contains(&Status::Matched);
        let start = self.cur.pos();
        if any_matched {
            // Pre-order: `$` queries see the whole record before any inner
            // match another query finds during the descent.
            let mut opened = 0usize;
            for (i, &s) in statuses.iter().enumerate() {
                if s == Status::Accept {
                    self.open_pending(i, start);
                    opened += 1;
                }
            }
            self.cur.bump(); // consume the opener
            match kind {
                ContainerKind::Object => self.object()?,
                ContainerKind::Array => self.array()?,
            }
            self.close_pending(opened, self.cur.pos())?;
        } else {
            let any_accept = statuses.contains(&Status::Accept);
            let group = if any_accept { Group::G3 } else { Group::G2 };
            match kind {
                ContainerKind::Object => go_over_obj(&mut self.cur, &mut self.stats, group)?,
                ContainerKind::Array => go_over_ary(&mut self.cur, &mut self.stats, group)?,
            };
            let end = self.cur.pos();
            for (i, &s) in statuses.iter().enumerate() {
                if s == Status::Accept {
                    self.emit(i, (start, end))?;
                }
            }
        }
        for rt in &mut self.rts {
            rt.exit();
        }
        Ok(())
    }

    fn object(&mut self) -> Result<(), Abort> {
        self.depth += 1;
        self.check_guards()?;
        let r = self.object_body();
        self.depth -= 1;
        r
    }

    fn object_body(&mut self) -> Result<(), Abort> {
        // `done[i]`: query `i` cannot match any further attribute of this
        // object. Frames are pruned on entry, so a live state here holds
        // only object-capable positions — dead (UNMATCHED) is exactly
        // "nothing in this object can match". A uniquely-named child match
        // flips the flag below.
        let mut done: Vec<bool> = self.rts.iter().map(Runtime::is_unmatched).collect();
        loop {
            if done.iter().all(|&d| d) {
                // Multi-query G4: nobody can match below this point.
                go_to_obj_end(&mut self.cur, &mut self.stats, Group::G4)?;
                self.cur.expect(b'}', "`}`")?;
                return Ok(());
            }
            let t = self.cur.peek_token("attribute or `}`")?;
            match t {
                b'}' => {
                    self.cur.bump();
                    return Ok(());
                }
                b',' => {
                    self.cur.bump();
                }
                b'"' => {
                    let (ns, ne) = self.cur.read_string()?;
                    self.cur.expect(b':', "`:`")?;
                    let raw = &self.cur.input()[ns..ne];
                    let decisions: Vec<(State, Status)> = self
                        .rts
                        .iter()
                        .map(|rt| rt.value_state_for_key_raw(raw))
                        .collect();
                    self.cur.skip_ws();
                    let vb = self.cur.peek_token("attribute value")?;
                    self.handle_value(vb, &decisions)?;
                    for (i, (_, status)) in decisions.iter().enumerate() {
                        // Per-state G4 legality: every live position must be
                        // a uniquely-named child step for a match here to
                        // preclude later sibling matches.
                        if *status != Status::Unmatched && self.rts[i].legality().g4 {
                            done[i] = true;
                        }
                    }
                }
                other => {
                    return Err(Abort::Err(StreamError::Unexpected {
                        expected: "`\"` (attribute name)",
                        found: other,
                        pos: self.cur.pos(),
                    }))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), Abort> {
        self.depth += 1;
        self.check_guards()?;
        let r = self.array_body();
        self.depth -= 1;
        r
    }

    fn array_body(&mut self) -> Result<(), Abort> {
        // Highest index any query can still select, for the multi-query
        // variant of G5 (skip the array tail once every range is exhausted).
        // `array_upper_bound` conjoins over each query's live position set:
        // `Some(0)` for dead frames, `None` (no skip) under wildcards,
        // filters, or descendants.
        let upper_bounds: Vec<Option<usize>> =
            self.rts.iter().map(Runtime::array_upper_bound).collect();
        let hard_limit: Option<usize> = upper_bounds
            .iter()
            .copied()
            .try_fold(0usize, |acc, ub| ub.map(|h| acc.max(h)));
        loop {
            let t = self.cur.peek_token("element or `]`")?;
            if t == b']' {
                self.cur.bump();
                return Ok(());
            }
            let counter = self.rts[0].counter();
            if let Some(limit) = hard_limit {
                if counter >= limit {
                    go_to_ary_end(&mut self.cur, &mut self.stats, Group::G5)?;
                    self.cur.expect(b']', "`]`")?;
                    return Ok(());
                }
            }
            // Filter predicates are probed against the candidate element's
            // bytes (`peek_token` already skipped to its first byte).
            let input = self.cur.input();
            let pos = self.cur.pos();
            let decisions: Vec<(State, Status)> = self
                .rts
                .iter()
                .map(|rt| {
                    rt.element_state_with(&mut |expr| jsonpath::filter::eval(expr, &input[pos..]))
                })
                .collect();
            self.handle_value(t, &decisions)?;
            let d = self.cur.peek_token("`,` or `]`")?;
            match d {
                b',' => {
                    self.cur.bump();
                    for rt in &mut self.rts {
                        rt.increment();
                    }
                }
                b']' => {
                    self.cur.bump();
                    return Ok(());
                }
                other => {
                    return Err(Abort::Err(StreamError::Unexpected {
                        expected: "`,` or `]`",
                        found: other,
                        pos: self.cur.pos(),
                    }))
                }
            }
        }
    }

    /// Processes one value given every query's decision for it: skips it
    /// bit-parallel when unanimous, descends when any query progresses, and
    /// emits it to every accepting query (in pre-order: a container result
    /// reaches the sink before anything found inside it).
    fn handle_value(&mut self, vb: u8, decisions: &[(State, Status)]) -> Result<(), Abort> {
        let is_container = vb == b'{' || vb == b'[';
        let any_descend = decisions
            .iter()
            .any(|d| matches!(d.1, Status::Matched | Status::AcceptAndDescend));
        let start = self.cur.pos();
        if any_descend && is_container {
            // Accepting queries' spans complete only after the traversal:
            // defer them through the pending queue so they still precede
            // the matches the descent produces.
            let mut opened = 0usize;
            for (i, d) in decisions.iter().enumerate() {
                if matches!(d.1, Status::Accept | Status::AcceptAndDescend) {
                    self.open_pending(i, start);
                    opened += 1;
                }
            }
            self.cur.bump();
            let kind = if vb == b'{' {
                ContainerKind::Object
            } else {
                ContainerKind::Array
            };
            for (i, rt) in self.rts.iter_mut().enumerate() {
                rt.enter(kind, decisions[i].0);
            }
            let r = if vb == b'{' {
                self.object()
            } else {
                self.array()
            };
            for rt in &mut self.rts {
                rt.exit();
            }
            r?;
            self.close_pending(opened, self.cur.pos())
        } else {
            // No query needs the interior (an `AcceptAndDescend` primitive
            // has none): one shared skip, G3 when anyone takes the value.
            let any_accept = decisions
                .iter()
                .any(|d| matches!(d.1, Status::Accept | Status::AcceptAndDescend));
            let group = if any_accept { Group::G3 } else { Group::G2 };
            let span = match vb {
                b'{' => go_over_obj(&mut self.cur, &mut self.stats, group)?,
                b'[' => go_over_ary(&mut self.cur, &mut self.stats, group)?,
                _ => go_over_primitive(&mut self.cur, &mut self.stats, group)?,
            };
            for (i, d) in decisions.iter().enumerate() {
                if matches!(d.1, Status::Accept | Status::AcceptAndDescend) {
                    self.emit(i, span)?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn individual_counts(queries: &[&str], json: &[u8]) -> Vec<usize> {
        queries
            .iter()
            .map(|q| crate::JsonSki::compile(q).unwrap().count(json).unwrap())
            .collect()
    }

    #[test]
    fn agrees_with_individual_runs() {
        let json = br#"{
            "user": {"id": 7, "name": "ann"},
            "place": {"name": "NYC", "tags": [1, 2, 3]},
            "items": [{"x": 1}, {"x": 2}, {"y": 3}]
        }"#;
        let queries = [
            "$.place.name",
            "$.user.id",
            "$.items[*].x",
            "$.items[1:3]",
            "$.missing.path",
            "$",
        ];
        let mq = MultiQuery::compile(&queries).unwrap();
        assert_eq!(mq.counts(json).unwrap(), individual_counts(&queries, json));
    }

    #[test]
    fn emits_to_the_right_query() {
        let json = br#"{"a": 1, "b": "two"}"#;
        let mq = MultiQuery::compile(&["$.b", "$.a"]).unwrap();
        let mut hits: Vec<(usize, Vec<u8>)> = Vec::new();
        mq.run(json, |i, m| hits.push((i, m.bytes().to_vec())))
            .unwrap();
        hits.sort();
        assert_eq!(hits, vec![(0, b"\"two\"".to_vec()), (1, b"1".to_vec())]);
    }

    #[test]
    fn shared_prefix_descends_once() {
        // Both queries descend through `a`; the pass is still single.
        let json = br#"{"a": {"b": 1, "c": 2}, "z": {"b": 9}}"#;
        let mq = MultiQuery::compile(&["$.a.b", "$.a.c"]).unwrap();
        assert_eq!(mq.counts(json).unwrap(), vec![1, 1]);
    }

    #[test]
    fn overlapping_accept_and_descend() {
        // One query accepts `a` itself while the other needs its interior.
        let json = br#"{"a": {"b": 5}}"#;
        let mq = MultiQuery::compile(&["$.a", "$.a.b"]).unwrap();
        let mut got = [Vec::new(), Vec::new()];
        mq.run(json, |i, m| got[i].push(m.bytes().to_vec()))
            .unwrap();
        assert_eq!(got[0], vec![br#"{"b": 5}"#.to_vec()]);
        assert_eq!(got[1], vec![b"5".to_vec()]);
    }

    #[test]
    fn multi_g5_tail_skip_respects_widest_range() {
        let json = br#"{"a": [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]}"#;
        let mq = MultiQuery::compile(&["$.a[1]", "$.a[3:5]"]).unwrap();
        let stats = {
            let mut c = vec![0usize; 2];
            let s = mq.run(json, |i, _| c[i] += 1).unwrap();
            assert_eq!(c, vec![1, 2]);
            s
        };
        // Elements 5..9 are beyond every range: skipped as G5.
        assert!(stats.skipped(Group::G5) > 0, "{stats}");
    }

    #[test]
    fn wildcard_query_disables_g5() {
        let json = br#"[1, 2, 3, 4]"#;
        let mq = MultiQuery::compile(&["$[0]", "$[*]"]).unwrap();
        assert_eq!(mq.counts(json).unwrap(), vec![1, 4]);
    }

    #[test]
    fn all_unmatched_object_is_drained_bit_parallel() {
        let json = br#"{"huge": {"x": [1, 2, {"y": 3}]}, "a": 1}"#;
        let mq = MultiQuery::compile(&["$.a", "$.nope"]).unwrap();
        let stats = mq.run(json, |_, _| {}).unwrap();
        assert!(stats.skipped(Group::G2) > 0, "{stats}");
    }

    #[test]
    fn empty_query_set_is_fine() {
        let mq = MultiQuery::new(vec![]);
        assert!(mq.counts(br#"{"a": 1}"#).unwrap().is_empty());
    }

    #[test]
    fn compile_error_propagates() {
        assert!(MultiQuery::compile(&["$.ok", "$.bad["]).is_err());
    }

    #[test]
    fn descendant_and_filter_queries_share_the_pass() {
        let json = br#"{
            "a": {"name": "x", "b": {"name": "y"}},
            "items": [{"v": 1, "q": 5}, {"v": 2, "q": 9}, {"v": 3}]
        }"#;
        let queries = ["$..name", "$.items[?(@.q > 4)].v", "$.a.name"];
        let mq = MultiQuery::compile(&queries).unwrap();
        assert_eq!(mq.counts(json).unwrap(), individual_counts(&queries, json));
        let mut got: Vec<Vec<Vec<u8>>> = vec![Vec::new(); queries.len()];
        mq.run(json, |i, m| got[i].push(m.bytes().to_vec()))
            .unwrap();
        assert_eq!(got[0], vec![b"\"x\"".to_vec(), b"\"y\"".to_vec()]);
        assert_eq!(got[1], vec![b"1".to_vec(), b"2".to_vec()]);
        assert_eq!(got[2], vec![b"\"x\"".to_vec()]);
    }

    #[test]
    fn overlapping_descendant_emits_pre_order() {
        // `$..a` takes both the outer container and the inner value; the
        // outer (enclosing) match must reach the sink first.
        let json = br#"{"a": {"a": 1}}"#;
        let mq = MultiQuery::compile(&["$..a"]).unwrap();
        let mut got = Vec::new();
        mq.run(json, |_, m| got.push(m.bytes().to_vec())).unwrap();
        assert_eq!(got, vec![br#"{"a": 1}"#.to_vec(), b"1".to_vec()]);
    }

    #[test]
    fn strict_multi_query_rejects_skipped_fault() {
        use crate::{InvalidReason, ValidationMode};
        // Neither query touches "junk"; only strict validation sees it.
        let json = b"{\"junk\": \"\xFF\", \"a\": 1, \"b\": 2}";
        let mq = MultiQuery::compile(&["$.a", "$.b"]).unwrap();
        assert_eq!(mq.counts(json).unwrap(), vec![1, 1]);
        let strict = mq.with_validation(ValidationMode::Strict);
        match strict.counts(json) {
            Err(StreamError::Invalid {
                pos: 10,
                reason: InvalidReason::Utf8,
            }) => {}
            other => panic!("expected Invalid at 10, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_pairs_in_one_pass() {
        // The two TT queries of Table 5 evaluated together.
        let json = br#"[
            {"text": "t1", "en": {"urls": [{"url": "u1"}]}},
            {"text": "t2", "en": {"urls": []}},
            {"text": "t3", "en": {"urls": [{"url": "u2"}, {"url": "u3"}]}}
        ]"#;
        let queries = ["$[*].en.urls[*].url", "$[*].text"];
        let mq = MultiQuery::compile(&queries).unwrap();
        assert_eq!(mq.counts(json).unwrap(), vec![3, 3]);
        assert_eq!(mq.counts(json).unwrap(), individual_counts(&queries, json));
    }
}
