//! Structural intervals (paper Definition 4.1 and Algorithm 3).
//!
//! A *structural interval* for a metacharacter `α` is the span of characters
//! between the current streaming position (inclusive) and the next `α`
//! (exclusive). Within one 64-byte word an interval is just a bitmask, built
//! with the `b_end - b_start` subtraction trick; this module is a faithful
//! word-local transcription of Algorithm 3, and is both used by the
//! fast-forward primitives for primitive-value skipping and exercised by the
//! test-suite as a cross-check of the cursor-level search routines.
//!
//! Intervals that span multiple words are represented by the *absence* of an
//! end bit (the mask extends to the word boundary); callers iterate to the
//! next word, as the paper's Figure 8 illustrates.

use simdbits::bits;

/// A word-local structural interval: a contiguous bitmask starting at the
/// streaming position within the word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    mask: u64,
    /// Whether the interval's terminating metacharacter lies in this word.
    closed: bool,
}

impl Interval {
    /// The interval's bitmask (1s over the interval's characters).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Whether the terminating metacharacter was found within this word.
    /// An *open* interval continues into the next word (Figure 8's
    /// word-by-word construction).
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Position (bit index) of the terminating metacharacter, i.e. one past
    /// the interval's last character — `intervalEnd` of Algorithm 3 adapted
    /// to LSB-first bitmaps.
    ///
    /// Returns 64 for an open interval (the interval runs to the word end).
    #[inline]
    pub fn end(&self) -> u32 {
        if !self.closed {
            64
        } else if self.mask == 0 {
            // Empty interval: the metacharacter is at the start position.
            // Caller tracks the start; by convention we report 0 here.
            0
        } else {
            64 - self.mask.leading_zeros()
        }
    }
}

/// Builds the interval for metacharacter bitmap `bitmap` from bit position
/// `pos` within the word — Algorithm 3, `buildInterval` (lines 2–9).
///
/// `bitmap` must already have in-string pseudo-metacharacters removed
/// (lines 16–20 of the paper's algorithm; [`simdbits::Classifier`] does
/// this).
///
/// ```
/// use jsonski::interval::build_interval;
/// // colons at bits 3 and 9, streaming position 1
/// let iv = build_interval(0b10_0000_1000, 1);
/// assert!(iv.is_closed());
/// assert_eq!(iv.mask(), 0b110); // bits 1,2 — up to but excluding bit 3
/// assert_eq!(iv.end(), 3);
/// ```
#[inline]
pub fn build_interval(bitmap: u64, pos: u32) -> Interval {
    let b_start = 1u64 << pos; // mask start position (line 4)
    let mask_start = b_start ^ b_start.wrapping_sub(1); // bits up to start, inclusive (line 5)
    let bitmap = bitmap & !mask_start; // reset bits up to start (line 6)
    let b_end = bits::lowest(bitmap); // mask end position (line 7)
    Interval {
        mask: bits::span(b_start, b_end), // line 8
        closed: b_end != 0,
    }
}

/// Builds the interval between the first two metacharacter occurrences in
/// `bitmap`, consuming the first — Algorithm 3, `nextInterval`
/// (lines 24–30). Returns `None` when the bitmap has no occurrence left.
///
/// ```
/// use jsonski::interval::next_interval;
/// let mut bm = 0b0100_0100u64; // metachars at bits 2 and 6
/// let iv = next_interval(&mut bm).unwrap();
/// assert_eq!(iv.mask(), 0b0011_1100); // bits 2..=5
/// assert_eq!(iv.end(), 6);
/// assert!(next_interval(&mut bm).unwrap().end() == 64); // open-ended
/// assert!(next_interval(&mut bm).is_none());
/// ```
#[inline]
pub fn next_interval(bitmap: &mut u64) -> Option<Interval> {
    let b_start = bits::lowest(*bitmap); // rightmost 1 (line 26)
    if b_start == 0 {
        return None;
    }
    *bitmap = bits::clear_lowest(*bitmap); // remove it (line 27)
    let b_end = bits::lowest(*bitmap); // rightmost 1 again (line 28)
    Some(Interval {
        mask: bits::span(b_start, b_end), // line 29
        closed: b_end != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_interval_at_zero() {
        let iv = build_interval(0b1000, 0);
        assert_eq!(iv.mask(), 0b0111);
        assert_eq!(iv.end(), 3);
        assert!(iv.is_closed());
    }

    #[test]
    fn build_interval_start_on_metachar_looks_strictly_ahead() {
        // Algorithm 3 clears bits up to and *including* the start position,
        // so a metacharacter at `pos` itself does not terminate the
        // interval — the next one does.
        let iv = build_interval(0b0101, 0);
        assert_eq!(iv.mask(), 0b011);
        assert_eq!(iv.end(), 2);
        assert!(iv.is_closed());
    }

    #[test]
    fn build_interval_open_when_no_metachar() {
        let iv = build_interval(0, 5);
        assert!(!iv.is_closed());
        assert_eq!(iv.mask(), u64::MAX << 5);
        assert_eq!(iv.end(), 64);
    }

    #[test]
    fn build_interval_ignores_bits_below_pos() {
        let iv = build_interval(0b1_0001, 2);
        assert!(iv.is_closed());
        assert_eq!(iv.end(), 4);
        assert_eq!(iv.mask(), 0b1100); // bits 2..=3
    }

    #[test]
    fn next_interval_walks_all_occurrences() {
        let mut bm = 0b1001_0010u64;
        let ends: Vec<u32> =
            std::iter::from_fn(|| next_interval(&mut bm).map(|iv| iv.end())).collect();
        assert_eq!(ends, vec![4, 7, 64]);
    }

    #[test]
    fn interval_with_only_start_metachar_is_open() {
        let iv = build_interval(0b1, 0);
        assert!(!iv.is_closed());
        assert_eq!(iv.end(), 64);
    }
}
