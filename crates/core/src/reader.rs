//! Bounded-memory streaming from any [`std::io::Read`] source.
//!
//! The paper notes that the streaming engines' "memory consumption is
//! actually configurable by adjusting the input buffer size". This module
//! delivers that: [`ChunkedRecords`] pulls bytes from a reader into a
//! recycled buffer, locates record boundaries incrementally (with the same
//! bit-parallel counting pairing the engine uses), and hands out one
//! complete record at a time. Peak memory is `max(buffer_size, largest
//! record)` — independent of the stream length.
//!
//! # Degraded input
//!
//! Real sources fail in ways a well-formed-NDJSON benchmark never does, and
//! the reader confronts each deliberately:
//!
//! * **Transient I/O errors** — [`ErrorKind::Interrupted`] is always
//!   retried (per POSIX it means "nothing happened"); `WouldBlock` and
//!   `TimedOut` are retried up to a configurable [`RetryPolicy`] budget
//!   with linear backoff before propagating.
//! * **Resource limits** — a [`ResourceLimits`] attached with
//!   [`ChunkedRecords::limits`] caps the size of one record and of the
//!   reader's buffer, turning a never-closing record into a typed
//!   [`ReadRecordError::Limit`] instead of unbounded memory growth.
//! * **Resynchronization** — after any record-level error the caller may
//!   invoke [`ChunkedRecords::resync`] to skip forward to the next
//!   newline-delimited record boundary and keep consuming the stream,
//!   receiving the global byte span that was given up on.
//!
//! [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted

use std::io::{ErrorKind, Read};
use std::sync::Arc;
use std::time::Duration;

use crate::cancel::CancellationToken;
use crate::error::StreamError;
use crate::limits::{LimitExceeded, ResourceLimits};
use crate::metrics::Metrics;
use crate::records::{find_newline, RecordSplitter};

/// Default initial buffer capacity (64 KiB).
pub const DEFAULT_BUFFER: usize = 64 * 1024;

/// Retry budget for transient I/O errors (`WouldBlock`, `TimedOut`).
///
/// [`ErrorKind::Interrupted`] is *always* retried regardless of this policy
/// — POSIX semantics guarantee no bytes were transferred — and does not
/// consume the budget. The default policy retries nothing else.
///
/// [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a transient error may be retried before propagating.
    pub max_retries: u32,
    /// Base sleep between retries; attempt `n` sleeps `n × backoff`
    /// (linear backoff). `Duration::ZERO` (the default) never sleeps.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No transient-error retries (`Interrupted` is still always retried).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Retries transient errors up to `max_retries` times, no backoff.
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
        }
    }

    /// Sets the base backoff between retries (builder-style).
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Error from chunked streaming: I/O, JSON structure, or a resource limit.
#[derive(Debug)]
pub enum ReadRecordError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A record is structurally malformed (e.g. never closes by stream end).
    Stream(StreamError),
    /// A record tripped a [`ResourceLimits`] guard.
    Limit(LimitExceeded),
}

impl std::fmt::Display for ReadRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadRecordError::Io(e) => write!(f, "i/o error: {e}"),
            ReadRecordError::Stream(e) => write!(f, "stream error: {e}"),
            ReadRecordError::Limit(e) => write!(f, "resource limit exceeded: {e}"),
        }
    }
}

impl std::error::Error for ReadRecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadRecordError::Io(e) => Some(e),
            ReadRecordError::Stream(e) => Some(e),
            ReadRecordError::Limit(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadRecordError {
    fn from(e: std::io::Error) -> Self {
        ReadRecordError::Io(e)
    }
}

impl From<StreamError> for ReadRecordError {
    fn from(e: StreamError) -> Self {
        ReadRecordError::Stream(e)
    }
}

impl From<LimitExceeded> for ReadRecordError {
    fn from(e: LimitExceeded) -> Self {
        ReadRecordError::Limit(e)
    }
}

/// Pulls complete JSON records out of a reader with bounded memory.
///
/// # Example
///
/// ```
/// use jsonski::{ChunkedRecords, JsonSki};
///
/// let source: &[u8] = b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n";
/// let query = JsonSki::compile("$.a")?;
/// let mut hits = 0;
/// let mut records = ChunkedRecords::with_buffer_size(source, 16); // tiny buffer
/// while let Some(record) = records.next_record()? {
///     hits += query.count(record)?;
/// }
/// assert_eq!(hits, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ChunkedRecords<R> {
    source: R,
    buf: Vec<u8>,
    /// Bytes `0..filled` of `buf` are valid stream data.
    filled: usize,
    /// Bytes `0..consumed` have already been handed out as records.
    consumed: usize,
    chunk: usize,
    eof: bool,
    /// Global stream offset of `buf[0]` (bytes discarded before the
    /// buffer's current contents), for resync span reporting.
    base: u64,
    limits: ResourceLimits,
    retry: RetryPolicy,
    metrics: Option<Arc<Metrics>>,
    cancel: Option<CancellationToken>,
    /// Buffer-coordinate span of a complete record that was rejected by a
    /// limit; [`resync`](Self::resync) skips exactly these bytes.
    pending_skip: Option<(usize, usize)>,
}

impl<R: Read> ChunkedRecords<R> {
    /// Streams records from `source` with the default buffer size.
    pub fn new(source: R) -> Self {
        Self::with_buffer_size(source, DEFAULT_BUFFER)
    }

    /// Streams records with a caller-chosen refill granularity. The buffer
    /// still grows transiently when a single record exceeds it (up to
    /// [`ResourceLimits::max_buffer_bytes`]).
    pub fn with_buffer_size(source: R, chunk: usize) -> Self {
        ChunkedRecords {
            source,
            buf: Vec::new(),
            filled: 0,
            consumed: 0,
            chunk: chunk.max(16),
            eof: false,
            base: 0,
            limits: ResourceLimits::default(),
            retry: RetryPolicy::default(),
            metrics: None,
            cancel: None,
            pending_skip: None,
        }
    }

    /// Declares that the stream does not start at byte 0: `base` is the
    /// global offset of the reader's first byte (builder-style). Used when
    /// resuming from a checkpoint, so resync spans and
    /// [`consumed_offset`](Self::consumed_offset) keep reporting
    /// whole-stream coordinates.
    pub fn start_offset(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Attaches a cooperative cancellation token (builder-style): when it
    /// trips, [`next_record`](Self::next_record) reports a clean end of
    /// stream at the next record boundary instead of reading further.
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The global stream offset just past the last byte handed out (as a
    /// record or a resynchronized span): the offset a checkpoint can
    /// safely restart from.
    pub fn consumed_offset(&self) -> u64 {
        self.base + self.consumed as u64
    }

    /// Sets the resource limits enforced while reading (builder-style).
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the transient-I/O retry policy (builder-style).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a metrics registry; the reader records I/O retries and
    /// truncated final records. (Resynchronization is recorded by whoever
    /// drives [`resync`](Self::resync) — e.g. [`Pipeline`](crate::Pipeline)
    /// — so the counts are not doubled.)
    pub fn metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Returns the next complete record, or `None` at end of stream.
    ///
    /// The returned slice borrows the internal buffer and is valid until the
    /// next call (a lending iterator, hence no `Iterator` impl).
    ///
    /// # Errors
    ///
    /// [`ReadRecordError`] on I/O failure, an unterminated final record, or
    /// a record that trips a [`ResourceLimits`] guard. Record-level errors
    /// are sticky until [`resync`](Self::resync) is called; I/O errors are
    /// not recoverable.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, ReadRecordError> {
        if self
            .cancel
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            // A cancelled reader looks like a cleanly ended stream: the
            // bytes up to `consumed_offset` were fully handed out, nothing
            // after them was touched.
            return Ok(None);
        }
        loop {
            // Try to find one complete record in the unconsumed region.
            if let Some(span) = self.try_parse_one()? {
                let (s, e) = span;
                if e - s > self.limits.max_record_bytes {
                    // The record is complete, so resync can skip it
                    // precisely rather than hunting for a newline.
                    self.pending_skip = Some((s, e));
                    return Err(LimitExceeded::RecordBytes {
                        len: e - s,
                        limit: self.limits.max_record_bytes,
                    }
                    .into());
                }
                self.consumed = e;
                return Ok(Some(&self.buf[s..e]));
            }
            if self.eof {
                // No record found and nothing more to read: either clean end
                // (only whitespace left) or an unterminated record, which
                // try_parse_one already diagnosed.
                return Ok(None);
            }
            // A record still open after this many buffered bytes can never
            // be accepted; reject it before buffering more of it.
            let pending = self.filled - self.consumed;
            if pending > self.limits.max_record_bytes {
                return Err(LimitExceeded::RecordBytes {
                    len: pending,
                    limit: self.limits.max_record_bytes,
                }
                .into());
            }
            self.refill()?;
        }
    }

    /// Skips forward to the next record boundary after an error, returning
    /// the global byte span `(start, end)` that was abandoned, or `None`
    /// when the stream is exhausted with nothing to skip.
    ///
    /// A limit-rejected *complete* record is skipped precisely. Otherwise
    /// the reader discards buffered data while scanning for the next raw
    /// `\n` (a sound boundary for newline-delimited streams, since an
    /// unescaped newline cannot occur inside a valid JSON string), so
    /// memory stays bounded even while skipping an arbitrarily long broken
    /// record.
    ///
    /// # Errors
    ///
    /// Only I/O errors: resynchronization itself cannot hit record-level
    /// errors.
    pub fn resync(&mut self) -> Result<Option<(u64, u64)>, ReadRecordError> {
        if let Some((s, e)) = self.pending_skip.take() {
            let span = (self.base + s as u64, self.base + e as u64);
            self.consumed = e;
            return Ok(Some(span));
        }
        // Step over separator whitespace first, so the scan anchors at the
        // broken record itself — otherwise the newline that *ended the
        // previous record* would satisfy the search and no progress would
        // be made.
        loop {
            while self.consumed < self.filled
                && matches!(self.buf[self.consumed], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.consumed += 1;
            }
            if self.consumed < self.filled || self.eof {
                break;
            }
            self.refill()?;
        }
        let start = self.base + self.consumed as u64;
        loop {
            let tail = &self.buf[self.consumed..self.filled];
            if let Some(i) = find_newline(tail) {
                self.consumed += i + 1;
                let end = self.base + self.consumed as u64;
                return Ok((end > start).then_some((start, end)));
            }
            // No newline buffered: everything here belongs to the broken
            // region. Drop it outright so skipping stays bounded-memory.
            self.base += self.filled as u64;
            self.filled = 0;
            self.consumed = 0;
            if self.eof {
                let end = self.base;
                return Ok((end > start).then_some((start, end)));
            }
            self.refill()?;
        }
    }

    /// Attempts to split one record out of `buf[consumed..filled]`.
    /// `Ok(None)` means "need more data" (or clean end at EOF).
    fn try_parse_one(&mut self) -> Result<Option<(usize, usize)>, ReadRecordError> {
        // The splitter runs on the unconsumed tail; spans are offset back
        // into buffer coordinates.
        let tail = &self.buf[self.consumed..self.filled];
        let mut tail_splitter = RecordSplitter::new(tail);
        match tail_splitter.next() {
            None => Ok(None), // only whitespace (or empty)
            Some(Ok((s, e))) => {
                // A record that touches the end of the buffered data might
                // continue in the unread part of the stream (e.g. the number
                // `12` could be a prefix of `123`). Only containers and
                // strings are self-delimiting; refill and retry otherwise.
                if e == tail.len() && !self.eof && !matches!(tail[s], b'{' | b'[' | b'"') {
                    return Ok(None);
                }
                Ok(Some((self.consumed + s, self.consumed + e)))
            }
            Some(Err(err)) => {
                if self.eof {
                    // Truly unterminated: the stream ended mid-record.
                    if let Some(m) = &self.metrics {
                        m.record_truncated_record();
                    }
                    Err(err.into())
                } else {
                    Ok(None) // record continues past the buffered bytes
                }
            }
        }
    }

    /// Reads more bytes, first compacting consumed data to the front.
    fn refill(&mut self) -> Result<(), ReadRecordError> {
        if self.consumed > 0 {
            self.buf.copy_within(self.consumed..self.filled, 0);
            self.filled -= self.consumed;
            self.base += self.consumed as u64;
            self.consumed = 0;
        }
        if self.buf.len() < self.filled + self.chunk {
            let needed = self.filled + self.chunk;
            if needed > self.limits.max_buffer_bytes {
                return Err(LimitExceeded::BufferBytes {
                    needed,
                    limit: self.limits.max_buffer_bytes,
                }
                .into());
            }
            self.buf.resize(needed, 0);
        }
        let n = self.read_with_retry()?;
        if n == 0 {
            self.eof = true;
        }
        self.filled += n;
        Ok(())
    }

    /// One `read` into the free tail of the buffer, absorbing transient
    /// errors: `Interrupted` unconditionally, `WouldBlock`/`TimedOut` up to
    /// the [`RetryPolicy`] budget with linear backoff.
    fn read_with_retry(&mut self) -> Result<usize, std::io::Error> {
        let mut attempts = 0u32;
        loop {
            match self.source.read(&mut self.buf[self.filled..]) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == ErrorKind::Interrupted => {
                    if let Some(m) = &self.metrics {
                        m.record_io_retry();
                    }
                }
                Err(e)
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                        && attempts < self.retry.max_retries =>
                {
                    attempts += 1;
                    if let Some(m) = &self.metrics {
                        m.record_io_retry();
                    }
                    if !self.retry.backoff.is_zero() {
                        std::thread::sleep(self.retry.backoff * attempts);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Current buffer capacity (for memory accounting in tests/benches).
    pub fn buffer_capacity(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyReader};

    fn collect_records(input: &[u8], chunk: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut r = ChunkedRecords::with_buffer_size(input, chunk);
        while let Some(rec) = r.next_record().unwrap() {
            out.push(rec.to_vec());
        }
        out
    }

    #[test]
    fn small_buffer_still_finds_all_records() {
        let mut input = Vec::new();
        let mut expected = Vec::new();
        for i in 0..40 {
            let rec = format!("{{\"i\": {i}, \"pad\": [\"{}\", {i}]}}", "x".repeat(i));
            expected.push(rec.clone().into_bytes());
            input.extend_from_slice(rec.as_bytes());
            input.push(b'\n');
        }
        for chunk in [16, 17, 64, 1 << 20] {
            assert_eq!(collect_records(&input, chunk), expected, "chunk {chunk}");
        }
    }

    #[test]
    fn record_larger_than_buffer_grows_transiently() {
        let big = format!("{{\"k\": \"{}\"}}", "y".repeat(5000));
        let input = format!("{big}\n{{\"a\": 1}}\n");
        let got = collect_records(input.as_bytes(), 32);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], big.as_bytes());
        assert_eq!(got[1], br#"{"a": 1}"#);
    }

    #[test]
    fn trailing_number_is_not_truncated() {
        // `123` must not be emitted as `12` when the buffer boundary falls
        // mid-number.
        let input = b"1 22 333 4444";
        let got = collect_records(input, 2);
        assert_eq!(
            got,
            vec![
                b"1".to_vec(),
                b"22".to_vec(),
                b"333".to_vec(),
                b"4444".to_vec()
            ]
        );
    }

    #[test]
    fn strings_spanning_refills() {
        let s = format!("\"{}\" \"b\"", "a".repeat(100));
        let got = collect_records(s.as_bytes(), 8);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], b"\"b\"");
    }

    #[test]
    fn unterminated_final_record_errors() {
        let mut r = ChunkedRecords::with_buffer_size(&br#"{"a": 1} {"b": "#[..], 8);
        assert!(r.next_record().unwrap().is_some());
        assert!(matches!(r.next_record(), Err(ReadRecordError::Stream(_))));
    }

    #[test]
    fn empty_and_blank_streams() {
        assert!(collect_records(b"", 16).is_empty());
        assert!(collect_records(b"  \n \t ", 16).is_empty());
    }

    #[test]
    fn agrees_with_in_memory_splitter_on_generated_data() {
        // Differential check against the all-in-memory splitter.
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(
                format!("{{\"id\": {i}, \"vals\": [{i}, {{\"s\": \"x{{y\"}}]}}\n").as_bytes(),
            );
        }
        let spans = crate::split_records(&input).unwrap();
        let expected: Vec<Vec<u8>> = spans.iter().map(|&(s, e)| input[s..e].to_vec()).collect();
        assert_eq!(collect_records(&input, 37), expected);
    }

    #[test]
    fn error_types_are_displayable() {
        let e = ReadRecordError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        let e = ReadRecordError::Stream(StreamError::Unbalanced { pos: 3 });
        assert!(e.to_string().contains("3"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ReadRecordError::Limit(LimitExceeded::RecordBytes { len: 9, limit: 4 });
        assert!(e.to_string().contains("max_record_bytes"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn oversized_complete_record_is_rejected_then_skipped_precisely() {
        let input = b"{\"a\": 1}\n{\"pad\": \"xxxxxxxxxxxxxxxxxxxxxxxx\"}\n{\"a\": 2}\n";
        let mut r = ChunkedRecords::with_buffer_size(&input[..], 1 << 12)
            .limits(ResourceLimits::default().max_record_bytes(16));
        assert_eq!(r.next_record().unwrap().unwrap(), b"{\"a\": 1}");
        let err = r.next_record().unwrap_err();
        assert!(
            matches!(
                err,
                ReadRecordError::Limit(LimitExceeded::RecordBytes { len: 35, limit: 16 })
            ),
            "{err}"
        );
        let span = r.resync().unwrap().unwrap();
        assert_eq!(&input[span.0 as usize..span.1 as usize], &input[9..44]);
        assert_eq!(r.next_record().unwrap().unwrap(), b"{\"a\": 2}");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn never_closing_record_hits_cap_with_bounded_memory() {
        // A record that never closes, followed by a good one: the reader
        // must reject it once the cap is hit, then resync past it without
        // its buffer ever holding the whole broken record.
        let mut input = b"{\"open\": [".to_vec();
        for i in 0..3000 {
            input.extend_from_slice(format!("{i}, ").as_bytes());
        }
        input.extend_from_slice(b"\n{\"a\": 7}\n");
        let mut r = ChunkedRecords::with_buffer_size(&input[..], 64)
            .limits(ResourceLimits::default().max_record_bytes(512));
        let err = r.next_record().unwrap_err();
        assert!(matches!(
            err,
            ReadRecordError::Limit(LimitExceeded::RecordBytes { .. })
        ));
        let span = r.resync().unwrap().unwrap();
        assert_eq!(span.0, 0);
        assert!(r.buffer_capacity() < 2048, "buffer must stay bounded");
        assert_eq!(r.next_record().unwrap().unwrap(), b"{\"a\": 7}");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn buffer_cap_rejects_instead_of_growing() {
        let big = format!("{{\"k\": \"{}\"}}", "y".repeat(500));
        let mut r = ChunkedRecords::with_buffer_size(big.as_bytes(), 64)
            .limits(ResourceLimits::default().max_buffer_bytes(128));
        let err = r.next_record().unwrap_err();
        assert!(matches!(
            err,
            ReadRecordError::Limit(LimitExceeded::BufferBytes { .. })
        ));
        assert!(r.buffer_capacity() <= 128);
    }

    #[test]
    fn resync_spans_use_global_offsets() {
        // Two broken records far enough apart that the buffer is compacted
        // between them: spans must still be stream-global.
        let mut input = Vec::new();
        for i in 0..50 {
            input.extend_from_slice(format!("{{\"i\": {i}}}\n").as_bytes());
        }
        let bad_at = input.len();
        input.extend_from_slice(b"{\"bad\": \n");
        input.extend_from_slice(b"{\"a\": 1}\n");
        let mut r = ChunkedRecords::with_buffer_size(&input[..], 16)
            .limits(ResourceLimits::default().max_record_bytes(64));
        let mut good = 0;
        let mut spans = Vec::new();
        loop {
            match r.next_record() {
                Ok(Some(_)) => good += 1,
                Ok(None) => break,
                Err(_) => spans.push(r.resync().unwrap().unwrap()),
            }
        }
        assert_eq!(good, 51);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0], (bad_at as u64, bad_at as u64 + 9));
    }

    #[test]
    fn interrupted_reads_are_always_retried() {
        let mut input = Vec::new();
        for i in 0..20 {
            input.extend_from_slice(format!("{{\"a\": {i}}}\n").as_bytes());
        }
        let plan = FaultPlan::new(7).interrupt_every(3).short_reads(5);
        let metrics = Arc::new(Metrics::new());
        let mut r = ChunkedRecords::with_buffer_size(FaultyReader::new(&input[..], plan), 32)
            .metrics(Arc::clone(&metrics));
        let mut n = 0;
        while r.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 20);
        assert!(metrics.snapshot().io_retries > 0);
    }

    #[test]
    fn transient_errors_respect_the_retry_budget() {
        let input = b"{\"a\": 1}\n{\"a\": 2}\n";
        // Infinitely many WouldBlocks, no budget: propagate.
        let plan = FaultPlan::new(1).would_block_every(1);
        let mut r = ChunkedRecords::with_buffer_size(FaultyReader::new(&input[..], plan), 32);
        assert!(matches!(r.next_record(), Err(ReadRecordError::Io(_))));
        // Every other attempt blocks, budget of 1 retry per read: succeeds.
        let plan = FaultPlan::new(1).would_block_every(2);
        let mut r = ChunkedRecords::with_buffer_size(FaultyReader::new(&input[..], plan), 32)
            .retry(RetryPolicy::new(1));
        let mut n = 0;
        while r.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn truncated_final_record_is_counted_and_resyncable() {
        let input = b"{\"a\": 1}\n{\"b\": ";
        let metrics = Arc::new(Metrics::new());
        let mut r = ChunkedRecords::with_buffer_size(&input[..], 8).metrics(Arc::clone(&metrics));
        assert!(r.next_record().unwrap().is_some());
        assert!(matches!(r.next_record(), Err(ReadRecordError::Stream(_))));
        assert_eq!(metrics.snapshot().truncated_records, 1);
        let span = r.resync().unwrap().unwrap();
        assert_eq!(span, (9, input.len() as u64));
        assert!(r.next_record().unwrap().is_none());
        // Nothing left: a further resync has nothing to skip.
        assert!(r.resync().unwrap().is_none());
    }
}
