//! Bounded-memory streaming from any [`std::io::Read`] source.
//!
//! The paper notes that the streaming engines' "memory consumption is
//! actually configurable by adjusting the input buffer size". This module
//! delivers that: [`ChunkedRecords`] pulls bytes from a reader into a
//! recycled buffer, locates record boundaries incrementally (with the same
//! bit-parallel counting pairing the engine uses), and hands out one
//! complete record at a time. Peak memory is `max(buffer_size, largest
//! record)` — independent of the stream length.

use std::io::Read;

use crate::error::StreamError;
use crate::records::RecordSplitter;

/// Default initial buffer capacity (64 KiB).
pub const DEFAULT_BUFFER: usize = 64 * 1024;

/// Error from chunked streaming: I/O or JSON structure.
#[derive(Debug)]
pub enum ReadRecordError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A record is structurally malformed (e.g. never closes by stream end).
    Stream(StreamError),
}

impl std::fmt::Display for ReadRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadRecordError::Io(e) => write!(f, "i/o error: {e}"),
            ReadRecordError::Stream(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for ReadRecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadRecordError::Io(e) => Some(e),
            ReadRecordError::Stream(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadRecordError {
    fn from(e: std::io::Error) -> Self {
        ReadRecordError::Io(e)
    }
}

impl From<StreamError> for ReadRecordError {
    fn from(e: StreamError) -> Self {
        ReadRecordError::Stream(e)
    }
}

/// Pulls complete JSON records out of a reader with bounded memory.
///
/// # Example
///
/// ```
/// use jsonski::{ChunkedRecords, JsonSki};
///
/// let source: &[u8] = b"{\"a\": 1}\n{\"a\": 2}\n{\"b\": 3}\n";
/// let query = JsonSki::compile("$.a")?;
/// let mut hits = 0;
/// let mut records = ChunkedRecords::with_buffer_size(source, 16); // tiny buffer
/// while let Some(record) = records.next_record()? {
///     hits += query.count(record)?;
/// }
/// assert_eq!(hits, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ChunkedRecords<R> {
    source: R,
    buf: Vec<u8>,
    /// Bytes `0..filled` of `buf` are valid stream data.
    filled: usize,
    /// Bytes `0..consumed` have already been handed out as records.
    consumed: usize,
    chunk: usize,
    eof: bool,
}

impl<R: Read> ChunkedRecords<R> {
    /// Streams records from `source` with the default buffer size.
    pub fn new(source: R) -> Self {
        Self::with_buffer_size(source, DEFAULT_BUFFER)
    }

    /// Streams records with a caller-chosen refill granularity. The buffer
    /// still grows transiently when a single record exceeds it.
    pub fn with_buffer_size(source: R, chunk: usize) -> Self {
        ChunkedRecords {
            source,
            buf: Vec::new(),
            filled: 0,
            consumed: 0,
            chunk: chunk.max(16),
            eof: false,
        }
    }

    /// Returns the next complete record, or `None` at end of stream.
    ///
    /// The returned slice borrows the internal buffer and is valid until the
    /// next call (a lending iterator, hence no `Iterator` impl).
    ///
    /// # Errors
    ///
    /// [`ReadRecordError`] on I/O failure or an unterminated final record.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, ReadRecordError> {
        loop {
            // Try to find one complete record in the unconsumed region.
            if let Some(span) = self.try_parse_one()? {
                let (s, e) = span;
                self.consumed = e;
                return Ok(Some(&self.buf[s..e]));
            }
            if self.eof {
                // No record found and nothing more to read: either clean end
                // (only whitespace left) or an unterminated record, which
                // try_parse_one already diagnosed.
                return Ok(None);
            }
            self.refill()?;
        }
    }

    /// Attempts to split one record out of `buf[consumed..filled]`.
    /// `Ok(None)` means "need more data" (or clean end at EOF).
    fn try_parse_one(&mut self) -> Result<Option<(usize, usize)>, ReadRecordError> {
        // The splitter runs on the unconsumed tail; spans are offset back
        // into buffer coordinates.
        let tail = &self.buf[self.consumed..self.filled];
        let mut tail_splitter = RecordSplitter::new(tail);
        match tail_splitter.next() {
            None => Ok(None), // only whitespace (or empty)
            Some(Ok((s, e))) => {
                // A record that touches the end of the buffered data might
                // continue in the unread part of the stream (e.g. the number
                // `12` could be a prefix of `123`). Only containers and
                // strings are self-delimiting; refill and retry otherwise.
                if e == tail.len() && !self.eof && !matches!(tail[s], b'{' | b'[' | b'"') {
                    return Ok(None);
                }
                Ok(Some((self.consumed + s, self.consumed + e)))
            }
            Some(Err(err)) => {
                if self.eof {
                    Err(err.into()) // truly unterminated
                } else {
                    Ok(None) // record continues past the buffered bytes
                }
            }
        }
    }

    /// Reads more bytes, first compacting consumed data to the front.
    fn refill(&mut self) -> Result<(), ReadRecordError> {
        if self.consumed > 0 {
            self.buf.copy_within(self.consumed..self.filled, 0);
            self.filled -= self.consumed;
            self.consumed = 0;
        }
        if self.buf.len() < self.filled + self.chunk {
            self.buf.resize(self.filled + self.chunk, 0);
        }
        let n = self.source.read(&mut self.buf[self.filled..])?;
        if n == 0 {
            self.eof = true;
        }
        self.filled += n;
        Ok(())
    }

    /// Current buffer capacity (for memory accounting in tests/benches).
    pub fn buffer_capacity(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_records(input: &[u8], chunk: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut r = ChunkedRecords::with_buffer_size(input, chunk);
        while let Some(rec) = r.next_record().unwrap() {
            out.push(rec.to_vec());
        }
        out
    }

    #[test]
    fn small_buffer_still_finds_all_records() {
        let mut input = Vec::new();
        let mut expected = Vec::new();
        for i in 0..40 {
            let rec = format!("{{\"i\": {i}, \"pad\": [\"{}\", {i}]}}", "x".repeat(i));
            expected.push(rec.clone().into_bytes());
            input.extend_from_slice(rec.as_bytes());
            input.push(b'\n');
        }
        for chunk in [16, 17, 64, 1 << 20] {
            assert_eq!(collect_records(&input, chunk), expected, "chunk {chunk}");
        }
    }

    #[test]
    fn record_larger_than_buffer_grows_transiently() {
        let big = format!("{{\"k\": \"{}\"}}", "y".repeat(5000));
        let input = format!("{big}\n{{\"a\": 1}}\n");
        let got = collect_records(input.as_bytes(), 32);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], big.as_bytes());
        assert_eq!(got[1], br#"{"a": 1}"#);
    }

    #[test]
    fn trailing_number_is_not_truncated() {
        // `123` must not be emitted as `12` when the buffer boundary falls
        // mid-number.
        let input = b"1 22 333 4444";
        let got = collect_records(input, 2);
        assert_eq!(
            got,
            vec![
                b"1".to_vec(),
                b"22".to_vec(),
                b"333".to_vec(),
                b"4444".to_vec()
            ]
        );
    }

    #[test]
    fn strings_spanning_refills() {
        let s = format!("\"{}\" \"b\"", "a".repeat(100));
        let got = collect_records(s.as_bytes(), 8);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], b"\"b\"");
    }

    #[test]
    fn unterminated_final_record_errors() {
        let mut r = ChunkedRecords::with_buffer_size(&br#"{"a": 1} {"b": "#[..], 8);
        assert!(r.next_record().unwrap().is_some());
        assert!(matches!(r.next_record(), Err(ReadRecordError::Stream(_))));
    }

    #[test]
    fn empty_and_blank_streams() {
        assert!(collect_records(b"", 16).is_empty());
        assert!(collect_records(b"  \n \t ", 16).is_empty());
    }

    #[test]
    fn agrees_with_in_memory_splitter_on_generated_data() {
        // Differential check against the all-in-memory splitter.
        let mut input = Vec::new();
        for i in 0..200 {
            input.extend_from_slice(
                format!("{{\"id\": {i}, \"vals\": [{i}, {{\"s\": \"x{{y\"}}]}}\n").as_bytes(),
            );
        }
        let spans = crate::split_records(&input).unwrap();
        let expected: Vec<Vec<u8>> = spans.iter().map(|&(s, e)| input[s..e].to_vec()).collect();
        assert_eq!(collect_records(&input, 37), expected);
    }

    #[test]
    fn error_types_are_displayable() {
        let e = ReadRecordError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        let e = ReadRecordError::Stream(StreamError::Unbalanced { pos: 3 });
        assert!(e.to_string().contains("3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
