//! The unified sink-based evaluation API shared by every engine.
//!
//! The paper evaluates five systems (Table 2) that differ wildly in *how*
//! they locate matches — streaming with fast-forwarding, detailed streaming,
//! DOM trees, tapes, leveled bitmap indexes — but they all answer the same
//! question: *which byte spans of this record match the query?* This module
//! captures that contract once:
//!
//! * [`Match`] — one delivered match: record ordinal, normalized byte span,
//!   and a zero-copy [`LazyValue`](crate::LazyValue) handle over the record
//!   buffer. Construction goes through [`Match::new`], the single
//!   span-normalization point, so all five engines emit identical spans.
//! * [`MatchSink`] — a visitor receiving matches (and per-record errors) with
//!   [`ControlFlow`]-based early exit: return [`ControlFlow::Break`] from
//!   [`MatchSink::on_match`] and the engine stops scanning. For streaming
//!   engines the stop is *real* — bytes after the breaking match are never
//!   examined (see [`StreamOutcome::consumed`]).
//! * [`Evaluate`] — one record in, matches out through a sink, with a typed
//!   [`RecordOutcome`]. Implemented by all five engine crates.
//! * [`EngineError`] / [`ErrorPolicy`] — typed errors and the skip-or-fail
//!   decision for multi-record streams (see [`Pipeline`]).
//!
//! [`StreamOutcome::consumed`]: crate::StreamOutcome::consumed
//! [`Pipeline`]: crate::Pipeline

use std::error::Error;
use std::fmt;
use std::ops::ControlFlow;

use crate::error::StreamError;
use crate::limits::{LimitExceeded, ResourceLimits};

/// Typed error from evaluating or transporting a record.
#[derive(Debug)]
pub enum EngineError {
    /// The record is structurally malformed (streaming engines).
    Stream(StreamError),
    /// The record source failed to produce bytes.
    Io(std::io::Error),
    /// The record violated a configured [`ResourceLimits`] cap (size,
    /// depth, buffer, or deadline). Limit rejections respect
    /// [`ErrorPolicy`] like any other per-record failure.
    Limit(LimitExceeded),
    /// An engine-specific failure (preprocessing engines report parse
    /// errors here, tagged with the engine's display name).
    Engine {
        /// The reporting engine's display name.
        engine: &'static str,
        /// Human-readable description of the failure.
        message: String,
    },
    /// Evaluating the record panicked. [`Evaluate::evaluate`] promises not
    /// to panic, but a production pipeline cannot stake the whole run on
    /// that promise: the [`Pipeline`](crate::Pipeline) catches the unwind
    /// and reports it as this ordinary per-record failure, subject to
    /// [`ErrorPolicy`] like any other.
    Panic {
        /// Zero-based ordinal of the record whose evaluation panicked.
        record_idx: u64,
        /// The panic payload, when it was a string (the common
        /// `panic!("…")` case); a placeholder otherwise.
        payload: String,
    },
    /// Strict validation ([`ValidationMode::Strict`](crate::ValidationMode))
    /// rejected the record. Reported uniformly by all engines — the
    /// streaming engines detect it mid-skip, the preprocessing engines via
    /// a pre-pass — with the byte offset of the first violation.
    Invalid {
        /// Byte offset (within the record) of the first invalid byte.
        offset: usize,
        /// Which well-formedness rule was violated.
        reason: crate::InvalidReason,
    },
}

impl EngineError {
    /// Whether a record-skipping policy can recover from this error by
    /// resynchronizing at the next record boundary. I/O errors cannot —
    /// the byte stream itself is gone.
    pub fn is_resyncable(&self) -> bool {
        !matches!(self, EngineError::Io(_))
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stream(e) => write!(f, "stream error: {e}"),
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Limit(e) => write!(f, "resource limit exceeded: {e}"),
            EngineError::Engine { engine, message } => {
                write!(f, "{engine}: {message}")
            }
            EngineError::Panic {
                record_idx,
                payload,
            } => {
                write!(f, "evaluation panicked on record {record_idx}: {payload}")
            }
            EngineError::Invalid { offset, reason } => {
                write!(f, "strict validation failed at byte {offset}: {reason}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Stream(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Limit(e) => Some(e),
            EngineError::Engine { .. }
            | EngineError::Panic { .. }
            | EngineError::Invalid { .. } => None,
        }
    }
}

/// Renders a caught panic payload for [`EngineError::Panic`]: the string
/// itself for `&str`/`String` payloads (the `panic!` macro produces
/// these), a placeholder for anything else.
pub(crate) fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Classifies a [`StreamError`] against the limits that produced it:
/// depth/deadline violations become typed [`EngineError::Limit`]s, the
/// rest stay structural.
pub(crate) fn classify_stream_error(e: StreamError, limits: &ResourceLimits) -> EngineError {
    match e {
        StreamError::TooDeep { pos } => EngineError::Limit(LimitExceeded::Depth {
            pos,
            limit: limits.max_depth,
        }),
        StreamError::DeadlineExpired { .. } => EngineError::Limit(LimitExceeded::Deadline {
            limit: limits.deadline.unwrap_or_default(),
        }),
        StreamError::Invalid { pos, reason } => EngineError::Invalid {
            offset: pos,
            reason,
        },
        e => EngineError::Stream(e),
    }
}

impl From<StreamError> for EngineError {
    fn from(e: StreamError) -> Self {
        EngineError::Stream(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<crate::reader::ReadRecordError> for EngineError {
    fn from(e: crate::reader::ReadRecordError) -> Self {
        match e {
            crate::reader::ReadRecordError::Io(e) => EngineError::Io(e),
            crate::reader::ReadRecordError::Stream(e) => EngineError::Stream(e),
            crate::reader::ReadRecordError::Limit(e) => EngineError::Limit(e),
        }
    }
}

impl From<LimitExceeded> for EngineError {
    fn from(e: LimitExceeded) -> Self {
        EngineError::Limit(e)
    }
}

/// What happened to one record.
#[derive(Debug)]
pub enum RecordOutcome {
    /// The record was fully evaluated; `matches` spans were delivered.
    Complete {
        /// Number of matches delivered to the sink.
        matches: usize,
    },
    /// The sink returned [`ControlFlow::Break`]; scanning stopped early.
    /// `matches` *includes* the match the sink broke on.
    Stopped {
        /// Number of matches delivered, including the breaking one.
        matches: usize,
    },
    /// The record could not be evaluated.
    Failed(EngineError),
}

impl RecordOutcome {
    /// Matches delivered before the outcome, `0` for failures.
    pub fn matches(&self) -> usize {
        match self {
            RecordOutcome::Complete { matches } | RecordOutcome::Stopped { matches } => *matches,
            RecordOutcome::Failed(_) => 0,
        }
    }

    /// Whether the record failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, RecordOutcome::Failed(_))
    }
}

/// What to do when a record in a multi-record stream fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Abort the whole run on the first failed record (in record order).
    #[default]
    FailFast,
    /// Report the failure to [`MatchSink::on_record_error`] and continue
    /// with the next record.
    SkipMalformed,
}

/// One delivered match: which record it came from, its byte span within
/// that record, and zero-copy access to the matched bytes.
///
/// Every engine constructs matches through [`Match::new`], which normalizes
/// the span (clamped to the record, JSON whitespace trimmed from both
/// ends) — the single point that guarantees all five engines emit
/// byte-identical spans for the same value.
///
/// The lifetime `'a` borrows the record buffer: a `Match` is a `Copy`
/// handle, valid for as long as the record bytes it points into.
#[derive(Clone, Copy, Debug)]
pub struct Match<'a> {
    record_idx: u64,
    record: &'a [u8],
    span: (usize, usize),
}

impl<'a> Match<'a> {
    /// Builds a match from a record buffer and a value span, normalizing
    /// the span.
    pub fn new(record_idx: u64, record: &'a [u8], span: (usize, usize)) -> Self {
        Match {
            record_idx,
            record,
            span: crate::lazy::normalize_span(record, span),
        }
    }

    /// Builds a match from a byte slice borrowed out of `record`,
    /// recovering the span from the slice's position. Engines that
    /// natively produce `&[u8]` matches use this to adapt; a slice that is
    /// not derived from `record` becomes a match over the slice itself.
    pub fn from_slice(record_idx: u64, record: &'a [u8], bytes: &'a [u8]) -> Self {
        let offset = (bytes.as_ptr() as usize).wrapping_sub(record.as_ptr() as usize);
        if offset <= record.len() && offset + bytes.len() <= record.len() {
            Match::new(record_idx, record, (offset, offset + bytes.len()))
        } else {
            Match::new(record_idx, bytes, (0, bytes.len()))
        }
    }

    /// Zero-based ordinal of the record within the stream (always `0` for
    /// single-record evaluation).
    pub fn record_idx(&self) -> u64 {
        self.record_idx
    }

    /// The whole record buffer the match borrows from.
    pub fn record(&self) -> &'a [u8] {
        self.record
    }

    /// The match's normalized byte span within [`record`](Self::record).
    pub fn span(&self) -> (usize, usize) {
        self.span
    }

    /// The matched bytes, zero-copy.
    pub fn bytes(&self) -> &'a [u8] {
        &self.record[self.span.0..self.span.1]
    }

    /// A lazy handle over the matched value for on-demand typed decoding
    /// (see [`LazyValue`](crate::LazyValue)).
    pub fn value(&self) -> crate::LazyValue<'a> {
        crate::LazyValue::new(self.record, self.span)
    }

    /// The same match restamped with a different record ordinal (used by
    /// [`Evaluate`] adapters layering stream indices onto single-record
    /// engines).
    #[must_use]
    pub fn with_record_idx(self, record_idx: u64) -> Self {
        Match { record_idx, ..self }
    }
}

/// Visitor receiving matches as they are found.
///
/// [`Match::record_idx`] carries the zero-based ordinal of the record
/// within the stream (always `0` for single-record evaluation). Returning
/// [`ControlFlow::Break`] stops the scan — for a single record the engine
/// stops examining bytes; for a [`Pipeline`] the whole stream stops.
///
/// [`Pipeline`]: crate::Pipeline
pub trait MatchSink {
    /// Called for each match, with a borrowed [`Match`] handle.
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()>;

    /// Called when a record fails under [`ErrorPolicy::SkipMalformed`]
    /// (under [`ErrorPolicy::FailFast`] the error aborts the run instead).
    /// Returning [`ControlFlow::Break`] stops the stream. The default
    /// implementation continues.
    fn on_record_error(&mut self, record_idx: u64, error: &EngineError) -> ControlFlow<()> {
        let _ = (record_idx, error);
        ControlFlow::Continue(())
    }

    /// Called when the record *source* could not delimit a record and the
    /// stream resynchronized at the next record boundary (only under
    /// [`ErrorPolicy::SkipMalformed`]). `span` is the skipped byte range in
    /// stream coordinates (`start..end`); `error` is what broke the
    /// record. Returning [`ControlFlow::Break`] stops the stream. The
    /// default implementation continues.
    fn on_resync(&mut self, span: (u64, u64), error: &EngineError) -> ControlFlow<()> {
        let _ = (span, error);
        ControlFlow::Continue(())
    }

    /// Called by a checkpointing [`Pipeline`] from the in-order merge with
    /// the summary of everything delivered so far, and once more when the
    /// run ends cleanly. Because the call sits behind the merge point, the
    /// summary never claims work the sink has not already received —
    /// persisting it (and flushing any buffered output first) makes the
    /// run resumable. The default implementation does nothing.
    ///
    /// # Errors
    ///
    /// An [`EngineError`] aborts the run: a checkpoint that cannot be
    /// persisted is an operational failure, not a per-record one.
    ///
    /// [`Pipeline`]: crate::Pipeline
    fn on_checkpoint(&mut self, summary: &crate::PipelineSummary) -> Result<(), EngineError> {
        let _ = summary;
        Ok(())
    }
}

/// Adapts a closure `FnMut(Match<'_>) -> ControlFlow<()>` into a
/// [`MatchSink`] (record errors use the default continue behaviour).
pub struct FnSink<F>(F);

impl<F: FnMut(Match<'_>) -> ControlFlow<()>> FnSink<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        FnSink(f)
    }
}

impl<F: FnMut(Match<'_>) -> ControlFlow<()>> MatchSink for FnSink<F> {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        (self.0)(m)
    }
}

/// Adapts a closure with the pre-[`Match`] byte-slice signature
/// `FnMut(record_idx, bytes) -> ControlFlow<()>` into a [`MatchSink`].
///
/// This is the compatibility shim for callers written against the old
/// `on_match(record_idx, bytes)` delivery; see MIGRATION.md. New code
/// should use [`FnSink`] and take the [`Match`] handle — it carries the
/// span and the lazy typed accessors the byte slice cannot.
#[deprecated(
    since = "0.1.0",
    note = "use `FnSink`, which receives a `Match<'_>` handle (see MIGRATION.md)"
)]
pub struct ByteFnSink<F>(F);

#[allow(deprecated)]
impl<F: FnMut(u64, &[u8]) -> ControlFlow<()>> ByteFnSink<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        ByteFnSink(f)
    }
}

#[allow(deprecated)]
impl<F: FnMut(u64, &[u8]) -> ControlFlow<()>> MatchSink for ByteFnSink<F> {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        (self.0)(m.record_idx(), m.bytes())
    }
}

/// A sink that counts matches and never stops.
#[derive(Debug, Default)]
pub struct CountSink {
    /// Matches seen so far.
    pub matches: usize,
}

impl MatchSink for CountSink {
    fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
        self.matches += 1;
        ControlFlow::Continue(())
    }
}

/// One record in, matches out: the contract shared by all five engines.
///
/// Implementations are `Sync` so one engine value can serve all workers of a
/// [`Pipeline`]. For the preprocessing engines (DOM, tape, leveled index)
/// [`Evaluate::evaluate`] includes the preprocessing work, as in the paper's
/// measurements.
///
/// [`Pipeline`]: crate::Pipeline
pub trait Evaluate: Sync {
    /// The engine's display name (matching the paper's, e.g. `"JSONSki"`).
    fn name(&self) -> &'static str;

    /// Evaluates one record, delivering match spans to `sink`.
    ///
    /// Never panics on malformed input: failures are returned as
    /// [`RecordOutcome::Failed`].
    fn evaluate(&self, record: &[u8], record_idx: u64, sink: &mut dyn MatchSink) -> RecordOutcome;

    /// Evaluates one record while recording observability counters into
    /// `metrics` (the evaluated-side counters only — delivery accounting
    /// belongs to whoever owns the sink, e.g. the [`Pipeline`] merge).
    ///
    /// The default implementation wraps [`Evaluate::evaluate`] with the
    /// byte-level counters every engine shares — records, bytes, matches
    /// and total evaluation time — so all five engines report *comparable*
    /// numbers. Engines override it to add engine-specific detail: JSONSki
    /// contributes per-group fast-forward bytes and bitmap-word counts,
    /// the preprocessing engines split structure-building from traversal
    /// time.
    ///
    /// [`Pipeline`]: crate::Pipeline
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn MatchSink,
        metrics: &crate::Metrics,
    ) -> RecordOutcome {
        let sw = metrics.stopwatch();
        let outcome = self.evaluate(record, record_idx, sink);
        metrics.record_outcome(record.len(), &outcome);
        metrics.add_eval_ns(sw.elapsed_ns());
        outcome
    }

    /// Counts matches in one record (provided on top of
    /// [`Evaluate::evaluate`]).
    ///
    /// # Errors
    ///
    /// The [`EngineError`] of a failed record.
    fn count(&self, record: &[u8]) -> Result<usize, EngineError> {
        let mut sink = CountSink::default();
        match self.evaluate(record, 0, &mut sink) {
            RecordOutcome::Complete { matches } | RecordOutcome::Stopped { matches } => Ok(matches),
            RecordOutcome::Failed(e) => Err(e),
        }
    }
}

impl Evaluate for crate::JsonSki {
    fn name(&self) -> &'static str {
        "JSONSki"
    }

    fn evaluate(&self, record: &[u8], record_idx: u64, sink: &mut dyn MatchSink) -> RecordOutcome {
        let limits = self.config().limits;
        if record.len() > limits.max_record_bytes {
            return RecordOutcome::Failed(EngineError::Limit(LimitExceeded::RecordBytes {
                len: record.len(),
                limit: limits.max_record_bytes,
            }));
        }
        match self.stream(record, |m| sink.on_match(m.with_record_idx(record_idx))) {
            Ok(outcome) if outcome.stopped => RecordOutcome::Stopped {
                matches: outcome.matches,
            },
            Ok(outcome) => RecordOutcome::Complete {
                matches: outcome.matches,
            },
            Err(e) => RecordOutcome::Failed(classify_stream_error(e, &limits)),
        }
    }

    /// JSONSki's override reads the live [`StreamOutcome`] counters:
    /// per-group fast-forward bytes, bitmap words classified and cache
    /// hits, and the bitmap-construction vs. traversal time split. Failed
    /// records contribute nothing to the fast-forward or bitmap counters.
    ///
    /// [`StreamOutcome`]: crate::StreamOutcome
    fn evaluate_metered(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn MatchSink,
        metrics: &crate::Metrics,
    ) -> RecordOutcome {
        if !metrics.is_enabled() {
            return self.evaluate(record, record_idx, sink);
        }
        let limits = self.config().limits;
        if record.len() > limits.max_record_bytes {
            let ro = RecordOutcome::Failed(EngineError::Limit(LimitExceeded::RecordBytes {
                len: record.len(),
                limit: limits.max_record_bytes,
            }));
            metrics.record_limit_rejection();
            metrics.record_outcome(record.len(), &ro);
            return ro;
        }
        let sw = metrics.stopwatch();
        match self.stream(record, |m| sink.on_match(m.with_record_idx(record_idx))) {
            Ok(outcome) => {
                let eval_ns = sw.elapsed_ns();
                metrics.record_fast_forward(&outcome.stats);
                metrics.record_bitmap(outcome.words_classified as u64, outcome.word_cache_hits);
                metrics.add_eval_ns(eval_ns);
                metrics.add_build_ns(outcome.classify_ns);
                metrics.add_traverse_ns(eval_ns.saturating_sub(outcome.classify_ns));
                let ro = if outcome.stopped {
                    RecordOutcome::Stopped {
                        matches: outcome.matches,
                    }
                } else {
                    RecordOutcome::Complete {
                        matches: outcome.matches,
                    }
                };
                metrics.record_outcome(record.len(), &ro);
                ro
            }
            Err(e) => {
                metrics.add_eval_ns(sw.elapsed_ns());
                let ro = RecordOutcome::Failed(classify_stream_error(e, &limits));
                if matches!(ro, RecordOutcome::Failed(EngineError::Limit(_))) {
                    metrics.record_limit_rejection();
                }
                metrics.record_outcome(record.len(), &ro);
                ro
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonSki;

    #[test]
    fn jsonski_implements_evaluate() {
        let engine = JsonSki::compile("$.a").unwrap();
        assert_eq!(Evaluate::name(&engine), "JSONSki");
        assert_eq!(Evaluate::count(&engine, br#"{"a": 1}"#).unwrap(), 1);
        assert_eq!(Evaluate::count(&engine, br#"{"b": 1}"#).unwrap(), 0);
    }

    #[test]
    fn evaluate_reports_stopped_with_breaking_match_counted() {
        let engine = JsonSki::compile("$[*]").unwrap();
        let mut seen = 0usize;
        let mut sink = FnSink::new(|_m: Match<'_>| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        let outcome = engine.evaluate(b"[1, 2, 3, 4]", 0, &mut sink);
        match outcome {
            RecordOutcome::Stopped { matches } => assert_eq!(matches, 2),
            other => panic!("expected Stopped, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_reports_failures_typed() {
        let engine = JsonSki::compile("$.a").unwrap();
        let mut sink = CountSink::default();
        let outcome = engine.evaluate(br#"{"a": [1, 2"#, 0, &mut sink);
        match outcome {
            RecordOutcome::Failed(EngineError::Stream(_)) => {}
            other => panic!("expected Failed(Stream), got {other:?}"),
        }
        assert_eq!(outcome.matches(), 0);
        assert!(outcome.is_failed());
    }

    #[test]
    fn evaluate_metered_records_live_counters() {
        let engine = JsonSki::compile("$.a").unwrap();
        let metrics = crate::Metrics::new();
        let mut sink = CountSink::default();
        let json = br#"{"a": 1, "pad": [1, 2, 3, 4]}"#;
        let outcome = engine.evaluate_metered(json, 0, &mut sink, &metrics);
        assert_eq!(outcome.matches(), 1);
        let s = metrics.snapshot();
        assert_eq!(s.records_evaluated, 1);
        assert_eq!(s.matches_emitted, 1);
        assert_eq!(s.bytes_evaluated, json.len() as u64);
        assert!(s.overall_ff_ratio() > 0.0, "{s}");
        assert!(s.words_classified > 0);
        // Delivery accounting belongs to the sink owner, not the engine.
        assert_eq!(s.records_delivered, 0);
    }

    #[test]
    fn failed_record_contributes_zero_to_ff_and_match_counters() {
        // The failure is only discovered after a partial match (`3` is
        // emitted before the missing `]`); the counters must still report
        // zero matches and zero fast-forwarded bytes for the record.
        let engine = JsonSki::compile("$[*]").unwrap();
        let metrics = crate::Metrics::new();
        let mut sink = CountSink::default();
        let outcome = engine.evaluate_metered(b"[3, 4", 0, &mut sink, &metrics);
        assert!(outcome.is_failed());
        let s = metrics.snapshot();
        assert_eq!(s.matches_emitted, 0);
        assert_eq!(s.records_failed, 1);
        assert_eq!(s.bytes_failed, 5);
        assert_eq!(s.bytes_evaluated, 0);
        assert_eq!(s.ff_skipped.iter().sum::<u64>(), 0);
    }

    #[test]
    fn default_evaluate_metered_counts_comparable_bytes() {
        // Exercise the trait's provided implementation through an engine
        // with no override.
        struct Fixed;
        impl Evaluate for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn evaluate(
                &self,
                _record: &[u8],
                record_idx: u64,
                sink: &mut dyn MatchSink,
            ) -> RecordOutcome {
                let _ = sink.on_match(Match::new(record_idx, b"x", (0, 1)));
                RecordOutcome::Complete { matches: 1 }
            }
        }
        let metrics = crate::Metrics::new();
        let mut sink = CountSink::default();
        Fixed.evaluate_metered(b"0123456789", 0, &mut sink, &metrics);
        let s = metrics.snapshot();
        assert_eq!(s.records_evaluated, 1);
        assert_eq!(s.bytes_evaluated, 10);
        assert_eq!(s.matches_emitted, 1);
        assert_eq!(s.words_classified, 0); // engine-specific, not provided
    }

    #[test]
    fn engine_error_display_and_source() {
        let e = EngineError::Stream(StreamError::Unbalanced { pos: 3 });
        assert!(e.to_string().contains("3"));
        assert!(Error::source(&e).is_some());
        let e = EngineError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        let e = EngineError::Engine {
            engine: "Pison",
            message: "bad".into(),
        };
        assert!(e.to_string().contains("Pison"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn panic_error_renders_and_is_resyncable() {
        let e = EngineError::Panic {
            record_idx: 7,
            payload: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("record 7"));
        assert!(e.to_string().contains("index out of bounds"));
        assert!(Error::source(&e).is_none());
        // A panic poisons one record, not the stream: skipping policies
        // may continue past it.
        assert!(e.is_resyncable());
    }

    #[test]
    fn panic_payload_extraction() {
        let b: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_payload(b.as_ref()), "static str");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_payload(b.as_ref()), "owned");
        let b: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_payload(b.as_ref()), "non-string panic payload");
    }

    #[test]
    fn error_policy_default_is_fail_fast() {
        assert_eq!(ErrorPolicy::default(), ErrorPolicy::FailFast);
    }

    #[test]
    fn invalid_error_is_typed_offset_bearing_and_resyncable() {
        let e = classify_stream_error(
            StreamError::Invalid {
                pos: 17,
                reason: crate::InvalidReason::LoneSurrogate,
            },
            &ResourceLimits::default(),
        );
        match &e {
            EngineError::Invalid { offset, reason } => {
                assert_eq!(*offset, 17);
                assert_eq!(*reason, crate::InvalidReason::LoneSurrogate);
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(e.to_string().contains("byte 17"));
        assert!(e.to_string().contains("surrogate"));
        // One hostile record must not kill a skip-malformed stream.
        assert!(e.is_resyncable());
        assert!(Error::source(&e).is_none());
    }
}
