//! The streaming cursor: a forward-only position over the input plus the
//! bit-parallel word cache.
//!
//! The cursor embodies the paper's streaming discipline (Section 4.1): the
//! input is classified one 64-byte word at a time, in order, and only the
//! *current* word's bitmaps are retained — "an interval bitmap should be
//! constructed after the prior one has been used and destroyed". Fast-forward
//! functions advance the position by scanning words forward; no global index
//! is ever materialized, which is what keeps JSONSki's memory footprint at
//! the input buffer size (Figure 13).

use simdbits::{bits, BlockBitmaps, Classifier, Kernel, BLOCK};

use crate::error::StreamError;
use crate::validate::{ValidationMode, Validator};

/// Forward-only streaming cursor over a JSON byte buffer.
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    cls: Classifier,
    /// Index of the word whose bitmaps are cached in `cur` (valid only when
    /// `classified > 0`; words `0..classified` have passed through the
    /// classifier).
    cur: BlockBitmaps,
    classified: usize,
    /// Strict-mode validator riding the word iterator: every word fed
    /// through [`Cursor::word`] is validated in classification order, so
    /// fast-forwarded spans are checked without a second pass. `None` in
    /// Permissive mode (zero cost on the hot path).
    validator: Option<Validator>,
    /// Pre-built bitmaps covering every word of `input` (one entry per
    /// 64-byte word, from a persistent structural index). When set,
    /// [`Cursor::word`] serves bitmaps from this slice instead of running
    /// the classifier; the strict-mode validator still consumes the actual
    /// input bytes in classification order, so validation verdicts are
    /// byte-identical with or without the prebuilt path.
    prebuilt: Option<&'a [BlockBitmaps]>,
    /// Word requests answered from the cached current word; maintained
    /// only when time-resolved instrumentation is compiled in, so the
    /// default build's hot loop carries no extra work.
    #[cfg(feature = "metrics")]
    cache_hits: u64,
    /// Nanoseconds spent inside the classifier.
    #[cfg(feature = "metrics")]
    classify_ns: u64,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at position 0 (Permissive, auto-selected kernel).
    pub fn new(input: &'a [u8]) -> Self {
        Self::with_options(input, None, ValidationMode::Permissive)
    }

    /// Creates a cursor with an explicit kernel override and validation
    /// mode. `kernel: None` uses the auto-selected kernel (which itself
    /// honors the `JSONSKI_KERNEL` environment variable).
    pub fn with_options(
        input: &'a [u8],
        kernel: Option<Kernel>,
        validation: ValidationMode,
    ) -> Self {
        let cls = match kernel {
            Some(k) => Classifier::with_kernel(k),
            None => Classifier::new(),
        };
        // The validator scans with the same kernel family as the classifier
        // but recomputes its own bitmaps (see `validate`): forcing a kernel
        // forces both, which is what differential verification wants.
        let validator =
            (validation == ValidationMode::Strict).then(|| Validator::new(cls.kernel()));
        Cursor {
            input,
            pos: 0,
            cls,
            cur: BlockBitmaps::default(),
            classified: 0,
            validator,
            prebuilt: None,
            #[cfg(feature = "metrics")]
            cache_hits: 0,
            #[cfg(feature = "metrics")]
            classify_ns: 0,
        }
    }

    /// Creates a cursor whose word bitmaps come from `prebuilt` (one
    /// [`BlockBitmaps`] per 64-byte word of `input`, as produced by a
    /// persistent structural index) instead of the classifier.
    ///
    /// Defensive rather than panicking: when `prebuilt` does not cover
    /// `input` exactly (`prebuilt.len() != input.len().div_ceil(64)`), the
    /// slice is ignored and the cursor classifies normally — a mis-sized
    /// index degrades to the full-classification path, never to a mixed
    /// (and therefore string-state-corrupted) bitmap stream.
    ///
    /// In Strict mode the validator still reads every input byte in word
    /// order (only the metacharacter classification is skipped), so strict
    /// verdicts cannot diverge between the prebuilt and classified paths.
    pub fn with_prebuilt(
        input: &'a [u8],
        prebuilt: &'a [BlockBitmaps],
        kernel: Option<Kernel>,
        validation: ValidationMode,
    ) -> Self {
        let mut cur = Self::with_options(input, kernel, validation);
        if prebuilt.len() == input.len().div_ceil(BLOCK) {
            cur.prebuilt = Some(prebuilt);
        }
        cur
    }

    /// Whether this cursor serves word bitmaps from a prebuilt index.
    #[inline]
    pub fn uses_prebuilt(&self) -> bool {
        self.prebuilt.is_some()
    }

    /// The first strict-validation violation discovered so far, as a typed
    /// error. `None` in Permissive mode or while the classified prefix is
    /// clean.
    #[inline]
    fn poisoned(&self) -> Option<StreamError> {
        self.validator
            .as_ref()
            .and_then(|v| v.error())
            .map(|(pos, reason)| StreamError::Invalid { pos, reason })
    }

    /// Strict-mode end-of-record check: classifies (and thereby validates)
    /// any words evaluation never touched, then applies the end-of-input
    /// rules (unterminated string, truncated UTF-8, unbalanced structure).
    /// No-op in Permissive mode.
    ///
    /// # Errors
    ///
    /// [`StreamError::Invalid`] with the first violation's byte offset.
    pub fn finish_strict(&mut self) -> Result<(), StreamError> {
        if self.validator.is_none() {
            return Ok(());
        }
        let words = self.word_count();
        let mut w = self.classified;
        while w < words && self.poisoned().is_none() {
            self.word(w);
            w += 1;
        }
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        if let Some(v) = self.validator.as_mut() {
            if let Some((pos, reason)) = v.finish() {
                return Err(StreamError::Invalid { pos, reason });
            }
        }
        Ok(())
    }

    /// Number of 64-byte words classified so far (bitmap-construction
    /// effort for this record).
    #[inline]
    pub fn words_classified(&self) -> usize {
        self.classified
    }

    /// Word requests served by the single-word bitmap cache. Always 0
    /// without the `metrics` cargo feature.
    #[inline]
    pub fn word_cache_hits(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.cache_hits
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// Nanoseconds spent classifying words. Always 0 without the
    /// `metrics` cargo feature.
    #[inline]
    pub fn classify_ns(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.classify_ns
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// The underlying input buffer.
    #[inline]
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// Current byte position.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the cursor passed the end of the input.
    #[inline]
    pub fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Moves the position forward (or within the current word).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when moving backwards past the current word
    /// (that would violate the streaming discipline).
    #[inline]
    pub fn set_pos(&mut self, pos: usize) {
        debug_assert!(
            self.classified == 0 || pos >= (self.classified - 1) * BLOCK,
            "cursor rewound before the current word: pos {pos}, classified {}",
            self.classified
        );
        self.pos = pos;
    }

    /// The byte at the current position, if any.
    #[inline]
    pub fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    /// Advances one byte.
    #[inline]
    pub fn bump(&mut self) {
        self.pos += 1;
    }

    /// Skips JSON whitespace.
    #[inline]
    pub fn skip_ws(&mut self) {
        while let Some(b) = self.input.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    /// Skips whitespace, then consumes the expected byte.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unexpected`] / [`StreamError::UnexpectedEof`] when the
    /// next non-whitespace byte is not `byte`.
    #[inline]
    pub fn expect(&mut self, byte: u8, expected: &'static str) -> Result<(), StreamError> {
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        self.skip_ws();
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(StreamError::Unexpected {
                expected,
                found: b,
                pos: self.pos,
            }),
            None => Err(StreamError::UnexpectedEof { expected }),
        }
    }

    /// Skips whitespace and peeks, failing with EOF otherwise.
    #[inline]
    pub fn peek_token(&mut self, expected: &'static str) -> Result<u8, StreamError> {
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        self.skip_ws();
        self.peek().ok_or(StreamError::UnexpectedEof { expected })
    }

    /// Returns the bitmaps for word `idx`, classifying forward as needed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is before the current word (streaming violation) or
    /// past the end of the input.
    #[inline]
    pub fn word(&mut self, idx: usize) -> BlockBitmaps {
        assert!(
            self.classified == 0 || idx + 1 >= self.classified,
            "word {idx} was already discarded (classified through {})",
            self.classified
        );
        #[cfg(feature = "metrics")]
        if idx < self.classified {
            self.cache_hits += 1;
        }
        #[cfg(feature = "metrics")]
        let t0 = (self.classified <= idx).then(std::time::Instant::now);
        while self.classified <= idx {
            let start = self.classified * BLOCK;
            assert!(start < self.input.len(), "word {idx} out of range");
            if start + BLOCK <= self.input.len() {
                // Full word: classify in place, no copy.
                let block: &[u8; BLOCK] = self.input[start..start + BLOCK]
                    .try_into()
                    .expect("exact block");
                self.cur = match self.prebuilt {
                    // `with_prebuilt` guaranteed coverage of every word.
                    Some(pre) => pre[self.classified],
                    None => self.cls.classify(block),
                };
                if let Some(v) = self.validator.as_mut() {
                    v.feed_block(block, BLOCK);
                }
            } else {
                // Short tail: zero-pad once and share the copy between the
                // classifier and the validator (padding NULs are masked by
                // the valid length, so they never read as control bytes).
                let tail = &self.input[start..];
                let mut block = [0u8; BLOCK];
                block[..tail.len()].copy_from_slice(tail);
                self.cur = match self.prebuilt {
                    Some(pre) => pre[self.classified],
                    None => self.cls.classify(&block),
                };
                if let Some(v) = self.validator.as_mut() {
                    v.feed_block(&block, tail.len());
                }
            }
            self.classified += 1;
        }
        #[cfg(feature = "metrics")]
        if let Some(t0) = t0 {
            self.classify_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        self.cur
    }

    /// Number of 64-byte words covering the input.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.input.len().div_ceil(BLOCK)
    }

    /// Finds the next position `>= from` whose bit is set in the bitmap
    /// selected by `sel`, scanning words forward. Returns `None` at EOF.
    #[inline]
    pub fn next_pos_where(
        &mut self,
        from: usize,
        sel: impl Fn(&BlockBitmaps) -> u64,
    ) -> Option<usize> {
        if from >= self.input.len() {
            return None;
        }
        let mut w = from / BLOCK;
        let mut mask = !bits::mask_below((from % BLOCK) as u32);
        let words = self.word_count();
        while w < words {
            let bm = self.word(w);
            let hits = sel(&bm) & mask;
            if hits != 0 {
                return Some(w * BLOCK + hits.trailing_zeros() as usize);
            }
            mask = u64::MAX;
            w += 1;
        }
        None
    }

    /// Advances to the closing quote of the string opening at `open_pos`
    /// (which must hold an unescaped `"`), returning the closing quote's
    /// position. The cursor position is left *at* the closing quote.
    ///
    /// # Errors
    ///
    /// [`StreamError::UnexpectedEof`] if the string never closes.
    pub fn seek_string_end(&mut self, open_pos: usize) -> Result<usize, StreamError> {
        debug_assert_eq!(self.input.get(open_pos), Some(&b'"'));
        let end = self.next_pos_where(open_pos + 1, |b| b.quote);
        // A violation found while classifying forward (strict mode) outranks
        // the EOF this scan would otherwise report.
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        let end = end.ok_or(StreamError::UnexpectedEof {
            expected: "closing `\"`",
        })?;
        self.pos = end;
        Ok(end)
    }

    /// Reads an attribute name or string: expects `"` at the current
    /// position (after whitespace) and returns the name's byte range
    /// (quotes excluded), leaving the cursor after the closing quote.
    ///
    /// # Errors
    ///
    /// Fails when the next token is not a string or the string never closes.
    pub fn read_string(&mut self) -> Result<(usize, usize), StreamError> {
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                let open = self.pos;
                let close = self.seek_string_end(open)?;
                self.pos = close + 1;
                Ok((open + 1, close))
            }
            Some(b) => Err(StreamError::Unexpected {
                expected: "string",
                found: b,
                pos: self.pos,
            }),
            None => Err(StreamError::UnexpectedEof { expected: "string" }),
        }
    }

    /// The counting-based pairing search (paper Theorem 4.3, Algorithm 4):
    /// starting at the current position with `depth` unpaired `open`
    /// characters, advances to the closer that brings the depth to zero and
    /// returns its position. The cursor is left *at* that closer.
    ///
    /// `open`/`close` must be `b'{'`/`b'}'` or `b'['`/`b']'`.
    ///
    /// # Errors
    ///
    /// [`StreamError::Unbalanced`] if the input ends first.
    pub fn seek_container_end(
        &mut self,
        open: u8,
        close: u8,
        depth: u32,
    ) -> Result<usize, StreamError> {
        debug_assert!(depth > 0);
        let from = self.pos;
        if from >= self.input.len() {
            return Err(StreamError::Unbalanced {
                pos: self.input.len(),
            });
        }
        let mut w = from / BLOCK;
        let mut mask = !bits::mask_below((from % BLOCK) as u32);
        let mut depth = depth;
        let words = self.word_count();
        while w < words {
            let bm = self.word(w);
            let opens = bm.structural(open) & mask;
            let closes = bm.structural(close) & mask;
            if let Some(bit) = find_depth_zero(opens, closes, depth) {
                self.pos = w * BLOCK + bit as usize;
                return Ok(self.pos);
            }
            depth = depth + opens.count_ones() - closes.count_ones();
            mask = u64::MAX;
            w += 1;
        }
        // Same precedence as `seek_string_end`: a strict-validation error in
        // the scanned span wins over the bare imbalance report.
        if let Some(e) = self.poisoned() {
            return Err(e);
        }
        Err(StreamError::Unbalanced {
            pos: self.input.len(),
        })
    }
}

/// Finds the first bit position where the running nesting depth (starting at
/// `depth`, +1 per `opens` bit, −1 per `closes` bit, in position order)
/// reaches zero, i.e. the word-local formulation of the paper's
/// counting-based pairing: iterate the closers of the word; the `k`-th
/// closer at position `p` ends the container iff
/// `k == depth + popcount(opens below p)`.
#[inline]
pub(crate) fn find_depth_zero(opens: u64, closes: u64, depth: u32) -> Option<u32> {
    let mut c = closes;
    let mut k = 0u32; // closers seen so far
    while c != 0 {
        let p = c.trailing_zeros();
        k += 1;
        let opens_before = (opens & bits::mask_below(p)).count_ones();
        if k == depth + opens_before {
            return Some(p);
        }
        c &= c - 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_depth_zero_orders_bits() {
        // word: } {   (close before open), depth 1 -> ends at bit 0
        let opens = 0b10;
        let closes = 0b01;
        assert_eq!(find_depth_zero(opens, closes, 1), Some(0));
        // word: { } } , depth 1: bit1 close pairs the bit0 open; bit2 ends.
        let opens = 0b001;
        let closes = 0b110;
        assert_eq!(find_depth_zero(opens, closes, 1), Some(2));
        // depth 2: first close pairs inner, second pairs the outer-of-two.
        assert_eq!(find_depth_zero(0, 0b11, 2), Some(1));
        // not found
        assert_eq!(find_depth_zero(0b1, 0b10, 2), None);
        assert_eq!(find_depth_zero(0, 0, 1), None);
    }

    #[test]
    fn next_pos_where_scans_across_words() {
        let mut v = vec![b' '; 100];
        v[80] = b',';
        let mut cur = Cursor::new(&v);
        assert_eq!(cur.next_pos_where(0, |b| b.comma), Some(80));
        assert_eq!(cur.next_pos_where(81, |b| b.comma), None);
    }

    #[test]
    fn next_pos_where_respects_from_within_word() {
        let v = b",    ,   ".to_vec();
        let mut cur = Cursor::new(&v);
        assert_eq!(cur.next_pos_where(0, |b| b.comma), Some(0));
        assert_eq!(cur.next_pos_where(1, |b| b.comma), Some(5));
        assert_eq!(cur.next_pos_where(6, |b| b.comma), None);
    }

    #[test]
    fn next_pos_where_ignores_string_contents() {
        let v = br#"  "a,b" , "#.to_vec();
        let mut cur = Cursor::new(&v);
        assert_eq!(cur.next_pos_where(0, |b| b.comma), Some(8));
    }

    #[test]
    fn seek_container_end_simple() {
        let v = br#"{"a": {"b": 1}, "c": [2, {"d": 3}]}"#.to_vec();
        let mut cur = Cursor::new(&v);
        cur.set_pos(1); // just after the outer '{'
        let end = cur.seek_container_end(b'{', b'}', 1).unwrap();
        assert_eq!(end, v.len() - 1);
        assert_eq!(v[end], b'}');
    }

    #[test]
    fn seek_container_end_nested_and_strings() {
        let v = br#"{"a": "}}}", "b": {"x": "{"}}   tail"#.to_vec();
        let mut cur = Cursor::new(&v);
        cur.set_pos(1);
        let end = cur.seek_container_end(b'{', b'}', 1).unwrap();
        assert_eq!(v[end], b'}');
        assert_eq!(&v[end + 1..end + 4], b"   ");
    }

    #[test]
    fn seek_container_end_across_words() {
        let mut v = b"{".to_vec();
        for _ in 0..40 {
            v.extend_from_slice(br#""key": {"deep": [1, 2, 3]}, "#);
        }
        v.extend_from_slice(br#""last": 0}"#);
        let mut cur = Cursor::new(&v);
        cur.set_pos(1);
        let end = cur.seek_container_end(b'{', b'}', 1).unwrap();
        assert_eq!(end, v.len() - 1);
    }

    #[test]
    fn seek_container_end_unbalanced_errors() {
        let v = br#"{"a": {"b": 1}"#.to_vec();
        let mut cur = Cursor::new(&v);
        cur.set_pos(1);
        assert_eq!(
            cur.seek_container_end(b'{', b'}', 1),
            Err(StreamError::Unbalanced { pos: v.len() })
        );
    }

    #[test]
    fn brackets_pair_independently_of_braces() {
        let v = br#"[{"a": [1, 2]}, {"b": 3}] ,"#.to_vec();
        let mut cur = Cursor::new(&v);
        cur.set_pos(1);
        let end = cur.seek_container_end(b'[', b']', 1).unwrap();
        assert_eq!(v[end], b']');
        assert_eq!(end, 24);
    }

    #[test]
    fn read_string_returns_span() {
        let v = br#"   "hello" : 1"#.to_vec();
        let mut cur = Cursor::new(&v);
        let (s, e) = cur.read_string().unwrap();
        assert_eq!(&v[s..e], b"hello");
        assert_eq!(cur.pos(), e + 1);
    }

    #[test]
    fn read_string_with_escaped_quote() {
        let v = br#""he\"llo" next"#.to_vec();
        let mut cur = Cursor::new(&v);
        let (s, e) = cur.read_string().unwrap();
        assert_eq!(&v[s..e], br#"he\"llo"#);
    }

    #[test]
    fn read_string_rejects_non_string() {
        let v = b"123".to_vec();
        let mut cur = Cursor::new(&v);
        assert!(matches!(
            cur.read_string(),
            Err(StreamError::Unexpected { .. })
        ));
    }

    #[test]
    fn expect_and_peek_token() {
        let v = b"  { }".to_vec();
        let mut cur = Cursor::new(&v);
        cur.expect(b'{', "`{`").unwrap();
        assert_eq!(cur.peek_token("token").unwrap(), b'}');
        cur.expect(b'}', "`}`").unwrap();
        assert!(cur.expect(b',', "`,`").is_err());
    }

    #[test]
    fn string_state_is_continuous_across_fast_words() {
        // A long string spanning several words; the comma inside it must be
        // masked even when we query a later word first (forcing sequential
        // classification underneath).
        let mut v = b"\"".to_vec();
        v.extend(std::iter::repeat_n(b'x', 70));
        v.extend_from_slice(b",\"");
        v.extend_from_slice(b" , done");
        let mut cur = Cursor::new(&v);
        let p = cur.next_pos_where(0, |b| b.comma).unwrap();
        assert_eq!(v[p], b',');
        assert_eq!(p, 74); // the comma outside the string
    }

    #[test]
    #[should_panic(expected = "discarded")]
    fn rewinding_words_panics() {
        let v = vec![b' '; 300];
        let mut cur = Cursor::new(&v);
        cur.word(3);
        cur.word(1);
    }
}
