//! Strict-mode streaming validation: well-formedness checks over *every*
//! classified word, including the spans fast-forwarding skips.
//!
//! JSONSki's speed comes from not looking at bytes it skips (paper Algs.
//! 4–5), which means a malformed or hostile document can sail through G1–G5
//! undetected. [`ValidationMode::Strict`] closes that blind spot the way
//! simdjson's On-Demand parsing does (Keiser & Lemire, "Validating UTF-8 in
//! less than one instruction per byte" + On-Demand): a streaming validator
//! rides the existing 64-byte word iterator and checks each word as it is
//! classified, so validation costs one extra scan per word instead of a
//! second parse.
//!
//! The validator is deliberately *independent* of the structural
//! [`Classifier`](simdbits::Classifier): it recomputes its own byte-class
//! bitmaps via [`simdbits::scan`], so a classifier bug cannot hide a
//! validation bug (and vice versa — the differential fuzzer exploits this).
//!
//! # What Strict checks (and what it doesn't)
//!
//! Strict rejects, with the byte offset of the first violation:
//! - malformed UTF-8 (overlongs, surrogates, > U+10FFFF, stray or missing
//!   continuation bytes) — bit-parallel ASCII fast path, scalar DFA on
//!   blocks containing non-ASCII bytes;
//! - unescaped control bytes inside strings — bit-parallel;
//! - invalid escapes, malformed `\u` sequences, lone UTF-16 surrogates;
//! - unterminated strings;
//! - trailing garbage after the root value;
//! - unbalanced `{}`/`[]` structure (counting-based, like Theorem 4.3).
//!
//! Strict does **not** tokenize skipped primitives (`truefalse` inside a
//! skipped array is still invisible, exactly as in the paper), and
//! Permissive intentionally checks nothing beyond what evaluation itself
//! touches. See DESIGN.md §9.

use crate::error::InvalidReason;
use simdbits::scan::{scan_block, ScanBitmaps};
use simdbits::{Kernel, StringState, BLOCK};

/// How much well-formedness checking the engine performs on each record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ValidationMode {
    /// The paper's behavior: fast-forwarded spans receive only structural
    /// pairing checks; malformed bytes inside skipped substructures are
    /// not inspected.
    #[default]
    Permissive,
    /// Validate every classified word (UTF-8, strings, escapes, structure,
    /// trailing garbage) while streaming; reject with
    /// [`StreamError::Invalid`](crate::StreamError::Invalid).
    Strict,
}

impl ValidationMode {
    /// Short stable name (used in checkpoint digests and CLI plumbing).
    pub fn as_str(self) -> &'static str {
        match self {
            ValidationMode::Permissive => "permissive",
            ValidationMode::Strict => "strict",
        }
    }
}

/// Pending escape-sequence state inside a string literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Escape {
    /// Not inside an escape.
    None,
    /// Saw `\`, awaiting the escape character.
    Backslash,
    /// Inside `\uXXXX`: digits consumed so far and their accumulated value.
    Hex(u8, u32),
}

/// Where the record stands relative to its single root value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Root {
    /// Only whitespace so far.
    NotSeen,
    /// Root is an object/array; done when depth returns to zero.
    Container,
    /// Root is an unquoted primitive; done at the next whitespace.
    Primitive,
    /// Root is a bare string; done at its closing quote.
    Str,
    /// Root value complete; only whitespace may follow.
    Done,
}

/// Incremental UTF-8 validation state (one code point at a time).
///
/// The lead-byte table is the standard shortest-form automaton: it rejects
/// overlong encodings, UTF-16 surrogates (`ED A0..BF`), and code points
/// above U+10FFFF by constraining the *first* continuation byte's range.
#[derive(Clone, Copy, Debug, Default)]
struct Utf8State {
    /// Continuation bytes still required (0 = between code points).
    need: u8,
    /// Valid range for the next continuation byte.
    lo: u8,
    hi: u8,
}

impl Utf8State {
    /// Feeds one byte; returns `false` on malformed UTF-8.
    #[inline]
    fn step(&mut self, b: u8) -> bool {
        if self.need == 0 {
            let (need, lo, hi) = match b {
                0x00..=0x7F => return true,
                0xC2..=0xDF => (1, 0x80, 0xBF),
                0xE0 => (2, 0xA0, 0xBF),
                0xE1..=0xEC | 0xEE..=0xEF => (2, 0x80, 0xBF),
                0xED => (2, 0x80, 0x9F), // excludes UTF-16 surrogates
                0xF0 => (3, 0x90, 0xBF),
                0xF1..=0xF3 => (3, 0x80, 0xBF),
                0xF4 => (3, 0x80, 0x8F), // excludes > U+10FFFF
                // 0x80..=0xC1: stray continuation or overlong lead;
                // 0xF5..=0xFF: beyond U+10FFFF.
                _ => return false,
            };
            (self.need, self.lo, self.hi) = (need, lo, hi);
            true
        } else if b < self.lo || b > self.hi {
            false
        } else {
            self.need -= 1;
            (self.lo, self.hi) = (0x80, 0xBF);
            true
        }
    }
}

/// Streaming strict validator. Feed 64-byte blocks in classification order
/// via [`Validator::feed_block`]; the first violation freezes the state and
/// is reported by [`Validator::error`] / [`Validator::finish`].
#[derive(Clone, Debug)]
pub struct Validator {
    kernel: Kernel,
    /// Absolute byte offset of the next block to be fed.
    base: usize,
    in_string: bool,
    escape: Escape,
    utf8: Utf8State,
    depth: usize,
    root: Root,
    /// Offset of a high-surrogate escape's `\` awaiting its low partner.
    expect_low: Option<usize>,
    error: Option<(usize, InvalidReason)>,
}

impl Validator {
    /// Fresh validator scanning with the given kernel.
    pub fn new(kernel: Kernel) -> Self {
        Validator {
            kernel,
            base: 0,
            in_string: false,
            escape: Escape::None,
            utf8: Utf8State::default(),
            depth: 0,
            root: Root::NotSeen,
            expect_low: None,
            error: None,
        }
    }

    /// The first violation found so far, as `(byte offset, reason)`.
    pub fn error(&self) -> Option<(usize, InvalidReason)> {
        self.error
    }

    #[inline]
    fn fail(&mut self, pos: usize, reason: InvalidReason) {
        if self.error.is_none() {
            self.error = Some((pos, reason));
        }
    }

    /// Feeds the next block; `valid_len` is the number of real input bytes
    /// (the rest is padding, which carries no data and is skipped).
    pub fn feed_block(&mut self, block: &[u8; BLOCK], valid_len: usize) {
        debug_assert!(valid_len <= BLOCK);
        let start = self.base;
        self.base += valid_len;
        if self.error.is_some() || valid_len == 0 {
            return;
        }
        let bm = scan_block(self.kernel, block);
        let valid = if valid_len == BLOCK {
            u64::MAX
        } else {
            (1u64 << valid_len) - 1
        };
        // Fast path: inside the root container, no escape/UTF-8 state
        // pending, and the block is pure ASCII with no backslashes. Then the
        // string mask is a prefix XOR of the quotes, the control check is one
        // AND, and depth moves by popcounts.
        let fast = self.escape == Escape::None
            && self.utf8.need == 0
            && self.expect_low.is_none()
            && self.root == Root::Container
            && bm.high & valid == 0
            && bm.backslash & valid == 0;
        if fast {
            self.feed_fast(block, &bm, valid, valid_len, start);
        } else {
            self.feed_scalar(&block[..valid_len], start);
        }
    }

    /// Bit-parallel block handler (see `feed_block` for the preconditions).
    fn feed_fast(
        &mut self,
        block: &[u8; BLOCK],
        bm: &ScanBitmaps,
        valid: u64,
        valid_len: usize,
        start: usize,
    ) {
        let mut strings = StringState::with_state(self.in_string, false);
        let (string_mask, _) = strings.step(bm.quote & valid, 0);
        let string_mask = string_mask & valid;
        let bad_controls = bm.control & string_mask;
        if bad_controls != 0 {
            self.fail(
                start + bad_controls.trailing_zeros() as usize,
                InvalidReason::ControlChar,
            );
            return;
        }
        let openers = bm.openers() & !string_mask & valid;
        let closers = bm.closers() & !string_mask & valid;
        let n_close = closers.count_ones() as usize;
        if self.depth > n_close {
            // The depth cannot dip to zero anywhere in this block, so the
            // order of the brackets is irrelevant: popcounts suffice.
            self.depth += openers.count_ones() as usize;
            self.depth -= n_close;
            self.in_string = strings.in_string();
            return;
        }
        // Depth may reach zero mid-block: walk the (sparse) structural bits
        // in order to find where, then hand the remainder to the scalar
        // walker for the trailing-garbage check.
        let mut depth = self.depth;
        let mut bits = openers | closers;
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            let bit = 1u64 << p;
            bits &= bits - 1;
            if openers & bit != 0 {
                depth += 1;
            } else {
                depth -= 1;
                if depth == 0 {
                    self.depth = 0;
                    self.root = Root::Done;
                    self.in_string = false;
                    self.feed_scalar(&block[p + 1..valid_len], start + p + 1);
                    return;
                }
            }
        }
        self.depth = depth;
        self.in_string = strings.in_string();
    }

    /// Byte-at-a-time DFA walk (blocks with escapes, non-ASCII bytes, or
    /// activity outside the root container).
    fn feed_scalar(&mut self, bytes: &[u8], start: usize) {
        for (i, &b) in bytes.iter().enumerate() {
            if self.error.is_some() {
                return;
            }
            self.step_byte(b, start + i);
        }
    }

    #[inline]
    fn step_byte(&mut self, b: u8, pos: usize) {
        // UTF-8 first: it applies uniformly, inside and outside strings.
        if (b >= 0x80 || self.utf8.need > 0) && !self.utf8.step(b) {
            self.fail(pos, InvalidReason::Utf8);
            return;
        }
        if self.in_string {
            self.step_in_string(b, pos);
        } else {
            self.step_structural(b, pos);
        }
    }

    fn step_in_string(&mut self, b: u8, pos: usize) {
        match self.escape {
            Escape::None => {
                if let Some(high_pos) = self.expect_low {
                    // A high surrogate must be chased immediately by `\uDC00`
                    // .. `\uDFFF`; anything but a backslash breaks the pair.
                    if b != b'\\' {
                        self.fail(high_pos, InvalidReason::LoneSurrogate);
                        return;
                    }
                }
                match b {
                    b'\\' => self.escape = Escape::Backslash,
                    b'"' => {
                        self.in_string = false;
                        if self.root == Root::Str && self.depth == 0 {
                            self.root = Root::Done;
                        }
                    }
                    0x00..=0x1F => self.fail(pos, InvalidReason::ControlChar),
                    _ => {}
                }
            }
            Escape::Backslash => match b {
                b'u' => self.escape = Escape::Hex(0, 0),
                b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {
                    if let Some(high_pos) = self.expect_low {
                        self.fail(high_pos, InvalidReason::LoneSurrogate);
                        return;
                    }
                    self.escape = Escape::None;
                }
                _ => self.fail(pos, InvalidReason::BadEscape),
            },
            Escape::Hex(n, acc) => {
                let digit = match b {
                    b'0'..=b'9' => b - b'0',
                    b'a'..=b'f' => b - b'a' + 10,
                    b'A'..=b'F' => b - b'A' + 10,
                    _ => {
                        self.fail(pos, InvalidReason::BadUnicodeEscape);
                        return;
                    }
                };
                let acc = (acc << 4) | u32::from(digit);
                if n + 1 < 4 {
                    self.escape = Escape::Hex(n + 1, acc);
                    return;
                }
                self.escape = Escape::None;
                // `pos` is the 4th hex digit; the escape's `\` is 5 back.
                let escape_start = pos - 5;
                match acc {
                    0xD800..=0xDBFF => {
                        if let Some(high_pos) = self.expect_low {
                            self.fail(high_pos, InvalidReason::LoneSurrogate);
                        } else {
                            self.expect_low = Some(escape_start);
                        }
                    }
                    0xDC00..=0xDFFF => {
                        if self.expect_low.take().is_none() {
                            self.fail(escape_start, InvalidReason::LoneSurrogate);
                        }
                    }
                    _ => {
                        if let Some(high_pos) = self.expect_low {
                            self.fail(high_pos, InvalidReason::LoneSurrogate);
                        }
                    }
                }
            }
        }
    }

    fn step_structural(&mut self, b: u8, pos: usize) {
        let is_ws = matches!(b, b' ' | b'\t' | b'\n' | b'\r');
        match self.root {
            Root::Done => {
                if !is_ws {
                    self.fail(pos, InvalidReason::TrailingGarbage);
                }
            }
            Root::NotSeen => {
                if is_ws {
                    return;
                }
                match b {
                    b'{' | b'[' => {
                        self.root = Root::Container;
                        self.depth = 1;
                    }
                    b'"' => {
                        self.root = Root::Str;
                        self.in_string = true;
                    }
                    b'}' | b']' => self.fail(pos, InvalidReason::Unbalanced),
                    _ => self.root = Root::Primitive,
                }
            }
            Root::Primitive => {
                // Only whitespace ends a bare primitive; token-level validity
                // (`truefalse`, `1.2.3`) is out of Strict's scope.
                if is_ws {
                    self.root = Root::Done;
                } else {
                    match b {
                        b'}' | b']' => self.fail(pos, InvalidReason::Unbalanced),
                        b'{' | b'[' | b'"' | b':' | b',' => {
                            self.fail(pos, InvalidReason::TrailingGarbage)
                        }
                        _ => {}
                    }
                }
            }
            Root::Container => match b {
                b'{' | b'[' => self.depth += 1,
                b'}' | b']' => {
                    self.depth -= 1;
                    if self.depth == 0 {
                        self.root = Root::Done;
                    }
                }
                b'"' => self.in_string = true,
                _ => {}
            },
            // Inside a bare-string root, `step_in_string` handles everything.
            Root::Str => unreachable!("Str root is only active while in_string"),
        }
    }

    /// End-of-record check; returns the first violation, if any, including
    /// truncation-class errors only visible at the end of the input.
    pub fn finish(&mut self) -> Option<(usize, InvalidReason)> {
        if self.error.is_some() {
            return self.error;
        }
        let len = self.base;
        if self.utf8.need > 0 {
            self.fail(len, InvalidReason::Utf8);
        } else if self.in_string || self.escape != Escape::None {
            self.fail(len, InvalidReason::UnterminatedString);
        } else if let Some(high_pos) = self.expect_low {
            self.fail(high_pos, InvalidReason::LoneSurrogate);
        } else if self.depth > 0 {
            self.fail(len, InvalidReason::Unbalanced);
        }
        self.error
    }
}

/// Validates a whole record in one pass (the baseline engines' strict
/// pre-pass). Uses the same state machine and block boundaries as the
/// streaming validator inside JSONSki's cursor, so every engine reports the
/// same first-failure offset.
pub fn validate_record(record: &[u8]) -> Option<(usize, InvalidReason)> {
    validate_record_with(
        record,
        simdbits::forced_kernel().unwrap_or_else(simdbits::best_kernel),
    )
}

/// [`validate_record`] with an explicit kernel (differential tests).
pub fn validate_record_with(record: &[u8], kernel: Kernel) -> Option<(usize, InvalidReason)> {
    let mut v = Validator::new(kernel);
    let mut blocks = simdbits::Blocks::new(record);
    for block in blocks.by_ref() {
        v.feed_block(block, BLOCK);
        if v.error().is_some() {
            return v.error();
        }
    }
    let tail = blocks.remainder();
    if !tail.is_empty() {
        let mut block = [0u8; BLOCK];
        block[..tail.len()].copy_from_slice(tail);
        v.feed_block(&block, tail.len());
    }
    v.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(doc: &[u8]) -> Option<(usize, InvalidReason)> {
        let kernels: Vec<Kernel> = Kernel::all()
            .iter()
            .copied()
            .filter(|k| k.is_supported())
            .collect();
        let reference = validate_record_with(doc, kernels[0]);
        for &k in &kernels[1..] {
            assert_eq!(
                validate_record_with(doc, k),
                reference,
                "kernel {k:?} diverges on {:?}",
                String::from_utf8_lossy(doc)
            );
        }
        reference
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            &br#"{"a": 1, "b": [true, null, "x"]}"#[..],
            br#"  [1, 2, 3]  "#,
            br#""just a string""#,
            br#"42"#,
            br#"true "#,
            b"{}",
            b"",
            b"   ",
            // Direct UTF-8 (2-, 3-, and 4-byte sequences).
            "{\"emoji\": \"\u{1F600}\", \"de\": \"stra\u{00DF}e\"}".as_bytes(),
            // Surrogate *pair* escapes are legal; the raw string keeps the
            // backslashes literal so the validator sees `😀`.
            br#"{"pair": "\uD83D\uDE00", "esc": "\n\t\\\"A", "u": "\u00e9"}"#,
        ] {
            assert_eq!(check(doc), None, "doc {:?}", String::from_utf8_lossy(doc));
        }
    }

    #[test]
    fn rejects_bad_utf8_at_offset() {
        // Stray continuation byte.
        assert_eq!(
            check(b"{\"a\": \"x\xFFy\"}"),
            Some((8, InvalidReason::Utf8))
        );
        // Overlong encoding of '/'.
        assert_eq!(check(b"[\"\xC0\xAF\"]"), Some((2, InvalidReason::Utf8)));
        // UTF-16 surrogate encoded directly (ED A0 80).
        assert_eq!(check(b"[\"\xED\xA0\x80\"]"), Some((3, InvalidReason::Utf8)));
        // Truncated sequence at end of input.
        assert_eq!(check(b"\"\xE2\x82"), Some((3, InvalidReason::Utf8)));
    }

    #[test]
    fn rejects_string_violations() {
        assert_eq!(
            check(b"{\"a\": \"x\x01\"}"),
            Some((8, InvalidReason::ControlChar))
        );
        assert_eq!(
            check(br#"{"a": "b\q"}"#),
            Some((9, InvalidReason::BadEscape))
        );
        assert_eq!(
            check(br#"{"a": "\uZZZZ"}"#),
            Some((9, InvalidReason::BadUnicodeEscape))
        );
        // Lone high surrogate: reported at the escape's backslash.
        assert_eq!(
            check(br#"{"a": "\uD800"}"#),
            Some((7, InvalidReason::LoneSurrogate))
        );
        // Lone low surrogate.
        assert_eq!(
            check(br#"{"a": "\uDC00x"}"#),
            Some((7, InvalidReason::LoneSurrogate))
        );
        // High surrogate followed by a non-surrogate escape.
        assert_eq!(
            check(br#"{"a": "\uD800A"}"#),
            Some((7, InvalidReason::LoneSurrogate))
        );
        assert_eq!(
            check(br#"{"a": "unterminated"#),
            Some((19, InvalidReason::UnterminatedString))
        );
    }

    #[test]
    fn rejects_structural_violations() {
        assert_eq!(
            check(br#"{"a": 1} trailing"#),
            Some((9, InvalidReason::TrailingGarbage))
        );
        assert_eq!(
            check(br#"{"a": 1}}"#),
            Some((8, InvalidReason::TrailingGarbage))
        );
        assert_eq!(check(br#"]"#), Some((0, InvalidReason::Unbalanced)));
        assert_eq!(
            check(br#"{"a": [1, 2}"#),
            // Counting-based pairing: the mismatched `}` still closes the
            // bracket; the imbalance surfaces at end of input.
            Some((12, InvalidReason::Unbalanced))
        );
        assert_eq!(check(br#"{"a": {"#), Some((7, InvalidReason::Unbalanced)));
        assert_eq!(check(b"1 2"), Some((2, InvalidReason::TrailingGarbage)));
    }

    #[test]
    fn fast_and_scalar_paths_agree_across_boundaries() {
        // Shift a document across the 64-byte grid so the same bytes take
        // the fast path at some alignments and split differently at others.
        let core = br#"{"k": ["v", {"n": [1, 2, {"deep": "x"}]}], "t": "y"}"#;
        for pad in 0..130 {
            let mut doc = vec![b' '; pad];
            doc.extend_from_slice(core);
            assert_eq!(check(&doc), None, "pad {pad}");
            // And with an injected control byte, offsets must track the pad.
            let mut bad = doc.clone();
            let in_string = pad + 8; // inside "v"
            bad[in_string] = 0x07;
            assert_eq!(
                check(&bad),
                Some((in_string, InvalidReason::ControlChar)),
                "pad {pad}"
            );
        }
    }

    #[test]
    fn depth_zero_mid_block_hands_off_to_scalar() {
        // Root closes mid-block; garbage after it must still be caught by
        // the fast path's scalar hand-off.
        let mut doc = br#"{"a": [1, 2, 3]}   "#.to_vec();
        doc.extend_from_slice(b"oops");
        let pos = doc.len() - 4;
        assert_eq!(check(&doc), Some((pos, InvalidReason::TrailingGarbage)));
    }

    #[test]
    fn validation_mode_names() {
        assert_eq!(ValidationMode::Permissive.as_str(), "permissive");
        assert_eq!(ValidationMode::Strict.as_str(), "strict");
        assert_eq!(ValidationMode::default(), ValidationMode::Permissive);
    }
}
