//! Engine-wide observability: atomic counters and histograms for the
//! quantities the paper's evaluation is built on.
//!
//! The registry ([`Metrics`]) is zero-dependency and thread-safe: every
//! counter is a saturating [`AtomicU64`], so one registry can be shared by
//! all workers of a [`Pipeline`](crate::Pipeline) without locks. It records
//! three families of measurements:
//!
//! * **Fast-forward accounting** — per-record skipped bytes per group
//!   (G1–G5, the paper's Table 6 / Figure 13 metric) against the bytes
//!   evaluated, fed by the live engine counters rather than recomputed
//!   estimates.
//! * **Bitmap work** — 64-byte words classified, word-cache hits, and (with
//!   the `metrics` cargo feature) bitmap-construction vs. traversal
//!   nanoseconds, the split simdjson-style papers use to attribute time.
//! * **Pipeline health** — queue occupancy, producer backpressure stalls,
//!   worker idle waits, per-worker records/bytes, and skipped-malformed
//!   counts.
//!
//! # Cost model
//!
//! Byte-level counters are always compiled; they cost one relaxed atomic
//! add per record-level event and nothing at all when no registry is
//! attached (every instrumented call site takes an `Option`/runtime-checked
//! registry). Time-resolved instrumentation (clock reads in [`Stopwatch`],
//! per-word classification timing, cache-hit tracking) is additionally
//! gated behind the `metrics` cargo feature so the default build's hot
//! loops contain no clock calls whatsoever.
//!
//! # Snapshots
//!
//! Reading the registry produces a plain-data [`MetricsSnapshot`]; two
//! snapshots [`diff`](MetricsSnapshot::diff) into the activity between
//! them, which is how per-query or per-phase numbers are carved out of a
//! shared registry. Snapshots render as human text ([`fmt::Display`]) or
//! dependency-free JSON ([`MetricsSnapshot::to_json`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::{FastForwardStats, Group};

/// Number of histogram buckets: bucket `0` holds zero-valued samples,
/// bucket `i` (1–14) holds samples in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything at or above `2^14` (clamping, not dropping).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Per-worker counters are kept for the first `MAX_TRACKED_WORKERS`
/// workers; higher worker ordinals fold into the last slot.
pub const MAX_TRACKED_WORKERS: usize = 16;

/// Saturating relaxed add: counters stick at `u64::MAX` instead of
/// wrapping, so long-running registries degrade to "a lot" rather than
/// to garbage.
#[inline]
fn sat_add(counter: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// Log2-bucketed histogram of `u64` samples with saturating counts.
#[derive(Debug, Default)]
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    /// The bucket index for `value` (clamped into the last bucket).
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    #[inline]
    fn observe(&self, value: u64) {
        let _ = self.buckets[Self::bucket_of(value)].fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_add(1)),
        );
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// Point-in-time view of a histogram; plain data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Saturating per-bucket sample counts; see [`HISTOGRAM_BUCKETS`] for
    /// the bucket boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total samples across all buckets (saturating).
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// The activity between an `earlier` snapshot and `self`, bucketwise
    /// (saturating, so a reset registry yields zeros rather than wrapping).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, out) in buckets.iter_mut().enumerate() {
            *out = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot { buckets }
    }

    /// The inclusive lower bound of bucket `i`'s value range.
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    fn to_json(self) -> String {
        let items: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(","))
    }
}

/// Monotonic stopwatch handed out by [`Metrics::stopwatch`]. A no-op
/// (always reads 0 ns) unless the `metrics` cargo feature is enabled *and*
/// the registry is recording, so disabled builds pay no clock calls.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(feature = "metrics")]
    start: Option<std::time::Instant>,
}

impl Stopwatch {
    fn armed(on: bool) -> Self {
        #[cfg(feature = "metrics")]
        {
            Stopwatch {
                start: on.then(std::time::Instant::now),
            }
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = on;
            Stopwatch {}
        }
    }

    /// Nanoseconds since the stopwatch was armed (0 when disarmed).
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.start.map_or(0, |s| {
                u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }
}

/// The engine-wide metrics registry; see the [module docs](self).
///
/// Create one with [`Metrics::new`] (recording) or [`Metrics::disabled`]
/// (every method is a cheap early-out), share it by reference or `Arc`,
/// and read it with [`Metrics::snapshot`].
#[derive(Debug)]
pub struct Metrics {
    enabled: bool,

    // --- evaluated side (work performed by engines) ---
    records_evaluated: AtomicU64,
    records_stopped: AtomicU64,
    records_failed: AtomicU64,
    matches_emitted: AtomicU64,
    bytes_evaluated: AtomicU64,
    bytes_failed: AtomicU64,
    ff_skipped: [AtomicU64; 5],
    words_classified: AtomicU64,
    word_cache_hits: AtomicU64,
    eval_ns: AtomicU64,
    build_ns: AtomicU64,
    traverse_ns: AtomicU64,
    record_bytes: AtomicHistogram,

    // --- delivered side (what the caller's sink observed, in order) ---
    records_delivered: AtomicU64,
    matches_delivered: AtomicU64,
    bytes_delivered: AtomicU64,
    records_skipped: AtomicU64,

    // --- robustness (degraded-input handling) ---
    io_retries: AtomicU64,
    resyncs: AtomicU64,
    resync_bytes: AtomicU64,
    limit_rejections: AtomicU64,
    truncated_records: AtomicU64,
    worker_panics: AtomicU64,
    checkpoints: AtomicU64,

    // --- pipeline health ---
    producer_stalls: AtomicU64,
    worker_idle_waits: AtomicU64,
    queue_occupancy: AtomicHistogram,
    worker_records: [AtomicU64; MAX_TRACKED_WORKERS],
    worker_bytes: [AtomicU64; MAX_TRACKED_WORKERS],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    fn with_enabled(enabled: bool) -> Self {
        Metrics {
            enabled,
            records_evaluated: AtomicU64::new(0),
            records_stopped: AtomicU64::new(0),
            records_failed: AtomicU64::new(0),
            matches_emitted: AtomicU64::new(0),
            bytes_evaluated: AtomicU64::new(0),
            bytes_failed: AtomicU64::new(0),
            ff_skipped: Default::default(),
            words_classified: AtomicU64::new(0),
            word_cache_hits: AtomicU64::new(0),
            eval_ns: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
            traverse_ns: AtomicU64::new(0),
            record_bytes: AtomicHistogram::default(),
            records_delivered: AtomicU64::new(0),
            matches_delivered: AtomicU64::new(0),
            bytes_delivered: AtomicU64::new(0),
            records_skipped: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            resync_bytes: AtomicU64::new(0),
            limit_rejections: AtomicU64::new(0),
            truncated_records: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            producer_stalls: AtomicU64::new(0),
            worker_idle_waits: AtomicU64::new(0),
            queue_occupancy: AtomicHistogram::default(),
            worker_records: Default::default(),
            worker_bytes: Default::default(),
        }
    }

    /// A recording registry.
    pub fn new() -> Self {
        Metrics::with_enabled(true)
    }

    /// A registry whose every recording method is a cheap early-out;
    /// useful as a default argument for instrumented call paths.
    pub fn disabled() -> Self {
        Metrics::with_enabled(false)
    }

    /// Whether the registry records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A stopwatch armed only when this registry records *and* the
    /// `metrics` cargo feature compiled clock calls in.
    #[inline]
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::armed(self.enabled)
    }

    /// Records the evaluated-side counters for one record attempt.
    pub fn record_outcome(&self, record_len: usize, outcome: &crate::RecordOutcome) {
        if !self.enabled {
            return;
        }
        let len = record_len as u64;
        self.record_bytes.observe(len);
        match outcome {
            crate::RecordOutcome::Complete { matches } => {
                sat_add(&self.records_evaluated, 1);
                sat_add(&self.bytes_evaluated, len);
                sat_add(&self.matches_emitted, *matches as u64);
            }
            crate::RecordOutcome::Stopped { matches } => {
                sat_add(&self.records_evaluated, 1);
                sat_add(&self.records_stopped, 1);
                sat_add(&self.bytes_evaluated, len);
                sat_add(&self.matches_emitted, *matches as u64);
            }
            crate::RecordOutcome::Failed(_) => {
                sat_add(&self.records_failed, 1);
                sat_add(&self.bytes_failed, len);
            }
        }
    }

    /// Folds one record's fast-forward statistics into the per-group byte
    /// counters. Callers only invoke this for records that evaluated
    /// cleanly, so failed records contribute zero here by construction.
    pub fn record_fast_forward(&self, stats: &FastForwardStats) {
        if !self.enabled {
            return;
        }
        for g in Group::ALL {
            sat_add(&self.ff_skipped[g.index()], stats.skipped(g));
        }
    }

    /// Records bitmap work: 64-byte words classified and word-cache hits.
    pub fn record_bitmap(&self, words_classified: u64, cache_hits: u64) {
        if !self.enabled {
            return;
        }
        sat_add(&self.words_classified, words_classified);
        sat_add(&self.word_cache_hits, cache_hits);
    }

    /// Adds total evaluation wall time (engine entry to outcome).
    pub fn add_eval_ns(&self, ns: u64) {
        if self.enabled {
            sat_add(&self.eval_ns, ns);
        }
    }

    /// Adds structure-building time (bitmap construction for the streaming
    /// engines; tape/DOM/index construction for the preprocessing ones).
    pub fn add_build_ns(&self, ns: u64) {
        if self.enabled {
            sat_add(&self.build_ns, ns);
        }
    }

    /// Adds traversal time (evaluation excluding structure building).
    pub fn add_traverse_ns(&self, ns: u64) {
        if self.enabled {
            sat_add(&self.traverse_ns, ns);
        }
    }

    /// Records one record whose matches were delivered to the caller's
    /// sink (serial in-place delivery or the pipeline's in-order merge).
    pub fn record_delivered(&self, matches: u64, record_bytes: u64) {
        if !self.enabled {
            return;
        }
        sat_add(&self.records_delivered, 1);
        sat_add(&self.matches_delivered, matches);
        sat_add(&self.bytes_delivered, record_bytes);
    }

    /// Records one record skipped under
    /// [`ErrorPolicy::SkipMalformed`](crate::ErrorPolicy::SkipMalformed).
    pub fn record_skipped_record(&self) {
        if self.enabled {
            sat_add(&self.records_skipped, 1);
        }
    }

    /// Records everything a serial streaming pass knows about one clean
    /// record in one call: evaluated- and delivered-side counters plus
    /// fast-forward and bitmap work from the [`StreamOutcome`].
    ///
    /// [`StreamOutcome`]: crate::StreamOutcome
    pub fn record_stream(&self, record_len: usize, outcome: &crate::StreamOutcome) {
        if !self.enabled {
            return;
        }
        let ro = if outcome.stopped {
            crate::RecordOutcome::Stopped {
                matches: outcome.matches,
            }
        } else {
            crate::RecordOutcome::Complete {
                matches: outcome.matches,
            }
        };
        self.record_outcome(record_len, &ro);
        self.record_fast_forward(&outcome.stats);
        self.record_bitmap(outcome.words_classified as u64, outcome.word_cache_hits);
        self.add_build_ns(outcome.classify_ns);
        self.record_delivered(outcome.matches as u64, record_len as u64);
    }

    /// Records a failed record seen on a serial streaming pass (evaluated
    /// side only; the record delivers nothing).
    pub fn record_stream_failure(&self, record_len: usize) {
        if !self.enabled {
            return;
        }
        sat_add(&self.records_failed, 1);
        sat_add(&self.bytes_failed, record_len as u64);
        self.record_bytes.observe(record_len as u64);
    }

    /// Records one transparently retried transient I/O error
    /// (`Interrupted`, or `WouldBlock`/`TimedOut` within the reader's
    /// [`RetryPolicy`](crate::RetryPolicy) budget).
    pub fn record_io_retry(&self) {
        if self.enabled {
            sat_add(&self.io_retries, 1);
        }
    }

    /// Records one mid-stream resynchronization that skipped `bytes` bytes
    /// to reach the next record boundary.
    pub fn record_resync(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        sat_add(&self.resyncs, 1);
        sat_add(&self.resync_bytes, bytes);
    }

    /// Records one record rejected by a
    /// [`ResourceLimits`](crate::ResourceLimits) guard.
    pub fn record_limit_rejection(&self) {
        if self.enabled {
            sat_add(&self.limit_rejections, 1);
        }
    }

    /// Records one record cut off by the end of the stream (unterminated
    /// final record).
    pub fn record_truncated_record(&self) {
        if self.enabled {
            sat_add(&self.truncated_records, 1);
        }
    }

    /// Records one evaluation panic caught and converted into
    /// [`EngineError::Panic`](crate::EngineError::Panic) by the pipeline.
    pub fn record_worker_panic(&self) {
        if self.enabled {
            sat_add(&self.worker_panics, 1);
        }
    }

    /// Records one checkpoint callback delivered from the in-order merge.
    pub fn record_checkpoint(&self) {
        if self.enabled {
            sat_add(&self.checkpoints, 1);
        }
    }

    /// Samples the work-queue occupancy observed while enqueuing.
    pub fn record_queue_occupancy(&self, in_flight: u64) {
        if self.enabled {
            self.queue_occupancy.observe(in_flight);
        }
    }

    /// Records one producer stall: the bounded queue was full, so the
    /// reader blocked instead of buffering (backpressure engaged).
    pub fn record_producer_stall(&self) {
        if self.enabled {
            sat_add(&self.producer_stalls, 1);
        }
    }

    /// Records one worker condvar wait (no queued work available).
    pub fn record_worker_wait(&self) {
        if self.enabled {
            sat_add(&self.worker_idle_waits, 1);
        }
    }

    /// Records one record of `record_bytes` handled by worker `worker`
    /// (ordinals at or above [`MAX_TRACKED_WORKERS`] fold into the last
    /// slot).
    pub fn record_worker(&self, worker: usize, record_bytes: u64) {
        if !self.enabled {
            return;
        }
        let slot = worker.min(MAX_TRACKED_WORKERS - 1);
        sat_add(&self.worker_records[slot], 1);
        sat_add(&self.worker_bytes[slot], record_bytes);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut ff_skipped = [0u64; 5];
        for (out, c) in ff_skipped.iter_mut().zip(&self.ff_skipped) {
            *out = ld(c);
        }
        let mut worker_records = [0u64; MAX_TRACKED_WORKERS];
        let mut worker_bytes = [0u64; MAX_TRACKED_WORKERS];
        for (out, c) in worker_records.iter_mut().zip(&self.worker_records) {
            *out = ld(c);
        }
        for (out, c) in worker_bytes.iter_mut().zip(&self.worker_bytes) {
            *out = ld(c);
        }
        MetricsSnapshot {
            records_evaluated: ld(&self.records_evaluated),
            records_stopped: ld(&self.records_stopped),
            records_failed: ld(&self.records_failed),
            matches_emitted: ld(&self.matches_emitted),
            bytes_evaluated: ld(&self.bytes_evaluated),
            bytes_failed: ld(&self.bytes_failed),
            ff_skipped,
            words_classified: ld(&self.words_classified),
            word_cache_hits: ld(&self.word_cache_hits),
            eval_ns: ld(&self.eval_ns),
            build_ns: ld(&self.build_ns),
            traverse_ns: ld(&self.traverse_ns),
            record_bytes: self.record_bytes.snapshot(),
            records_delivered: ld(&self.records_delivered),
            matches_delivered: ld(&self.matches_delivered),
            bytes_delivered: ld(&self.bytes_delivered),
            records_skipped: ld(&self.records_skipped),
            io_retries: ld(&self.io_retries),
            resyncs: ld(&self.resyncs),
            resync_bytes: ld(&self.resync_bytes),
            limit_rejections: ld(&self.limit_rejections),
            truncated_records: ld(&self.truncated_records),
            worker_panics: ld(&self.worker_panics),
            checkpoints: ld(&self.checkpoints),
            producer_stalls: ld(&self.producer_stalls),
            worker_idle_waits: ld(&self.worker_idle_waits),
            queue_occupancy: self.queue_occupancy.snapshot(),
            worker_records,
            worker_bytes,
        }
    }
}

/// Plain-data view of a [`Metrics`] registry at one instant.
///
/// All counters are saturating; see the field docs on [`Metrics`]'s
/// recording methods for their exact semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Records that evaluated cleanly (complete or stopped early).
    pub records_evaluated: u64,
    /// Cleanly evaluated records whose sink stopped the scan early.
    pub records_stopped: u64,
    /// Records whose evaluation failed.
    pub records_failed: u64,
    /// Matches emitted by engines while evaluating (work performed, which
    /// under a speculating pipeline can exceed what was delivered).
    pub matches_emitted: u64,
    /// Bytes of cleanly evaluated records.
    pub bytes_evaluated: u64,
    /// Bytes of failed records.
    pub bytes_failed: u64,
    /// Fast-forwarded bytes per group G1–G5 (indexed by
    /// [`Group::index`]); failed records contribute zero.
    pub ff_skipped: [u64; 5],
    /// 64-byte words run through the bit-parallel classifier.
    pub words_classified: u64,
    /// Word requests served by the single-word bitmap cache (0 without
    /// the `metrics` cargo feature).
    pub word_cache_hits: u64,
    /// Total evaluation nanoseconds (0 without the `metrics` feature).
    pub eval_ns: u64,
    /// Structure-building nanoseconds: bitmap construction for streaming
    /// engines, tape/DOM/index building for preprocessing engines (0
    /// without the `metrics` feature).
    pub build_ns: u64,
    /// Traversal nanoseconds, i.e. evaluation excluding structure
    /// building (0 without the `metrics` feature).
    pub traverse_ns: u64,
    /// Histogram of evaluated record sizes in bytes.
    pub record_bytes: HistogramSnapshot,
    /// Records whose matches were delivered to the caller's sink.
    pub records_delivered: u64,
    /// Matches actually delivered to the caller's sink, in record order.
    pub matches_delivered: u64,
    /// Bytes of records whose matches were delivered.
    pub bytes_delivered: u64,
    /// Records skipped under `SkipMalformed`.
    pub records_skipped: u64,
    /// Transient I/O errors retried transparently by the reader.
    pub io_retries: u64,
    /// Mid-stream resynchronizations (forward scans to the next record
    /// boundary after a broken record).
    pub resyncs: u64,
    /// Bytes skipped over by resynchronizations.
    pub resync_bytes: u64,
    /// Records rejected by a [`ResourceLimits`](crate::ResourceLimits)
    /// guard (size, depth, buffer, or deadline).
    pub limit_rejections: u64,
    /// Records cut off by the end of the stream.
    pub truncated_records: u64,
    /// Evaluation panics caught and converted into per-record failures.
    pub worker_panics: u64,
    /// Checkpoint callbacks delivered from the in-order merge.
    pub checkpoints: u64,
    /// Producer stalls on the pipeline's bounded queue (backpressure).
    pub producer_stalls: u64,
    /// Worker waits for work on the pipeline's queue.
    pub worker_idle_waits: u64,
    /// Histogram of in-flight record counts sampled at enqueue time.
    pub queue_occupancy: HistogramSnapshot,
    /// Records handled per worker (first [`MAX_TRACKED_WORKERS`] slots).
    pub worker_records: [u64; MAX_TRACKED_WORKERS],
    /// Bytes handled per worker (first [`MAX_TRACKED_WORKERS`] slots).
    pub worker_bytes: [u64; MAX_TRACKED_WORKERS],
}

impl MetricsSnapshot {
    /// The activity between an `earlier` snapshot and `self`, fieldwise
    /// (saturating subtraction throughout).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut ff_skipped = [0u64; 5];
        for (i, out) in ff_skipped.iter_mut().enumerate() {
            *out = self.ff_skipped[i].saturating_sub(earlier.ff_skipped[i]);
        }
        let mut worker_records = [0u64; MAX_TRACKED_WORKERS];
        let mut worker_bytes = [0u64; MAX_TRACKED_WORKERS];
        for (i, out) in worker_records.iter_mut().enumerate() {
            *out = self.worker_records[i].saturating_sub(earlier.worker_records[i]);
        }
        for (i, out) in worker_bytes.iter_mut().enumerate() {
            *out = self.worker_bytes[i].saturating_sub(earlier.worker_bytes[i]);
        }
        MetricsSnapshot {
            records_evaluated: self
                .records_evaluated
                .saturating_sub(earlier.records_evaluated),
            records_stopped: self.records_stopped.saturating_sub(earlier.records_stopped),
            records_failed: self.records_failed.saturating_sub(earlier.records_failed),
            matches_emitted: self.matches_emitted.saturating_sub(earlier.matches_emitted),
            bytes_evaluated: self.bytes_evaluated.saturating_sub(earlier.bytes_evaluated),
            bytes_failed: self.bytes_failed.saturating_sub(earlier.bytes_failed),
            ff_skipped,
            words_classified: self
                .words_classified
                .saturating_sub(earlier.words_classified),
            word_cache_hits: self.word_cache_hits.saturating_sub(earlier.word_cache_hits),
            eval_ns: self.eval_ns.saturating_sub(earlier.eval_ns),
            build_ns: self.build_ns.saturating_sub(earlier.build_ns),
            traverse_ns: self.traverse_ns.saturating_sub(earlier.traverse_ns),
            record_bytes: self.record_bytes.diff(&earlier.record_bytes),
            records_delivered: self
                .records_delivered
                .saturating_sub(earlier.records_delivered),
            matches_delivered: self
                .matches_delivered
                .saturating_sub(earlier.matches_delivered),
            bytes_delivered: self.bytes_delivered.saturating_sub(earlier.bytes_delivered),
            records_skipped: self.records_skipped.saturating_sub(earlier.records_skipped),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
            resyncs: self.resyncs.saturating_sub(earlier.resyncs),
            resync_bytes: self.resync_bytes.saturating_sub(earlier.resync_bytes),
            limit_rejections: self
                .limit_rejections
                .saturating_sub(earlier.limit_rejections),
            truncated_records: self
                .truncated_records
                .saturating_sub(earlier.truncated_records),
            worker_panics: self.worker_panics.saturating_sub(earlier.worker_panics),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            producer_stalls: self.producer_stalls.saturating_sub(earlier.producer_stalls),
            worker_idle_waits: self
                .worker_idle_waits
                .saturating_sub(earlier.worker_idle_waits),
            queue_occupancy: self.queue_occupancy.diff(&earlier.queue_occupancy),
            worker_records,
            worker_bytes,
        }
    }

    /// Bytes fast-forwarded by `group`.
    pub fn ff_skipped(&self, group: Group) -> u64 {
        self.ff_skipped[group.index()]
    }

    /// The fast-forward ratio of one group against the bytes evaluated
    /// (0.0 when nothing was evaluated).
    pub fn ff_ratio(&self, group: Group) -> f64 {
        if self.bytes_evaluated == 0 {
            0.0
        } else {
            self.ff_skipped(group) as f64 / self.bytes_evaluated as f64
        }
    }

    /// The overall fast-forward ratio: all skipped bytes over the bytes
    /// evaluated (the paper's Section 5.3 metric, from live counters).
    pub fn overall_ff_ratio(&self) -> f64 {
        if self.bytes_evaluated == 0 {
            0.0
        } else {
            let skipped: u64 = self.ff_skipped.iter().sum();
            skipped as f64 / self.bytes_evaluated as f64
        }
    }

    /// Reassembles the counters into a [`FastForwardStats`] (total =
    /// bytes evaluated), for interoperating with the stats-based APIs.
    pub fn fast_forward_stats(&self) -> FastForwardStats {
        let mut s = FastForwardStats::new();
        for g in Group::ALL {
            s.record(g, self.ff_skipped(g));
        }
        s.add_total(self.bytes_evaluated);
        s
    }

    /// Renders the snapshot as a self-contained JSON object, with no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let ff: Vec<String> = self.ff_skipped.iter().map(u64::to_string).collect();
        let wr: Vec<String> = self.worker_records.iter().map(u64::to_string).collect();
        let wb: Vec<String> = self.worker_bytes.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{",
                "\"records_evaluated\":{},",
                "\"records_stopped\":{},",
                "\"records_failed\":{},",
                "\"matches_emitted\":{},",
                "\"bytes_evaluated\":{},",
                "\"bytes_failed\":{},",
                "\"ff_skipped\":[{}],",
                "\"ff_ratio\":{:.6},",
                "\"words_classified\":{},",
                "\"word_cache_hits\":{},",
                "\"eval_ns\":{},",
                "\"build_ns\":{},",
                "\"traverse_ns\":{},",
                "\"record_bytes_hist\":{},",
                "\"records_delivered\":{},",
                "\"matches_delivered\":{},",
                "\"bytes_delivered\":{},",
                "\"records_skipped\":{},",
                "\"io_retries\":{},",
                "\"resyncs\":{},",
                "\"resync_bytes\":{},",
                "\"limit_rejections\":{},",
                "\"truncated_records\":{},",
                "\"worker_panics\":{},",
                "\"checkpoints\":{},",
                "\"producer_stalls\":{},",
                "\"worker_idle_waits\":{},",
                "\"queue_occupancy_hist\":{},",
                "\"worker_records\":[{}],",
                "\"worker_bytes\":[{}]",
                "}}"
            ),
            self.records_evaluated,
            self.records_stopped,
            self.records_failed,
            self.matches_emitted,
            self.bytes_evaluated,
            self.bytes_failed,
            ff.join(","),
            self.overall_ff_ratio(),
            self.words_classified,
            self.word_cache_hits,
            self.eval_ns,
            self.build_ns,
            self.traverse_ns,
            self.record_bytes.to_json(),
            self.records_delivered,
            self.matches_delivered,
            self.bytes_delivered,
            self.records_skipped,
            self.io_retries,
            self.resyncs,
            self.resync_bytes,
            self.limit_rejections,
            self.truncated_records,
            self.worker_panics,
            self.checkpoints,
            self.producer_stalls,
            self.worker_idle_waits,
            self.queue_occupancy.to_json(),
            wr.join(","),
            wb.join(","),
        )
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "records: {} evaluated ({} stopped, {} failed), {} delivered, {} skipped",
            self.records_evaluated,
            self.records_stopped,
            self.records_failed,
            self.records_delivered,
            self.records_skipped,
        )?;
        writeln!(
            f,
            "matches: {} emitted, {} delivered",
            self.matches_emitted, self.matches_delivered
        )?;
        writeln!(
            f,
            "bytes:   {} evaluated, {} failed, {} delivered",
            self.bytes_evaluated, self.bytes_failed, self.bytes_delivered
        )?;
        writeln!(
            f,
            "fast-forward: G1 {:.2}% | G2 {:.2}% | G3 {:.2}% | G4 {:.2}% | G5 {:.2}% | overall {:.2}%",
            100.0 * self.ff_ratio(Group::G1),
            100.0 * self.ff_ratio(Group::G2),
            100.0 * self.ff_ratio(Group::G3),
            100.0 * self.ff_ratio(Group::G4),
            100.0 * self.ff_ratio(Group::G5),
            100.0 * self.overall_ff_ratio(),
        )?;
        writeln!(
            f,
            "bitmap:  {} words classified, {} cache hits",
            self.words_classified, self.word_cache_hits
        )?;
        if self.eval_ns > 0 {
            writeln!(
                f,
                "time:    {} ns eval ({} ns build, {} ns traverse)",
                self.eval_ns, self.build_ns, self.traverse_ns
            )?;
        }
        if self.io_retries + self.resyncs + self.limit_rejections + self.truncated_records > 0 {
            writeln!(
                f,
                "robust:  {} i/o retries, {} resyncs ({} bytes skipped), {} limit rejections, {} truncated",
                self.io_retries,
                self.resyncs,
                self.resync_bytes,
                self.limit_rejections,
                self.truncated_records,
            )?;
        }
        if self.worker_panics + self.checkpoints > 0 {
            writeln!(
                f,
                "crash:   {} panics caught, {} checkpoints",
                self.worker_panics, self.checkpoints
            )?;
        }
        writeln!(
            f,
            "pipeline: {} producer stalls, {} worker waits",
            self.producer_stalls, self.worker_idle_waits
        )?;
        for (i, (&r, &b)) in self
            .worker_records
            .iter()
            .zip(&self.worker_bytes)
            .enumerate()
        {
            if r > 0 {
                writeln!(f, "worker {i}: {r} records, {b} bytes")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordOutcome;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.record_outcome(100, &RecordOutcome::Complete { matches: 3 });
        m.record_delivered(3, 100);
        m.record_skipped_record();
        m.record_producer_stall();
        m.record_worker(0, 100);
        m.record_queue_occupancy(2);
        m.add_eval_ns(10);
        m.record_io_retry();
        m.record_resync(100);
        m.record_limit_rejection();
        m.record_truncated_record();
        m.record_worker_panic();
        m.record_checkpoint();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert_eq!(m.stopwatch().elapsed_ns(), 0);
    }

    #[test]
    fn outcome_accounting_separates_failures() {
        let m = Metrics::new();
        m.record_outcome(100, &RecordOutcome::Complete { matches: 2 });
        m.record_outcome(50, &RecordOutcome::Stopped { matches: 1 });
        m.record_outcome(
            7,
            &RecordOutcome::Failed(crate::EngineError::Engine {
                engine: "t",
                message: "x".into(),
            }),
        );
        let s = m.snapshot();
        assert_eq!(s.records_evaluated, 2);
        assert_eq!(s.records_stopped, 1);
        assert_eq!(s.records_failed, 1);
        assert_eq!(s.matches_emitted, 3);
        assert_eq!(s.bytes_evaluated, 150);
        assert_eq!(s.bytes_failed, 7);
        assert_eq!(s.record_bytes.count(), 3);
    }

    #[test]
    fn snapshot_diff_arithmetic() {
        let m = Metrics::new();
        m.record_outcome(100, &RecordOutcome::Complete { matches: 2 });
        let mut stats = FastForwardStats::new();
        stats.record(Group::G2, 40);
        stats.record(Group::G4, 20);
        m.record_fast_forward(&stats);
        let mid = m.snapshot();
        m.record_outcome(60, &RecordOutcome::Complete { matches: 1 });
        let mut stats2 = FastForwardStats::new();
        stats2.record(Group::G2, 30);
        m.record_fast_forward(&stats2);
        let end = m.snapshot();
        let delta = end.diff(&mid);
        assert_eq!(delta.records_evaluated, 1);
        assert_eq!(delta.bytes_evaluated, 60);
        assert_eq!(delta.matches_emitted, 1);
        assert_eq!(delta.ff_skipped(Group::G2), 30);
        assert_eq!(delta.ff_skipped(Group::G4), 0);
        assert!((delta.overall_ff_ratio() - 0.5).abs() < 1e-9);
        // diff against a *later* snapshot saturates to zero, not wraps.
        let backwards = mid.diff(&end);
        assert_eq!(backwards.records_evaluated, 0);
        assert_eq!(backwards.ff_skipped(Group::G2), 0);
    }

    #[test]
    fn ratios_use_evaluated_bytes() {
        let m = Metrics::new();
        m.record_outcome(200, &RecordOutcome::Complete { matches: 0 });
        let mut stats = FastForwardStats::new();
        stats.record(Group::G1, 50);
        stats.record(Group::G5, 100);
        m.record_fast_forward(&stats);
        let s = m.snapshot();
        assert!((s.ff_ratio(Group::G1) - 0.25).abs() < 1e-9);
        assert!((s.ff_ratio(Group::G5) - 0.50).abs() < 1e-9);
        assert!((s.overall_ff_ratio() - 0.75).abs() < 1e-9);
        let ff = s.fast_forward_stats();
        assert_eq!(ff.total(), 200);
        assert_eq!(ff.skipped(Group::G5), 100);
        assert!((ff.overall_ratio() - s.overall_ff_ratio()).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log2_with_clamping() {
        assert_eq!(AtomicHistogram::bucket_of(0), 0);
        assert_eq!(AtomicHistogram::bucket_of(1), 1);
        assert_eq!(AtomicHistogram::bucket_of(2), 2);
        assert_eq!(AtomicHistogram::bucket_of(3), 2);
        assert_eq!(AtomicHistogram::bucket_of(4), 3);
        assert_eq!(AtomicHistogram::bucket_of(1 << 13), 14);
        // Everything at or above 2^14 clamps into the final bucket
        // instead of indexing out of range.
        assert_eq!(AtomicHistogram::bucket_of(1 << 14), 15);
        assert_eq!(AtomicHistogram::bucket_of(u64::MAX), 15);
        assert_eq!(HistogramSnapshot::bucket_floor(0), 0);
        assert_eq!(HistogramSnapshot::bucket_floor(1), 1);
        assert_eq!(HistogramSnapshot::bucket_floor(15), 1 << 14);
        let h = AtomicHistogram::default();
        h.observe(0);
        h.observe(5);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[15], 1);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn histogram_counts_saturate_instead_of_wrapping() {
        let h = AtomicHistogram::default();
        h.buckets[3].store(u64::MAX, Ordering::Relaxed);
        h.observe(5); // bucket 3
        assert_eq!(h.snapshot().buckets[3], u64::MAX);
        // count() across saturated buckets saturates too.
        h.buckets[1].store(u64::MAX, Ordering::Relaxed);
        assert_eq!(h.snapshot().count(), u64::MAX);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let m = Metrics::new();
        m.bytes_evaluated.store(u64::MAX - 10, Ordering::Relaxed);
        m.record_outcome(100, &RecordOutcome::Complete { matches: 0 });
        assert_eq!(m.snapshot().bytes_evaluated, u64::MAX);
    }

    #[test]
    fn worker_slots_clamp() {
        let m = Metrics::new();
        m.record_worker(0, 10);
        m.record_worker(MAX_TRACKED_WORKERS + 5, 7);
        m.record_worker(usize::MAX, 3);
        let s = m.snapshot();
        assert_eq!(s.worker_records[0], 1);
        assert_eq!(s.worker_records[MAX_TRACKED_WORKERS - 1], 2);
        assert_eq!(s.worker_bytes[MAX_TRACKED_WORKERS - 1], 10);
    }

    #[test]
    fn json_and_display_render() {
        let m = Metrics::new();
        m.record_outcome(64, &RecordOutcome::Complete { matches: 1 });
        m.record_delivered(1, 64);
        m.record_worker(2, 64);
        let s = m.snapshot();
        let json = s.to_json();
        for key in [
            "\"records_evaluated\":1",
            "\"ff_skipped\":[0,0,0,0,0]",
            "\"matches_delivered\":1",
            "\"queue_occupancy_hist\":[",
            "\"worker_records\":[0,0,1,",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        let text = s.to_string();
        assert!(text.contains("fast-forward"), "{text}");
        assert!(text.contains("worker 2: 1 records"), "{text}");
    }

    #[test]
    fn robustness_counters_round_trip() {
        let m = Metrics::new();
        m.record_io_retry();
        m.record_io_retry();
        m.record_resync(40);
        m.record_resync(2);
        m.record_limit_rejection();
        m.record_truncated_record();
        let s = m.snapshot();
        assert_eq!(s.io_retries, 2);
        assert_eq!(s.resyncs, 2);
        assert_eq!(s.resync_bytes, 42);
        assert_eq!(s.limit_rejections, 1);
        assert_eq!(s.truncated_records, 1);
        let json = s.to_json();
        for key in [
            "\"io_retries\":2",
            "\"resyncs\":2",
            "\"resync_bytes\":42",
            "\"limit_rejections\":1",
            "\"truncated_records\":1",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(s.to_string().contains("2 resyncs (42 bytes skipped)"));
        let later = {
            m.record_resync(8);
            m.snapshot()
        };
        let delta = later.diff(&s);
        assert_eq!(delta.resyncs, 1);
        assert_eq!(delta.resync_bytes, 8);
        assert_eq!(delta.io_retries, 0);
    }

    #[test]
    fn record_stream_covers_both_sides() {
        let q = crate::JsonSki::compile("$.a").unwrap();
        let json = br#"{"a": 1, "pad": [1, 2, 3]}"#;
        let outcome = q
            .stream(json, |_| std::ops::ControlFlow::Continue(()))
            .unwrap();
        let m = Metrics::new();
        m.record_stream(json.len(), &outcome);
        let s = m.snapshot();
        assert_eq!(s.records_evaluated, 1);
        assert_eq!(s.records_delivered, 1);
        assert_eq!(s.matches_emitted, 1);
        assert_eq!(s.matches_delivered, 1);
        assert_eq!(s.bytes_evaluated, json.len() as u64);
        assert!(s.overall_ff_ratio() > 0.0);
        assert!(s.words_classified > 0);
    }
}
