//! Cooperative cancellation for long-running streaming work.
//!
//! A production pipeline run can outlive the operator's patience (or the
//! process's SIGTERM grace period); killing the process forfeits all
//! in-flight work. [`CancellationToken`] is the cooperative alternative:
//! a zero-dependency shared flag that producers, workers, and readers
//! check at *record boundaries*. Cancellation is therefore graceful by
//! construction — no record is abandoned half-delivered, the pipeline's
//! in-order merge flushes everything already evaluated, and
//! [`PipelineSummary::cancelled`] reports the exact high-water byte
//! offset the run committed to.
//!
//! The token is cheap enough to check per record: one relaxed atomic load
//! of a flag that stays in cache (see the `crash_guard` bench).
//!
//! [`PipelineSummary::cancelled`]: crate::PipelineSummary::cancelled

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A clonable cancellation flag shared between the party requesting the
/// stop (a signal handler, a supervisor thread, a sink) and the streaming
/// loops that honour it.
///
/// Clones share state: cancelling any clone cancels them all. The
/// *generation counter* distinguishes separate cancel requests across
/// [`reset`](CancellationToken::reset) cycles, so a long-lived token can
/// be reused run-after-run without a stale cancellation leaking into the
/// next run.
///
/// # Example
///
/// ```
/// use jsonski::CancellationToken;
///
/// let token = CancellationToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// assert_eq!(watcher.generation(), 1);
/// watcher.reset();
/// assert!(!token.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Completed cancel requests; bumped once per [`CancellationToken::cancel`]
    /// transition from live to cancelled.
    generation: AtomicU64,
}

impl CancellationToken {
    /// A live (not cancelled) token.
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Requests cancellation. Idempotent: repeated calls while already
    /// cancelled do not bump the generation again.
    pub fn cancel(&self) {
        if !self.inner.cancelled.swap(true, Ordering::AcqRel) {
            self.inner.generation.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Whether cancellation has been requested. A single relaxed-ordered
    /// load — safe to call once per record on the hot path.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Re-arms a cancelled token for the next run. The generation counter
    /// keeps counting up, so observers can tell "cancelled again" from
    /// "still cancelled from last time".
    pub fn reset(&self) {
        self.inner.cancelled.store(false, Ordering::Release);
    }

    /// How many cancel requests this token has seen across resets.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_live_and_cancels_once() {
        let t = CancellationToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.generation(), 0);
        t.cancel();
        t.cancel(); // idempotent while cancelled
        assert!(t.is_cancelled());
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = CancellationToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        a.reset();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn generation_counts_cancel_cycles() {
        let t = CancellationToken::new();
        for expected in 1..=3 {
            t.cancel();
            assert_eq!(t.generation(), expected);
            t.reset();
        }
        assert!(!t.is_cancelled());
        assert_eq!(t.generation(), 3);
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancellationToken::new();
        let seen = std::thread::scope(|s| {
            let watcher = t.clone();
            let h = s.spawn(move || {
                while !watcher.is_cancelled() {
                    std::hint::spin_loop();
                }
                true
            });
            t.cancel();
            h.join().unwrap()
        });
        assert!(seen);
    }
}
