//! Durable checkpoint/resume state for streaming runs.
//!
//! A checkpoint records how far a run got — the committed byte offset of
//! the in-order merge plus the cumulative delivery counters — together
//! with enough *identity* (input fingerprint, query/config digest) to
//! refuse resuming against the wrong input or a different query. The
//! pipeline only checkpoints work that has already been delivered to the
//! sink, so the invariant `checkpoint offset ≤ delivered offset` holds by
//! construction and resuming re-processes nothing and skips nothing.
//!
//! # File format
//!
//! A checkpoint is a small plain-text key/value file (no serialization
//! dependency), e.g.:
//!
//! ```text
//! jsonski-checkpoint v1
//! identity 9297539898232096043
//! input_len 1048576
//! fingerprint_head 16655802900186572045
//! fingerprint_tail 4885132622782288683
//! offset 524288
//! records 4096
//! matches 4080
//! failed 16
//! resyncs 2
//! resync_bytes 127
//! output_bytes 65536
//! complete 0
//! ```
//!
//! (Unknown lengths/fingerprints — e.g. stdin input — are written as `-`.)
//!
//! Writes are atomic: the file is written to a `.tmp` sibling, fsynced,
//! and renamed over the destination, so a crash mid-write leaves either
//! the old checkpoint or the new one, never a torn file.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::pipeline::PipelineSummary;

/// Magic first line of a checkpoint file; bump the version on any format
/// change.
const HEADER: &str = "jsonski-checkpoint v1";

/// How many leading/trailing input bytes feed the identity fingerprint.
pub const FINGERPRINT_BYTES: usize = 4096;

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty for detecting
/// "this is not the file you checkpointed" (it is not cryptographic and
/// does not need to be).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digests an ordered list of configuration strings (queries, policy,
/// limits…) into one identity value. Part boundaries are hashed too, so
/// `["ab", "c"]` and `["a", "bc"]` digest differently.
pub fn digest_parts<S: AsRef<str>>(parts: &[S]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_ref().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f; // unit separator: delimit parts
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How often a checkpointing [`Pipeline`](crate::Pipeline) persists
/// progress: after `every_records` merged records *or* `every_bytes`
/// merged record bytes, whichever comes first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointCadence {
    /// Checkpoint after this many records were merged since the last one.
    pub every_records: u64,
    /// Checkpoint after this many record bytes were merged since the last
    /// one.
    pub every_bytes: u64,
}

impl Default for CheckpointCadence {
    /// Every 1024 records or 1 MiB, whichever comes first.
    fn default() -> Self {
        CheckpointCadence {
            every_records: 1024,
            every_bytes: 1 << 20,
        }
    }
}

impl CheckpointCadence {
    /// Sets the record-count cadence (builder-style, min 1).
    pub fn every_records(mut self, n: u64) -> Self {
        self.every_records = n.max(1);
        self
    }

    /// Sets the byte cadence (builder-style, min 1).
    pub fn every_bytes(mut self, n: u64) -> Self {
        self.every_bytes = n.max(1);
        self
    }
}

/// Durable progress of one (possibly multi-segment) streaming run; see
/// the module docs (source of `checkpoint.rs`) for the file format and invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Digest of the query set and configuration (see [`digest_parts`]);
    /// resuming under a different query/config must be refused.
    pub identity: u64,
    /// Input length in bytes, `None` when unknowable (e.g. stdin).
    pub input_len: Option<u64>,
    /// [`fingerprint`] of the first [`FINGERPRINT_BYTES`] input bytes,
    /// `None` when unknowable.
    pub fingerprint_head: Option<u64>,
    /// [`fingerprint`] of the last [`FINGERPRINT_BYTES`] input bytes,
    /// `None` when unknowable.
    pub fingerprint_tail: Option<u64>,
    /// Committed input byte offset: everything before it has been fully
    /// delivered (or deliberately skipped) and never needs re-reading.
    pub offset: u64,
    /// Records merged across all segments of the run.
    pub records: u64,
    /// Matches delivered across all segments.
    pub matches: u64,
    /// Records skipped as failed across all segments.
    pub failed: u64,
    /// Mid-stream resynchronizations across all segments.
    pub resyncs: u64,
    /// Bytes abandoned by those resynchronizations.
    pub resync_bytes: u64,
    /// Output bytes durably flushed by the caller at checkpoint time; a
    /// resume harness truncates partial post-crash output back to this.
    pub output_bytes: u64,
    /// Whether the run finished (resuming a complete run is a no-op).
    pub complete: bool,
}

impl Checkpoint {
    /// A zero-progress checkpoint for a fresh run with the given identity
    /// digest.
    pub fn new(identity: u64) -> Self {
        Checkpoint {
            identity,
            input_len: None,
            fingerprint_head: None,
            fingerprint_tail: None,
            offset: 0,
            records: 0,
            matches: 0,
            failed: 0,
            resyncs: 0,
            resync_bytes: 0,
            output_bytes: 0,
            complete: false,
        }
    }

    /// This checkpoint advanced by one segment's [`PipelineSummary`]:
    /// counters accumulate, and the offset moves to the segment's
    /// committed high-water mark (never backwards).
    pub fn advanced(&self, summary: &PipelineSummary) -> Checkpoint {
        let mut next = self.clone();
        next.records = next.records.saturating_add(summary.records);
        next.matches = next.matches.saturating_add(summary.matches as u64);
        next.failed = next.failed.saturating_add(summary.failed);
        next.resyncs = next.resyncs.saturating_add(summary.resyncs);
        next.resync_bytes = next.resync_bytes.saturating_add(summary.resync_bytes);
        next.offset = next.offset.max(summary.committed_offset);
        next
    }

    /// Serializes to the plain-text format in the module docs.
    pub fn to_text(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        format!(
            "{HEADER}\nidentity {}\ninput_len {}\nfingerprint_head {}\nfingerprint_tail {}\noffset {}\nrecords {}\nmatches {}\nfailed {}\nresyncs {}\nresync_bytes {}\noutput_bytes {}\ncomplete {}\n",
            self.identity,
            opt(self.input_len),
            opt(self.fingerprint_head),
            opt(self.fingerprint_tail),
            self.offset,
            self.records,
            self.matches,
            self.failed,
            self.resyncs,
            self.resync_bytes,
            self.output_bytes,
            u8::from(self.complete),
        )
    }

    /// Parses the plain-text format.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a wrong header, unknown key,
    /// malformed value, or missing field.
    pub fn from_text(text: &str) -> io::Result<Checkpoint> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(bad(format!("not a checkpoint file (expected `{HEADER}`)")));
        }
        let mut ck = Checkpoint::new(0);
        let mut seen = 0u32;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("malformed checkpoint line `{line}`")))?;
            let parse = || -> io::Result<u64> {
                value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("bad value for `{key}`: `{value}`")))
            };
            let parse_opt = || -> io::Result<Option<u64>> {
                if value == "-" {
                    Ok(None)
                } else {
                    parse().map(Some)
                }
            };
            match key {
                "identity" => ck.identity = parse()?,
                "input_len" => ck.input_len = parse_opt()?,
                "fingerprint_head" => ck.fingerprint_head = parse_opt()?,
                "fingerprint_tail" => ck.fingerprint_tail = parse_opt()?,
                "offset" => ck.offset = parse()?,
                "records" => ck.records = parse()?,
                "matches" => ck.matches = parse()?,
                "failed" => ck.failed = parse()?,
                "resyncs" => ck.resyncs = parse()?,
                "resync_bytes" => ck.resync_bytes = parse()?,
                "output_bytes" => ck.output_bytes = parse()?,
                "complete" => ck.complete = parse()? != 0,
                _ => return Err(bad(format!("unknown checkpoint key `{key}`"))),
            }
            seen += 1;
        }
        if seen < 12 {
            return Err(bad(format!("checkpoint is missing fields ({seen}/12)")));
        }
        Ok(ck)
    }

    /// Atomically persists the checkpoint at `path`: the bytes land in a
    /// `.tmp` sibling first, are fsynced, and replace `path` via rename,
    /// so readers see either the previous checkpoint or this one in full.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, syncing, or renaming.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable where the platform allows
        // fsyncing a directory; best-effort elsewhere.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and parses the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from reading; [`io::ErrorKind::InvalidData`] from
    /// parsing (see [`Checkpoint::from_text`]).
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        Checkpoint::from_text(&text)
    }
}

/// The sibling temp file a [`Checkpoint::save`] stages into.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(digest_parts(&["$.a", "skip"]));
        ck.input_len = Some(1 << 20);
        ck.fingerprint_head = Some(fingerprint(b"head"));
        ck.fingerprint_tail = None;
        ck.offset = 12345;
        ck.records = 100;
        ck.matches = 99;
        ck.failed = 1;
        ck.resyncs = 2;
        ck.resync_bytes = 37;
        ck.output_bytes = 4096;
        ck
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_ne!(digest_parts(&["ab", "c"]), digest_parts(&["a", "bc"]));
        assert_eq!(digest_parts(&["a", "b"]), digest_parts(&["a", "b"]));
    }

    #[test]
    fn text_round_trip_preserves_every_field() {
        let ck = sample();
        let parsed = Checkpoint::from_text(&ck.to_text()).unwrap();
        assert_eq!(parsed, ck);
        // The unknown-tail sentinel survives the round trip.
        assert_eq!(parsed.fingerprint_tail, None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Checkpoint::from_text("not a checkpoint").is_err());
        let wrong_version = HEADER.replace("v1", "v0");
        assert!(Checkpoint::from_text(&format!("{wrong_version}\n")).is_err());
        let mut text = sample().to_text();
        text.push_str("surprise 1\n");
        assert!(Checkpoint::from_text(&text).is_err());
        let truncated = HEADER.to_string() + "\nidentity 1\n";
        assert!(Checkpoint::from_text(&truncated).is_err());
        let corrupt = sample().to_text().replace("offset 12345", "offset twelve");
        assert!(Checkpoint::from_text(&corrupt).is_err());
    }

    #[test]
    fn save_load_round_trip_and_atomic_replace() {
        let dir = std::env::temp_dir().join(format!("jsonski-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // Overwrite with progressed state: the rename replaces in place
        // and no temp file survives.
        let later = ck.advanced(&PipelineSummary {
            records: 10,
            matches: 8,
            failed: 2,
            committed_offset: 99999,
            ..PipelineSummary::default()
        });
        later.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), later);
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn advanced_accumulates_and_never_rewinds_offset() {
        let ck = sample();
        let summary = PipelineSummary {
            records: 5,
            matches: 4,
            failed: 1,
            resyncs: 1,
            resync_bytes: 9,
            committed_offset: 10, // behind the checkpoint: a fresh segment
            ..PipelineSummary::default()
        };
        let next = ck.advanced(&summary);
        assert_eq!(next.records, 105);
        assert_eq!(next.matches, 103);
        assert_eq!(next.failed, 2);
        assert_eq!(next.resyncs, 3);
        assert_eq!(next.resync_bytes, 46);
        assert_eq!(next.offset, 12345, "offset must never move backwards");
        let forward = ck.advanced(&PipelineSummary {
            committed_offset: 20000,
            ..PipelineSummary::default()
        });
        assert_eq!(forward.offset, 20000);
    }

    #[test]
    fn cadence_defaults_and_builders() {
        let c = CheckpointCadence::default();
        assert_eq!(c.every_records, 1024);
        assert_eq!(c.every_bytes, 1 << 20);
        let c = c.every_records(0).every_bytes(0);
        assert_eq!(c.every_records, 1);
        assert_eq!(c.every_bytes, 1);
    }
}
