//! Seeded structure-aware fuzzing: grammar-aware document generation,
//! labeled fault injection, byte-level mutation, and a greedy shrinker.
//!
//! Everything here is deterministic in the seed (the [`SplitMix64`]
//! generator shared with [`crate::faults`]) and dependency-free, so fuzz
//! findings replay exactly from a single `u64` and shrunken cases can be
//! checked into `tests/corpus/` as regression inputs.
//!
//! The module deliberately splits cases into three classes the differential
//! oracle can assert different things about:
//!
//! * **valid** documents from the grammar-aware [`Gen`] — every engine must
//!   accept them with byte-identical match streams, in both validation
//!   modes, under every bitmap kernel;
//! * **labeled faults** from [`inject`] — a single, known violation with a
//!   *predicted* `(offset, reason)`; every Strict engine must reject with
//!   exactly that verdict;
//! * **unlabeled mutations** from [`crate::faults::mutate`] — arbitrary
//!   damage with no validity prediction; the oracle falls back to
//!   cross-kernel invariance and DOM-as-ground-truth agreement.

use crate::error::InvalidReason;
use crate::faults::SplitMix64;

/// Maximum container nesting the generator produces. Deep enough to cross
/// several 64-byte words with pure structure, shallow enough to stay far
/// from the engine's recursion guard.
const MAX_GEN_DEPTH: usize = 8;

/// Fixed key pool: queries used by the differential harness reference these
/// names, so generated documents actually exercise matching, G1/G4 seeking
/// and G2 skipping rather than skipping everything.
const KEYS: &[&str] = &["a", "b", "c", "id", "x", "y", "tags", "name", "user"];

/// Grammar-aware JSON document generator, deterministic in its seed.
#[derive(Debug)]
pub struct Gen {
    rng: SplitMix64,
}

impl Gen {
    /// Creates a generator for one document.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Generates one syntactically valid JSON document (mostly container
    /// roots, occasionally a bare primitive or string).
    pub fn document(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.rng.below(12) {
            0 => self.primitive(&mut out),
            1 => self.string(&mut out),
            n if n < 8 => self.object(&mut out, 0),
            _ => self.array(&mut out, 0),
        }
        if self.rng.below(4) == 0 {
            out.push(b'\n');
        }
        out
    }

    fn ws(&mut self, out: &mut Vec<u8>) {
        for _ in 0..self.rng.below(3) {
            out.push(
                *[b' ', b' ', b'\t', b'\n']
                    .get(self.rng.below(4) as usize)
                    .unwrap(),
            );
        }
    }

    fn value(&mut self, out: &mut Vec<u8>, depth: usize) {
        let choice = if depth >= MAX_GEN_DEPTH {
            self.rng.below(4)
        } else {
            self.rng.below(6)
        };
        match choice {
            0 | 1 => self.primitive(out),
            2 | 3 => self.string(out),
            4 => self.object(out, depth + 1),
            _ => self.array(out, depth + 1),
        }
    }

    fn object(&mut self, out: &mut Vec<u8>, depth: usize) {
        out.push(b'{');
        let n = self.rng.below(5);
        let mut used: Vec<Vec<u8>> = Vec::new();
        for i in 0..n {
            if i > 0 {
                out.push(b',');
            }
            self.ws(out);
            // G4 (and the paper's data model) assume unique attribute
            // names: with duplicates the engines *legitimately* diverge
            // (first-match-then-skip vs. every-match), so the generator
            // never emits two identical raw keys in one object.
            let mut key = Vec::new();
            self.key(&mut key);
            while used.contains(&key) {
                // Splice a disambiguating suffix before the closing quote
                // (safe: generated keys never end in a dangling escape).
                key.pop();
                key.extend_from_slice(format!("_{}\"", used.len()).as_bytes());
            }
            used.push(key.clone());
            out.extend_from_slice(&key);
            out.push(b':');
            self.ws(out);
            self.value(out, depth);
        }
        self.ws(out);
        out.push(b'}');
    }

    fn array(&mut self, out: &mut Vec<u8>, depth: usize) {
        out.push(b'[');
        let n = self.rng.below(6);
        for i in 0..n {
            if i > 0 {
                out.push(b',');
                self.ws(out);
            }
            self.value(out, depth);
        }
        out.push(b']');
    }

    /// Emits one key (always ends with the closing quote; see `object` for
    /// the uniqueness guarantee layered on top).
    fn key(&mut self, out: &mut Vec<u8>) {
        if self.rng.below(4) == 0 {
            self.string(out);
        } else {
            let k = KEYS[self.rng.below(KEYS.len() as u64) as usize];
            out.push(b'"');
            out.extend_from_slice(k.as_bytes());
            out.push(b'"');
        }
    }

    fn primitive(&mut self, out: &mut Vec<u8>) {
        match self.rng.below(6) {
            0 => out.extend_from_slice(b"true"),
            1 => out.extend_from_slice(b"false"),
            2 => out.extend_from_slice(b"null"),
            3 => {
                let v = self.rng.next_u64() as i32;
                out.extend_from_slice(format!("{v}").as_bytes());
            }
            4 => {
                let a = self.rng.below(1000);
                let b = self.rng.below(1000);
                out.extend_from_slice(format!("{a}.{b}").as_bytes());
            }
            _ => {
                let m = self.rng.below(100);
                let e = self.rng.below(30) as i64 - 15;
                out.extend_from_slice(format!("{m}e{e}").as_bytes());
            }
        }
    }

    /// Emits one string value, exercising every escape form the validator
    /// distinguishes: simple escapes, `\uXXXX` (non-surrogate), surrogate
    /// pairs, raw multi-byte UTF-8 of every length, long filler and
    /// backslash runs that straddle 64-byte word boundaries.
    fn string(&mut self, out: &mut Vec<u8>) {
        out.push(b'"');
        for _ in 0..self.rng.below(10) {
            match self.rng.below(16) {
                0 => out.extend_from_slice(b"\\n"),
                1 => out.extend_from_slice(b"\\\""),
                2 => out.extend_from_slice(b"\\\\"),
                3 => out.extend_from_slice(b"\\/"),
                4 => {
                    // Non-surrogate BMP escape.
                    let mut v = (self.rng.next_u64() & 0xFFFF) as u32;
                    if (0xD800..=0xDFFF).contains(&v) {
                        v -= 0xD800;
                    }
                    out.extend_from_slice(format!("\\u{v:04x}").as_bytes());
                }
                5 => {
                    // Surrogate pair for a supplementary-plane character.
                    let hi = 0xD800 + self.rng.below(0x400);
                    let lo = 0xDC00 + self.rng.below(0x400);
                    out.extend_from_slice(format!("\\u{hi:04x}\\u{lo:04x}").as_bytes());
                }
                6 => {
                    // Raw multi-byte UTF-8: 2-, 3- and 4-byte sequences.
                    let c = ['\u{e9}', '\u{6c49}', '\u{1F600}', '\u{7ff}', '\u{fffd}']
                        [self.rng.below(5) as usize];
                    let mut buf = [0u8; 4];
                    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                }
                7 => {
                    // Filler run: pushes later content across word boundaries.
                    let n = self.rng.below(90) as usize;
                    out.extend(std::iter::repeat_n(b'x', n));
                }
                8 => {
                    // Backslash run (even, so the string stays valid).
                    let n = self.rng.below(6) as usize;
                    out.extend(std::iter::repeat_n(b'\\', n * 2));
                }
                _ => {
                    let b = b' ' + (self.rng.below(94) as u8);
                    if b == b'"' || b == b'\\' {
                        out.push(b'.');
                    } else {
                        out.push(b);
                    }
                }
            }
        }
        out.push(b'"');
    }
}

/// Grammar-aware JSONPath query generator over the same key pool as
/// [`Gen`], deterministic in its seed.
///
/// Covers the full grammar: child steps, wildcards, indexes, slices,
/// descendant `..` (wrapping a child, wildcard, or index), name and index
/// unions, and comparison filters whose `@`-paths reference the key pool.
/// Depth is bounded (at most [`QueryGen::MAX_STEPS`] steps, at most two
/// descendants) so generated queries stay far from the automaton's
/// position-set limit, and every emitted string parses.
#[derive(Debug)]
pub struct QueryGen {
    rng: SplitMix64,
}

impl QueryGen {
    /// Step budget per generated query.
    pub const MAX_STEPS: usize = 5;

    /// Creates a generator for one query.
    pub fn new(seed: u64) -> Self {
        QueryGen {
            rng: SplitMix64::new(seed),
        }
    }

    /// Generates one syntactically valid JSONPath query.
    pub fn query(&mut self) -> String {
        let mut out = String::from("$");
        let n = self.rng.below(Self::MAX_STEPS as u64 + 1);
        let mut descendants = 0;
        for _ in 0..n {
            let roll = self.rng.below(10);
            if roll < 2 && descendants < 2 {
                descendants += 1;
                out.push_str("..");
                match self.rng.below(3) {
                    0 => out.push_str(self.key()),
                    1 => out.push('*'),
                    _ => out.push_str(&format!("[{}]", self.rng.below(4))),
                }
            } else {
                self.simple_step(&mut out);
            }
        }
        out
    }

    fn simple_step(&mut self, out: &mut String) {
        match self.rng.below(8) {
            0 | 1 => {
                out.push('.');
                out.push_str(self.key());
            }
            2 => out.push_str(".*"),
            3 => out.push_str(&format!("[{}]", self.rng.below(4))),
            4 => {
                let a = self.rng.below(3);
                let d = 1 + self.rng.below(3);
                out.push_str(&format!("[{a}:{}]", a + d));
            }
            5 => out.push_str("[*]"),
            6 => match self.rng.below(2) {
                0 => {
                    let a = self.key();
                    let b = self.key();
                    out.push_str(&format!("['{a}','{b}']"));
                }
                _ => {
                    let a = self.rng.below(3);
                    let d = 1 + self.rng.below(3);
                    out.push_str(&format!("[{a},{}]", a + d));
                }
            },
            _ => self.filter_step(out),
        }
    }

    fn filter_step(&mut self, out: &mut String) {
        let at = match self.rng.below(3) {
            0 => String::from("@"),
            1 => format!("@.{}", self.key()),
            _ => format!("@[{}]", self.rng.below(3)),
        };
        let op = ["==", "!=", "<", "<=", ">", ">="][self.rng.below(6) as usize];
        let lit = match self.rng.below(4) {
            0 => format!("{}", self.rng.next_u64() as i16),
            1 => format!("'{}'", self.key()),
            2 => String::from("true"),
            _ => String::from("null"),
        };
        out.push_str(&format!("[?({at} {op} {lit})]"));
    }

    fn key(&mut self) -> &'static str {
        KEYS[self.rng.below(KEYS.len() as u64) as usize]
    }
}

/// Delta-debugging shrinker over the *query* space: removes whole steps,
/// then simplifies the survivors (descendant → its inner step, filter →
/// `[*]`, unions → their first branch, wildcards → a pool key) as long as
/// `still_fails` keeps returning `true`. The result always parses.
pub fn shrink_query(query: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    use jsonpath::{Path, Step};

    let render = |steps: &[Step]| Path::new(steps.to_vec()).to_string();
    let Ok(path) = query.parse::<Path>() else {
        return query.to_string();
    };
    let mut steps: Vec<Step> = path.steps().to_vec();

    // Phase 1: drop runs of steps, halving the chunk like byte-level ddmin.
    let mut chunk = steps.len().max(1) / 2;
    while chunk > 0 {
        let mut at = 0;
        while at + chunk <= steps.len() {
            let mut cand = steps.clone();
            cand.drain(at..at + chunk);
            if still_fails(&render(&cand)) {
                steps = cand;
            } else {
                at += chunk;
            }
        }
        chunk /= 2;
    }

    // Phase 2: simplify each surviving step to a cheaper construct.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..steps.len() {
            let simpler: Option<Step> = match &steps[i] {
                Step::Descendant(inner) => Some((**inner).clone()),
                Step::Filter(_) => Some(Step::AnyElement),
                Step::NameUnion(names) => names.first().cloned().map(Step::Child),
                Step::IndexUnion(idxs) => idxs.first().copied().map(Step::Index),
                Step::Slice(a, _) => Some(Step::Index(*a)),
                Step::AnyChild => Some(Step::Child(KEYS[0].to_string())),
                _ => None,
            };
            if let Some(s) = simpler {
                let mut cand = steps.clone();
                cand[i] = s;
                if cand[i] != steps[i] && still_fails(&render(&cand)) {
                    steps = cand;
                    changed = true;
                }
            }
        }
    }
    render(&steps)
}

/// Byte offsets strictly inside a string literal where a fault can be
/// spliced without being reinterpreted by surrounding syntax: the validator
/// is at its plain in-string state there, the byte at the offset is ASCII
/// (never `"`, `\`, or an escape payload) and the preceding byte is ASCII
/// too (so truncating at the offset never splits a multi-byte character).
fn plain_string_positions(doc: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut in_string = false;
    let mut i = 0;
    while i < doc.len() {
        let b = doc[i];
        if !in_string {
            if b == b'"' {
                in_string = true;
            }
            i += 1;
            continue;
        }
        match b {
            b'\\' => {
                // Skip the whole escape so hex payloads are never mistaken
                // for plain characters.
                if doc.get(i + 1) == Some(&b'u') {
                    i += 6;
                } else {
                    i += 2;
                }
            }
            b'"' => {
                in_string = false;
                i += 1;
            }
            _ => {
                if b < 0x80 && i > 0 && doc[i - 1] < 0x80 {
                    out.push(i);
                }
                i += 1;
            }
        }
    }
    out
}

/// Positions of container closers (`}` / `]`) outside string literals.
fn closer_positions(doc: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut in_string = false;
    let mut i = 0;
    while i < doc.len() {
        let b = doc[i];
        if in_string {
            match b {
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'}' | b']' => out.push(i),
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// Injects one fault of the given class into a *valid* document, returning
/// the damaged bytes and the exact `(offset, reason)` verdict
/// [`crate::validate_record`] must produce for them. Returns `None` when the
/// document offers no injection site for the class (e.g. no string literal,
/// or no container closer for [`InvalidReason::Unbalanced`]).
///
/// The prediction is part of the oracle: a detector that fires at a
/// *different* place than the model predicts is a bug even if it fires.
pub fn inject(doc: &[u8], class: InvalidReason, seed: u64) -> Option<(Vec<u8>, usize)> {
    let mut rng = SplitMix64::new(seed);
    let pick = |rng: &mut SplitMix64, sites: &[usize]| -> Option<usize> {
        if sites.is_empty() {
            None
        } else {
            Some(sites[rng.below(sites.len() as u64) as usize])
        }
    };
    let splice = |at: usize, bytes: &[u8]| -> Vec<u8> {
        let mut out = Vec::with_capacity(doc.len() + bytes.len());
        out.extend_from_slice(&doc[..at]);
        out.extend_from_slice(bytes);
        out.extend_from_slice(&doc[at..]);
        out
    };
    match class {
        InvalidReason::Utf8 => {
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((splice(at, &[0xFF]), at))
        }
        InvalidReason::ControlChar => {
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((splice(at, &[0x01]), at))
        }
        InvalidReason::BadEscape => {
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((splice(at, b"\\x"), at + 1))
        }
        InvalidReason::BadUnicodeEscape => {
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((splice(at, b"\\uq"), at + 2))
        }
        InvalidReason::LoneSurrogate => {
            // The next character after the spliced high surrogate is a plain
            // one by construction, so the pair can never complete.
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((splice(at, b"\\ud800"), at))
        }
        InvalidReason::UnterminatedString => {
            let at = pick(&mut rng, &plain_string_positions(doc))?;
            Some((doc[..at].to_vec(), at))
        }
        InvalidReason::TrailingGarbage => {
            // The space first closes a bare-primitive root, making the
            // verdict uniform across root shapes.
            let mut out = doc.to_vec();
            out.extend_from_slice(b" @");
            Some((out, doc.len() + 1))
        }
        InvalidReason::Unbalanced => {
            let at = *closer_positions(doc).last()?;
            let mut out = doc.to_vec();
            out.remove(at);
            let end = out.len();
            Some((out, end))
        }
    }
}

/// How a fuzz case was produced, i.e. what the oracle may assert about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseLabel {
    /// Grammar-generated: all engines, kernels and validation modes must
    /// accept it with byte-identical match streams.
    Valid,
    /// One labeled fault: Strict must reject with exactly this verdict.
    Fault {
        /// The injected violation class.
        reason: InvalidReason,
        /// The byte offset Strict validation must report.
        offset: usize,
    },
    /// Arbitrary byte-level damage: no validity prediction; the oracle
    /// checks cross-kernel invariance and DOM-ground-truth agreement only.
    Mutated,
}

/// One deterministic fuzz case.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The record bytes (not necessarily valid JSON, or even UTF-8).
    pub bytes: Vec<u8>,
    /// What the oracle may assert about `bytes`.
    pub label: CaseLabel,
}

/// All fault classes [`inject`] knows how to produce.
pub const FAULT_CLASSES: &[InvalidReason] = &[
    InvalidReason::Utf8,
    InvalidReason::ControlChar,
    InvalidReason::BadEscape,
    InvalidReason::BadUnicodeEscape,
    InvalidReason::LoneSurrogate,
    InvalidReason::UnterminatedString,
    InvalidReason::TrailingGarbage,
    InvalidReason::Unbalanced,
];

/// Derives one fuzz case from a seed: ~40% pristine documents, ~40% labeled
/// single-fault documents, ~20% unlabeled mutations. Deterministic — the
/// seed alone reproduces the case.
pub fn case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let doc = Gen::new(rng.next_u64()).document();
    match rng.below(5) {
        0 | 1 => FuzzCase {
            bytes: doc,
            label: CaseLabel::Valid,
        },
        2 | 3 => {
            let class = FAULT_CLASSES[rng.below(FAULT_CLASSES.len() as u64) as usize];
            match inject(&doc, class, rng.next_u64()) {
                Some((bytes, offset)) => FuzzCase {
                    bytes,
                    label: CaseLabel::Fault {
                        reason: class,
                        offset,
                    },
                },
                // No injection site (e.g. a stringless document): the
                // pristine document is still a useful case.
                None => FuzzCase {
                    bytes: doc,
                    label: CaseLabel::Valid,
                },
            }
        }
        _ => FuzzCase {
            bytes: crate::faults::mutate(&doc, rng.next_u64()),
            label: CaseLabel::Mutated,
        },
    }
}

/// Greedy delta-debugging shrinker: repeatedly removes chunks of halving
/// size as long as `still_fails` keeps returning `true` for the candidate.
/// The result is locally minimal at 1-byte granularity with respect to
/// chunk removal.
pub fn shrink(bytes: &[u8], mut still_fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = bytes.to_vec();
    let mut chunk = cur.len().max(1) / 2;
    while chunk > 0 {
        let mut at = 0;
        while at + chunk <= cur.len() {
            let mut cand = Vec::with_capacity(cur.len() - chunk);
            cand.extend_from_slice(&cur[..at]);
            cand.extend_from_slice(&cur[at + chunk..]);
            if still_fails(&cand) {
                cur = cand;
            } else {
                at += chunk;
            }
        }
        chunk /= 2;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_record, validate_record_with, Kernel};

    #[test]
    fn generator_produces_strict_valid_documents() {
        for seed in 0..400 {
            let doc = Gen::new(seed).document();
            assert_eq!(
                validate_record(&doc),
                None,
                "seed {seed}: generator emitted invalid JSON: {:?}",
                String::from_utf8_lossy(&doc)
            );
        }
    }

    #[test]
    fn generator_exercises_block_boundaries() {
        // Documents must regularly exceed one and two 64-byte words, or the
        // whole fuzzer only tests the single-block fast path.
        let mut over64 = 0;
        let mut over128 = 0;
        for seed in 0..400 {
            let len = Gen::new(seed).document().len();
            over64 += usize::from(len > 64);
            over128 += usize::from(len > 128);
        }
        assert!(over64 > 100, "only {over64}/400 docs exceed one word");
        assert!(over128 > 40, "only {over128}/400 docs exceed two words");
    }

    #[test]
    fn injected_faults_match_their_predicted_verdict() {
        let mut hits = vec![0usize; FAULT_CLASSES.len()];
        for seed in 0..200 {
            let doc = Gen::new(seed).document();
            for (ci, &class) in FAULT_CLASSES.iter().enumerate() {
                let Some((bytes, offset)) = inject(&doc, class, seed ^ 0xABCD) else {
                    continue;
                };
                hits[ci] += 1;
                assert_eq!(
                    validate_record(&bytes),
                    Some((offset, class)),
                    "seed {seed} class {class:?} doc {:?}",
                    String::from_utf8_lossy(&bytes)
                );
            }
        }
        for (ci, &class) in FAULT_CLASSES.iter().enumerate() {
            assert!(
                hits[ci] > 50,
                "class {class:?} injected only {} times",
                hits[ci]
            );
        }
    }

    #[test]
    fn validator_kernels_agree_on_fuzz_cases() {
        for seed in 0..300 {
            let c = case(seed);
            let reference = validate_record_with(&c.bytes, Kernel::Scalar);
            for &k in Kernel::all() {
                if k.is_supported() {
                    assert_eq!(
                        validate_record_with(&c.bytes, k),
                        reference,
                        "seed {seed} kernel {k:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_verdict_matches_validator_on_fuzz_cases() {
        // The streaming engine's Strict verdict (found mid-skip, at cursor
        // chokepoints, or at end-of-record reconciliation) must equal the
        // standalone pre-pass used by the baseline engines.
        let query = crate::JsonSki::compile("$.a")
            .unwrap()
            .with_config(crate::EngineConfig::builder().strict().build());
        for seed in 0..300 {
            let c = case(seed);
            let expected = validate_record(&c.bytes);
            match query.matches(&c.bytes) {
                Ok(_) => assert_eq!(expected, None, "seed {seed}: engine accepted"),
                Err(crate::StreamError::Invalid { pos, reason }) => assert_eq!(
                    expected,
                    Some((pos, reason)),
                    "seed {seed}: engine and validator disagree"
                ),
                // A structural (token-level) error outside the validator's
                // scope — legal only when the validator found nothing.
                Err(_) => assert_eq!(expected, None, "seed {seed}: structural masks invalid"),
            }
        }
    }

    #[test]
    fn labeled_cases_carry_the_right_verdict() {
        let mut faults = 0;
        for seed in 0..300 {
            let c = case(seed);
            if let CaseLabel::Fault { reason, offset } = c.label {
                faults += 1;
                assert_eq!(
                    validate_record(&c.bytes),
                    Some((offset, reason)),
                    "seed {seed}"
                );
            }
        }
        assert!(faults > 60, "only {faults}/300 cases were labeled faults");
    }

    #[test]
    fn query_generator_always_parses_and_covers_the_grammar() {
        use jsonpath::{Path, Step};
        let (mut desc, mut filt, mut uni, mut wild) = (0, 0, 0, 0);
        for seed in 0..500 {
            let q = QueryGen::new(seed).query();
            let path: Path = q
                .parse()
                .unwrap_or_else(|e| panic!("seed {seed}: {q}: {e}"));
            assert!(path.len() <= QueryGen::MAX_STEPS, "{q}");
            for s in path.steps() {
                match s {
                    Step::Descendant(_) => desc += 1,
                    Step::Filter(_) => filt += 1,
                    Step::NameUnion(_) | Step::IndexUnion(_) => uni += 1,
                    Step::AnyChild | Step::AnyElement => wild += 1,
                    _ => {}
                }
            }
        }
        // Every construct of the extended grammar must actually appear.
        assert!(desc > 50, "descendants: {desc}");
        assert!(filt > 50, "filters: {filt}");
        assert!(uni > 30, "unions: {uni}");
        assert!(wild > 50, "wildcards: {wild}");
    }

    #[test]
    fn query_shrinker_minimizes_over_the_new_grammar() {
        // Predicate: query still matches something in this document. The
        // descendant is load-bearing (the `a` is nested), everything else
        // should shrink away.
        let doc: &[u8] = br#"{"x": {"y": {"a": 1}}, "tags": [2, 3]}"#;
        let fails = |q: &str| {
            crate::JsonSki::compile(q)
                .ok()
                .and_then(|e| e.matches(doc).ok())
                .map(|ms| !ms.is_empty() && ms.iter().all(|m| m.as_raw() == b"1"))
                .unwrap_or(false)
        };
        let noisy = "$..*..a";
        assert!(fails(noisy));
        let small = shrink_query(noisy, fails);
        assert!(fails(&small), "shrunk query no longer fails: {small}");
        assert!(small.len() < noisy.len(), "shrinker removed nothing");
        // The descendant is the witness: a plain `.a` would miss the
        // nested key, so at least one `..` must survive.
        assert!(small.contains(".."), "{small}");

        // A filter that is the failure witness survives simplification.
        let doc2: &[u8] = br#"[{"q": 9}, {"q": 1}]"#;
        let fails2 = |q: &str| {
            crate::JsonSki::compile(q)
                .map(|e| e.matches(doc2).map(|m| m.len()).unwrap_or(0) == 1)
                .unwrap_or(false)
        };
        let small2 = shrink_query("$[?(@.q > 4)].*[0]..x", fails2);
        assert!(fails2(&small2), "{small2}");
        assert!(
            small2.contains("?(@.q"),
            "filter was load-bearing: {small2}"
        );
    }

    #[test]
    fn shrinker_preserves_the_failure_and_shrinks() {
        let doc = br#"{"a": [1, 2, {"b": "xxxxxxxxxxxxxxxxxxxxxxxx"}], "c": null}"#;
        let (bytes, _) = inject(doc, InvalidReason::ControlChar, 7).unwrap();
        let fails = |b: &[u8]| matches!(validate_record(b), Some((_, InvalidReason::ControlChar)));
        assert!(fails(&bytes));
        let small = shrink(&bytes, fails);
        assert!(fails(&small), "shrunk case no longer fails");
        assert!(small.len() < bytes.len(), "shrinker removed nothing");
        // The control byte itself can never be shrunk away.
        assert!(small.contains(&0x01));
    }
}
