//! The five groups of bit-parallel fast-forward functions (paper Table 1,
//! Algorithms 4 and 5).
//!
//! All functions advance the [`Cursor`] without tokenizing the skipped
//! characters and record the skipped span in [`FastForwardStats`] under the
//! group of their *entry point* (nested skips performed inside a G1 search
//! are accounted to G1, matching how Table 6 partitions skipped characters).
//!
//! Position conventions (documented per function): functions that go *over*
//! a value leave the cursor immediately after it; functions that go *to* an
//! end leave the cursor *at* the closing `}`/`]` so the caller can consume
//! it and emit the automaton transition.

use simdbits::bits;

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::stats::{FastForwardStats, Group};

/// Byte span of a skipped value, for G3 outputting.
pub type Span = (usize, usize);

/// G2/G3 `goOverObj` (Algorithm 4): the cursor must be at a `{`; skips the
/// whole object using counting-based pairing and leaves the cursor just
/// after its `}`. Returns the object's span.
///
/// # Errors
///
/// [`StreamError::Unbalanced`] if the braces never pair.
pub fn go_over_obj(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<Span, StreamError> {
    go_over_container(cur, stats, group, b'{', b'}')
}

/// G2/G3 `goOverAry`: bracket analog of [`go_over_obj`].
///
/// # Errors
///
/// [`StreamError::Unbalanced`] if the brackets never pair.
pub fn go_over_ary(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<Span, StreamError> {
    go_over_container(cur, stats, group, b'[', b']')
}

fn go_over_container(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
    open: u8,
    close: u8,
) -> Result<Span, StreamError> {
    let start = cur.pos();
    debug_assert_eq!(cur.peek(), Some(open));
    cur.bump(); // consume the opener; depth = 1
    let end = cur.seek_container_end(open, close, 1)?;
    cur.set_pos(end + 1);
    stats.record(group, (end + 1 - start) as u64);
    Ok((start, end + 1))
}

/// G4 `goToObjEnd`: like [`go_over_obj`] but invoked *inside* an object
/// (between attributes); leaves the cursor **at** the closing `}`.
///
/// # Errors
///
/// [`StreamError::Unbalanced`] if the braces never pair.
pub fn go_to_obj_end(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<usize, StreamError> {
    let start = cur.pos();
    let end = cur.seek_container_end(b'{', b'}', 1)?;
    cur.set_pos(end);
    stats.record(group, (end - start) as u64);
    Ok(end)
}

/// G5 `goToAryEnd`: bracket analog of [`go_to_obj_end`]; leaves the cursor
/// **at** the closing `]`.
///
/// # Errors
///
/// [`StreamError::Unbalanced`] if the brackets never pair.
pub fn go_to_ary_end(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<usize, StreamError> {
    let start = cur.pos();
    let end = cur.seek_container_end(b'[', b']', 1)?;
    cur.set_pos(end);
    stats.record(group, (end - start) as u64);
    Ok(end)
}

/// G2/G3 `goOverPriAttr` / `goOverPriElem` (Algorithm 4, lines 18–25): the
/// cursor must be at the first character of a primitive value; skips to its
/// terminating delimiter using a comma structural interval, leaving the
/// cursor **at** the delimiter (`,` or the enclosing container's closer).
///
/// Returns the primitive's span with trailing whitespace trimmed.
///
/// For a primitive at the very top level (a bare root), the span runs to
/// the end of the input.
pub fn go_over_primitive(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<Span, StreamError> {
    let start = cur.pos();
    // A string primitive may contain unmasked-looking delimiters only inside
    // quotes, which the classifier has masked; numbers/true/false/null
    // contain none. The first structural `,`/`}`/`]` therefore terminates
    // the value (the `}` check of Algorithm 4 line 22 generalized to both
    // closers so the same routine serves attributes and elements).
    let delim = cur.next_pos_where(start, |b| b.comma | b.rbrace | b.rbracket);
    let end = delim.unwrap_or(cur.input().len());
    cur.set_pos(end);
    let trimmed = trim_span_end(cur.input(), start, end);
    stats.record(group, (end - start) as u64);
    Ok((start, trimmed))
}

/// Enhanced G1 `goOverPriAttrs`/`goOverPriElems` (Algorithm 5, lines 11–18):
/// from the start of a primitive value, fast-forwards over *consecutive
/// primitive values* until the next `{` or `[` (a container value worth
/// examining) or the enclosing container's closer.
///
/// Returns the number of commas passed, which equals the number of element
/// boundaries crossed — the array caller uses it to keep the index counter
/// exact (paper Section 4.2: "the fast-forward should track a counter").
/// The cursor is left at the stopping character (`{`, `[`, `}` or `]`).
pub fn go_over_primitives_to_opener(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    group: Group,
) -> Result<usize, StreamError> {
    let start = cur.pos();
    let len = cur.input().len();
    if start >= len {
        return Err(StreamError::UnexpectedEof { expected: "value" });
    }
    let mut w = start / 64;
    let mut mask = !bits::mask_below((start % 64) as u32);
    let mut commas = 0usize;
    let words = cur.word_count();
    while w < words {
        let bm = cur.word(w);
        let stops = (bm.openers() | bm.closers()) & mask;
        if stops != 0 {
            let bit = stops.trailing_zeros();
            // Count the commas passed before the stop position.
            commas += (bm.comma & mask & bits::mask_below(bit)).count_ones() as usize;
            let end = w * 64 + bit as usize;
            cur.set_pos(end);
            stats.record(group, (end - start) as u64);
            return Ok(commas);
        }
        commas += (bm.comma & mask).count_ones() as usize;
        mask = u64::MAX;
        w += 1;
    }
    Err(StreamError::Unbalanced { pos: len })
}

/// G1 `goToObjAttr`/`goToAryAttr` (Algorithm 5): inside an object (cursor
/// after the `{` or after an attribute's delimiter), fast-forwards to the
/// next attribute whose value starts with `want_open` (`b'{'` or `b'['`),
/// skipping non-matching attributes *without extracting their names* by
/// jumping colon interval to colon interval.
///
/// On success returns the matching attribute's name span, with the cursor
/// left at the value's opener. Returns `None` when the object has no more
/// such attributes; the cursor is then **at** the closing `}`.
///
/// # Errors
///
/// Structural errors if the object is malformed on the examined path.
pub fn go_to_attr_with_opener(
    cur: &mut Cursor<'_>,
    stats: &mut FastForwardStats,
    want_open: u8,
) -> Result<Option<Span>, StreamError> {
    let entry = cur.pos();
    loop {
        // Next attribute's colon, or the end of this object — whichever
        // comes first. Values between attributes have been fully skipped,
        // so the scan cannot see nested colons.
        let hit = cur.next_pos_where(cur.pos(), |b| b.colon | b.rbrace);
        let Some(hit) = hit else {
            return Err(StreamError::Unbalanced {
                pos: cur.input().len(),
            });
        };
        if cur.input()[hit] == b'}' {
            cur.set_pos(hit);
            stats.record(Group::G1, (hit - entry) as u64);
            return Ok(None);
        }
        // `hit` is the colon; the value starts after it.
        let colon = hit;
        cur.set_pos(colon + 1);
        cur.skip_ws();
        let value_byte = cur.peek().ok_or(StreamError::UnexpectedEof {
            expected: "attribute value",
        })?;
        if value_byte == want_open {
            // Matched type: recover the attribute name (the string just
            // before the colon) from the raw buffer — only matched-type
            // attributes pay for name extraction.
            let span = extract_name_before(cur.input(), colon)?;
            stats.record(
                Group::G1,
                (span.0.saturating_sub(1)).saturating_sub(entry) as u64,
            );
            return Ok(Some(span));
        }
        // Wrong type: skip the value wholesale and continue.
        match value_byte {
            b'{' => {
                let value_start = cur.pos();
                cur.bump();
                let end = cur.seek_container_end(b'{', b'}', 1)?;
                cur.set_pos(end + 1);
                stats.record(Group::G1, (end + 1 - value_start) as u64);
            }
            b'[' => {
                let value_start = cur.pos();
                cur.bump();
                let end = cur.seek_container_end(b'[', b']', 1)?;
                cur.set_pos(end + 1);
                stats.record(Group::G1, (end + 1 - value_start) as u64);
            }
            _ => {
                // Primitive: batch-skip consecutive primitive attributes to
                // the next opener or the object end (Algorithm 5's
                // goOverPriAttrs). The counter return is irrelevant here.
                go_over_primitives_to_opener(cur, stats, Group::G1)?;
                let stop = cur.peek().expect("stop char exists");
                if stop == b'}' {
                    stats.record(Group::G1, 0);
                    return Ok(None);
                }
                if stop == b']' {
                    return Err(StreamError::Unexpected {
                        expected: "`}` or next attribute",
                        found: b']',
                        pos: cur.pos(),
                    });
                }
                if stop == want_open {
                    let colon = last_colon_before(cur)?;
                    let span = extract_name_before(cur.input(), colon)?;
                    return Ok(Some(span));
                }
                // Wrong-type opener: loop around; the next iteration's colon
                // scan starts *after* this value once we skip it here.
                let value_start = cur.pos();
                cur.bump();
                let (open, close) = if stop == b'{' {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                let end = cur.seek_container_end(open, close, 1)?;
                cur.set_pos(end + 1);
                stats.record(Group::G1, (end + 1 - value_start) as u64);
            }
        }
    }
}

/// Finds the structural colon immediately preceding the cursor position by
/// scanning the raw bytes backwards (the name/colon lie within the bytes
/// the batched skip just passed, so this stays within already-read input).
fn last_colon_before(cur: &Cursor<'_>) -> Result<usize, StreamError> {
    let input = cur.input();
    let mut i = cur.pos();
    while i > 0 {
        i -= 1;
        match input[i] {
            b':' => return Ok(i),
            b' ' | b'\t' | b'\n' | b'\r' => continue,
            _ => continue, // we may pass over a skipped primitive + comma
        }
    }
    Err(StreamError::Unexpected {
        expected: "`:`",
        found: input[0],
        pos: 0,
    })
}

/// Extracts the attribute-name span whose closing quote precedes `colon`,
/// scanning backwards over raw bytes. Handles escaped quotes by backslash
/// run-length parity.
fn extract_name_before(input: &[u8], colon: usize) -> Result<Span, StreamError> {
    let mut i = colon;
    // Skip whitespace between the closing quote and the colon.
    loop {
        if i == 0 {
            return Err(StreamError::Unexpected {
                expected: "attribute name",
                found: input[0],
                pos: 0,
            });
        }
        i -= 1;
        match input[i] {
            b' ' | b'\t' | b'\n' | b'\r' => continue,
            b'"' => break,
            b => {
                return Err(StreamError::Unexpected {
                    expected: "`\"` before `:`",
                    found: b,
                    pos: i,
                })
            }
        }
    }
    let close = i;
    // Scan back to the opening quote: a quote is the opener iff it is
    // preceded by an even number of backslashes.
    let mut j = close;
    while j > 0 {
        j -= 1;
        if input[j] == b'"' {
            let mut bs = 0;
            while bs < j && input[j - 1 - bs] == b'\\' {
                bs += 1;
            }
            if bs % 2 == 0 {
                return Ok((j + 1, close));
            }
        }
    }
    Err(StreamError::Unexpected {
        expected: "opening `\"` of attribute name",
        found: input[close],
        pos: close,
    })
}

fn trim_span_end(input: &[u8], start: usize, mut end: usize) -> usize {
    while end > start && matches!(input[end - 1], b' ' | b'\t' | b'\n' | b'\r') {
        end -= 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cursor_at<'a>(input: &'a [u8], pos: usize) -> Cursor<'a> {
        let mut c = Cursor::new(input);
        c.set_pos(pos);
        c
    }

    #[test]
    fn go_over_obj_skips_and_counts() {
        let v = br#"{"a": {"b": [1, 2]}, "c": 3} , next"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let (s, e) = go_over_obj(&mut cur, &mut st, Group::G2).unwrap();
        assert_eq!(&v[s..e], br#"{"a": {"b": [1, 2]}, "c": 3}"#);
        assert_eq!(cur.pos(), e);
        assert_eq!(st.skipped(Group::G2), e as u64);
    }

    #[test]
    fn go_over_ary_skips_nested() {
        let v = br#"[[1, [2]], {"x": [3]}] tail"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let (s, e) = go_over_ary(&mut cur, &mut st, Group::G2).unwrap();
        assert_eq!(&v[s..e], br#"[[1, [2]], {"x": [3]}]"#);
    }

    #[test]
    fn go_to_obj_end_stops_at_brace() {
        // Positioned inside the object after the first attribute.
        let v = br#"{"a": 1, "b": {"c": 2}, "d": 3}"#;
        let mut cur = cursor_at(v, 8); // at the space after the comma
        let mut st = FastForwardStats::new();
        let end = go_to_obj_end(&mut cur, &mut st, Group::G4).unwrap();
        assert_eq!(end, v.len() - 1);
        assert_eq!(v[end], b'}');
        assert_eq!(cur.pos(), end);
    }

    #[test]
    fn go_to_ary_end_stops_at_bracket() {
        let v = br#"[1, [2, 3], {"a": 4}, 5] after"#;
        let mut cur = cursor_at(v, 2);
        let mut st = FastForwardStats::new();
        let end = go_to_ary_end(&mut cur, &mut st, Group::G5).unwrap();
        assert_eq!(v[end], b']');
        assert_eq!(end, 23);
    }

    #[test]
    fn go_over_primitive_number() {
        let v = br#"123.5e2 , "next""#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let (s, e) = go_over_primitive(&mut cur, &mut st, Group::G2).unwrap();
        assert_eq!(&v[s..e], b"123.5e2");
        assert_eq!(v[cur.pos()], b',');
    }

    #[test]
    fn go_over_primitive_string_with_delimiters_inside() {
        let v = br#""a,b}c]d" }"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let (s, e) = go_over_primitive(&mut cur, &mut st, Group::G3).unwrap();
        assert_eq!(&v[s..e], br#""a,b}c]d""#);
        assert_eq!(v[cur.pos()], b'}');
    }

    #[test]
    fn go_over_primitive_at_root() {
        let v = b"true";
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let (s, e) = go_over_primitive(&mut cur, &mut st, Group::G3).unwrap();
        assert_eq!(&v[s..e], b"true");
        assert!(cur.at_end());
    }

    #[test]
    fn batched_primitive_skip_counts_commas() {
        let v = br#"1, "two", 3.0, null, {"x": 1}]"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let commas = go_over_primitives_to_opener(&mut cur, &mut st, Group::G1).unwrap();
        assert_eq!(commas, 4);
        assert_eq!(cur.peek(), Some(b'{'));
    }

    #[test]
    fn batched_primitive_skip_stops_at_closer() {
        let v = br#"1, 2, 3] , "#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let commas = go_over_primitives_to_opener(&mut cur, &mut st, Group::G1).unwrap();
        assert_eq!(commas, 2);
        assert_eq!(cur.peek(), Some(b']'));
    }

    #[test]
    fn go_to_attr_finds_object_attr_and_name() {
        let v = br#""a": 1, "b": [1, 2], "target": {"x": 9}, "z": 0}"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let span = go_to_attr_with_opener(&mut cur, &mut st, b'{')
            .unwrap()
            .expect("found");
        assert_eq!(&v[span.0..span.1], b"target");
        assert_eq!(cur.peek(), Some(b'{'));
    }

    #[test]
    fn go_to_attr_finds_array_attr() {
        let v = br#""a": 1, "b": {"c": 2}, "arr": [5], "z": 0}"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let span = go_to_attr_with_opener(&mut cur, &mut st, b'[')
            .unwrap()
            .expect("found");
        assert_eq!(&v[span.0..span.1], b"arr");
        assert_eq!(cur.peek(), Some(b'['));
    }

    #[test]
    fn go_to_attr_none_when_no_such_type() {
        let v = br#""a": 1, "b": "str", "c": 2.5} trailing"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let got = go_to_attr_with_opener(&mut cur, &mut st, b'{').unwrap();
        assert!(got.is_none());
        assert_eq!(cur.peek(), Some(b'}'));
    }

    #[test]
    fn go_to_attr_none_on_empty_object() {
        let v = br#" }"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let got = go_to_attr_with_opener(&mut cur, &mut st, b'{').unwrap();
        assert!(got.is_none());
        assert_eq!(cur.peek(), Some(b'}'));
    }

    #[test]
    fn go_to_attr_skips_colons_inside_strings() {
        let v = br#""a": "x:y", "obj": {"k": 1}}"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        let span = go_to_attr_with_opener(&mut cur, &mut st, b'{')
            .unwrap()
            .expect("found");
        assert_eq!(&v[span.0..span.1], b"obj");
    }

    #[test]
    fn extract_name_handles_escapes() {
        let v = br#"{"we\"ird" : 1"#;
        let colon = 11;
        assert_eq!(v[colon], b':');
        let (s, e) = extract_name_before(v, colon).unwrap();
        assert_eq!(&v[s..e], br#"we\"ird"#);
    }

    #[test]
    fn extract_name_rejects_missing_quote() {
        let v = b"{123 : 1";
        assert!(extract_name_before(v, 5).is_err());
    }

    #[test]
    fn stats_attribution_goes_to_entry_group() {
        let v = br#"{"a": 1}"#;
        let mut cur = cursor_at(v, 0);
        let mut st = FastForwardStats::new();
        go_over_obj(&mut cur, &mut st, Group::G3).unwrap();
        assert_eq!(st.skipped(Group::G3), v.len() as u64);
        assert_eq!(st.skipped(Group::G2), 0);
    }
}
