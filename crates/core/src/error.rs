//! Streaming errors.

use std::error::Error;
use std::fmt;

/// Error raised while streaming a JSON record.
///
/// Like the paper's JSONSki, fast-forwarded segments receive only structural
/// validation (brace/bracket pairing); errors are reported for malformed
/// syntax on the *examined* path and for pairing violations discovered while
/// fast-forwarding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// A specific byte was expected at `pos` but `found` was there instead.
    Unexpected {
        /// What the parser needed (as a human-readable token description).
        expected: &'static str,
        /// The byte actually found.
        found: u8,
        /// Byte offset in the input.
        pos: usize,
    },
    /// The input ended while more was required.
    UnexpectedEof {
        /// What the parser needed.
        expected: &'static str,
    },
    /// Brace/bracket pairing failed during fast-forwarding.
    Unbalanced {
        /// Byte offset where the imbalance was detected (input length when
        /// the record ended with containers still open).
        pos: usize,
    },
    /// Nesting exceeded the recursion limit (guards the call stack; the
    /// paper's recursive-descent design has the same implicit limit).
    TooDeep {
        /// Byte offset of the opener that exceeded the limit.
        pos: usize,
    },
    /// The per-record evaluation deadline
    /// ([`ResourceLimits::deadline`](crate::ResourceLimits::deadline))
    /// expired mid-scan.
    DeadlineExpired {
        /// Byte offset the scan had reached when the budget ran out.
        pos: usize,
    },
    /// Strict validation rejected the record
    /// ([`ValidationMode::Strict`](crate::ValidationMode::Strict) only).
    ///
    /// Unlike the other variants this covers bytes the engine *fast-forwards
    /// over*: the streaming validator inspects every classified word, so a
    /// malformed span cannot hide inside a skipped substructure.
    Invalid {
        /// Byte offset of the first invalid byte.
        pos: usize,
        /// Which well-formedness rule the byte violated.
        reason: InvalidReason,
    },
}

/// Why Strict validation rejected a record (see [`StreamError::Invalid`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvalidReason {
    /// Malformed UTF-8: overlong encoding, surrogate code point, value above
    /// U+10FFFF, stray continuation byte, or truncated sequence.
    Utf8,
    /// Unescaped control byte (`< 0x20`) inside a string literal.
    ControlChar,
    /// Backslash followed by a character outside `"\/bfnrtu`.
    BadEscape,
    /// `\u` not followed by four hex digits.
    BadUnicodeEscape,
    /// An unpaired UTF-16 surrogate in `\uXXXX` escapes.
    LoneSurrogate,
    /// The record ended inside a string literal.
    UnterminatedString,
    /// Non-whitespace bytes after the root value ended.
    TrailingGarbage,
    /// Brace/bracket structure did not balance at the validation layer.
    Unbalanced,
}

impl InvalidReason {
    /// Short stable identifier (used in error text and fuzzer labels).
    pub fn as_str(self) -> &'static str {
        match self {
            InvalidReason::Utf8 => "invalid UTF-8",
            InvalidReason::ControlChar => "unescaped control character in string",
            InvalidReason::BadEscape => "invalid escape sequence",
            InvalidReason::BadUnicodeEscape => "invalid \\u escape",
            InvalidReason::LoneSurrogate => "lone UTF-16 surrogate",
            InvalidReason::UnterminatedString => "unterminated string",
            InvalidReason::TrailingGarbage => "trailing garbage after value",
            InvalidReason::Unbalanced => "unbalanced structure",
        }
    }
}

impl fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Unexpected {
                expected,
                found,
                pos,
            } => write!(
                f,
                "expected {expected} at byte {pos}, found {:?}",
                *found as char
            ),
            StreamError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            StreamError::Unbalanced { pos } => {
                write!(f, "unbalanced braces or brackets at byte {pos}")
            }
            StreamError::TooDeep { pos } => {
                write!(f, "nesting exceeds recursion limit at byte {pos}")
            }
            StreamError::DeadlineExpired { pos } => {
                write!(f, "per-record deadline expired at byte {pos}")
            }
            StreamError::Invalid { pos, reason } => {
                write!(f, "strict validation failed at byte {pos}: {reason}")
            }
        }
    }
}

impl Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StreamError::Unexpected {
            expected: "`:`",
            found: b'x',
            pos: 7,
        };
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("':'") || e.to_string().contains("`:`"));
        assert!(StreamError::UnexpectedEof { expected: "value" }
            .to_string()
            .contains("end of input"));
        assert!(StreamError::Unbalanced { pos: 3 }.to_string().contains("3"));
        assert!(StreamError::TooDeep { pos: 9 }.to_string().contains("9"));
        assert!(StreamError::DeadlineExpired { pos: 4 }
            .to_string()
            .contains("deadline"));
        let inv = StreamError::Invalid {
            pos: 12,
            reason: InvalidReason::Utf8,
        };
        assert!(inv.to_string().contains("byte 12"));
        assert!(inv.to_string().contains("UTF-8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<StreamError>();
    }
}
