//! Tracked memory budgets: make resident bytes a first-class, bounded,
//! observable resource.
//!
//! The streaming design's whole premise is that you never materialize
//! what you don't need — but a long-lived daemon still holds *some*
//! bytes resident: queued request bodies, in-flight response buffers,
//! compiled-query caches, resident corpus indexes. Left uncounted, one
//! adversarial query (a descendant wildcard over a big corpus) can
//! balloon resident memory without bound and take the process down for
//! every tenant. This module gives those bytes a ledger.
//!
//! * [`MemBudget`] is the ledger: a global byte budget plus an optional
//!   per-tenant cap, with lock-free gauges (current usage, high-water
//!   mark) and typed denial counters for the metrics scrape.
//! * [`MemPermit`] is an RAII reservation: acquiring it charges the
//!   ledger, dropping it releases the charge. Permits can
//!   [`grow`](MemPermit::grow) and [`shrink`](MemPermit::shrink) as the
//!   buffer they track does.
//! * [`MemDenied`] is the typed refusal a caller turns into graceful
//!   degradation — evict something, switch to a streaming delivery mode,
//!   or shed the request — instead of an OOM kill.
//!
//! A budget of zero bytes means *unlimited*: reservations always succeed
//! but usage and high-water gauges still track, so the observability is
//! free even when the enforcement is off. Accounting is deliberately
//! approximate (callers charge the buffer sizes they know about, not
//! allocator internals); the invariant the ledger *does* guarantee is
//! that the sum of live permits never exceeds the budget, which bounds
//! the process's tracked resident set by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A typed reservation refusal: the ledger would exceed its global
/// budget or the requesting tenant's cap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemDenied {
    /// The tenant whose cap was hit, or `None` when the *global* budget
    /// was the binding constraint.
    pub tenant: Option<String>,
    /// Bytes the caller asked for.
    pub needed: usize,
    /// The limit that refused them (global budget or tenant cap).
    pub limit: usize,
    /// Bytes already reserved under that limit at refusal time.
    pub used: usize,
}

impl std::fmt::Display for MemDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.tenant {
            Some(t) => write!(
                f,
                "memory budget exceeded for tenant {t}: {} + {} > {} bytes",
                self.used, self.needed, self.limit
            ),
            None => write!(
                f,
                "global memory budget exceeded: {} + {} > {} bytes",
                self.used, self.needed, self.limit
            ),
        }
    }
}

impl std::error::Error for MemDenied {}

struct Inner {
    used: usize,
    tenants: HashMap<String, usize>,
}

/// A global tracked-memory ledger with per-tenant shares. Cheap to share
/// (`Arc`); all mutation goes through [`try_reserve`](MemBudget::try_reserve)
/// and permit drops.
pub struct MemBudget {
    /// Global budget in bytes; 0 = unlimited (track, never refuse).
    total: usize,
    /// Per-tenant cap in bytes; 0 = no per-tenant cap.
    tenant_cap: usize,
    inner: Mutex<Inner>,
    /// Mirrors `inner.used` for lock-free scrapes.
    used_gauge: AtomicU64,
    /// High-water mark of `inner.used` over the ledger's lifetime.
    peak_gauge: AtomicU64,
    /// Reservations refused by the global budget.
    pub denied_global: AtomicU64,
    /// Reservations refused by a tenant cap.
    pub denied_tenant: AtomicU64,
    /// Entries evicted (caches, resident indexes) to relieve pressure.
    /// Bumped by whoever runs the eviction, not by the ledger itself.
    pub evictions: AtomicU64,
    /// Responses switched from materialized to chunked-streaming delivery
    /// under pressure. Bumped by the server.
    pub forced_streams: AtomicU64,
    /// Corpora evaluated by streaming records from disk because their
    /// bytes could not be reserved resident. Bumped by the server.
    pub stream_fallbacks: AtomicU64,
}

impl std::fmt::Debug for MemBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemBudget")
            .field("total", &self.total)
            .field("tenant_cap", &self.tenant_cap)
            .field("used", &self.used())
            .field("peak", &self.peak())
            .finish()
    }
}

impl MemBudget {
    /// A ledger with a global budget of `total` bytes (0 = unlimited)
    /// and no per-tenant cap.
    pub fn new(total: usize) -> Arc<MemBudget> {
        MemBudget::with_tenant_cap(total, 0)
    }

    /// An unlimited ledger: reservations always succeed, gauges still
    /// track.
    pub fn unlimited() -> Arc<MemBudget> {
        MemBudget::new(0)
    }

    /// A ledger with a global budget and a per-tenant cap (either may be
    /// 0 = off). A nonzero tenant cap larger than a nonzero budget is
    /// clamped to the budget.
    pub fn with_tenant_cap(total: usize, tenant_cap: usize) -> Arc<MemBudget> {
        let tenant_cap = if total > 0 && tenant_cap > 0 {
            tenant_cap.min(total)
        } else {
            tenant_cap
        };
        Arc::new(MemBudget {
            total,
            tenant_cap,
            inner: Mutex::new(Inner {
                used: 0,
                tenants: HashMap::new(),
            }),
            used_gauge: AtomicU64::new(0),
            peak_gauge: AtomicU64::new(0),
            denied_global: AtomicU64::new(0),
            denied_tenant: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            forced_streams: AtomicU64::new(0),
            stream_fallbacks: AtomicU64::new(0),
        })
    }

    /// The configured global budget (0 = unlimited).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The configured per-tenant cap (0 = off).
    pub fn tenant_cap(&self) -> usize {
        self.tenant_cap
    }

    /// Bytes currently reserved (lock-free gauge).
    pub fn used(&self) -> usize {
        self.used_gauge.load(Ordering::Relaxed) as usize
    }

    /// High-water mark of reserved bytes over the ledger's lifetime.
    pub fn peak(&self) -> usize {
        self.peak_gauge.load(Ordering::Relaxed) as usize
    }

    /// Tries to reserve `bytes` for `tenant` (`None` charges the global
    /// ledger only — server-internal residents like caches use this).
    /// A successful reservation is released when the returned permit
    /// drops.
    ///
    /// # Errors
    ///
    /// [`MemDenied`] naming the binding limit; nothing is charged.
    pub fn try_reserve(
        self: &Arc<Self>,
        tenant: Option<&str>,
        bytes: usize,
    ) -> Result<MemPermit, MemDenied> {
        let mut inner = self.inner.lock().unwrap();
        if self.total > 0 && inner.used.saturating_add(bytes) > self.total {
            let denied = MemDenied {
                tenant: None,
                needed: bytes,
                limit: self.total,
                used: inner.used,
            };
            drop(inner);
            self.denied_global.fetch_add(1, Ordering::Relaxed);
            return Err(denied);
        }
        if let (Some(t), true) = (tenant, self.tenant_cap > 0) {
            let t_used = inner.tenants.get(t).copied().unwrap_or(0);
            if t_used.saturating_add(bytes) > self.tenant_cap {
                let denied = MemDenied {
                    tenant: Some(t.to_string()),
                    needed: bytes,
                    limit: self.tenant_cap,
                    used: t_used,
                };
                drop(inner);
                self.denied_tenant.fetch_add(1, Ordering::Relaxed);
                return Err(denied);
            }
        }
        inner.used += bytes;
        if let Some(t) = tenant {
            *inner.tenants.entry(t.to_string()).or_insert(0) += bytes;
        }
        let used = inner.used as u64;
        drop(inner);
        self.used_gauge.store(used, Ordering::Relaxed);
        self.peak_gauge.fetch_max(used, Ordering::Relaxed);
        Ok(MemPermit {
            budget: Arc::clone(self),
            tenant: tenant.map(str::to_string),
            bytes,
        })
    }

    /// Internal release path shared by permit drop and shrink.
    fn release(&self, tenant: Option<&str>, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.used = inner.used.saturating_sub(bytes);
        if let Some(t) = tenant {
            if let Some(n) = inner.tenants.get_mut(t) {
                *n = n.saturating_sub(bytes);
                if *n == 0 {
                    inner.tenants.remove(t);
                }
            }
        }
        let used = inner.used as u64;
        drop(inner);
        self.used_gauge.store(used, Ordering::Relaxed);
    }

    /// Snapshot as `(name, value)` pairs in render order, named for the
    /// metrics scrape (`mem_used_bytes`, `mem_peak_bytes`, …).
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("mem_budget_bytes", self.total as u64),
            ("mem_tenant_cap_bytes", self.tenant_cap as u64),
            ("mem_used_bytes", self.used_gauge.load(Ordering::Relaxed)),
            ("mem_peak_bytes", self.peak_gauge.load(Ordering::Relaxed)),
            (
                "mem_denied_global",
                self.denied_global.load(Ordering::Relaxed),
            ),
            (
                "mem_denied_tenant",
                self.denied_tenant.load(Ordering::Relaxed),
            ),
            ("mem_evictions", self.evictions.load(Ordering::Relaxed)),
            (
                "mem_forced_streams",
                self.forced_streams.load(Ordering::Relaxed),
            ),
            (
                "mem_corpus_stream_fallbacks",
                self.stream_fallbacks.load(Ordering::Relaxed),
            ),
        ]
    }
}

/// An RAII reservation against a [`MemBudget`]. Dropping the permit
/// releases its bytes. Tracks one logical buffer; resize the permit as
/// the buffer resizes.
pub struct MemPermit {
    budget: Arc<MemBudget>,
    tenant: Option<String>,
    bytes: usize,
}

impl std::fmt::Debug for MemPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemPermit")
            .field("tenant", &self.tenant)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl MemPermit {
    /// Bytes currently reserved by this permit.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Reserves `extra` more bytes under the same tenant.
    ///
    /// # Errors
    ///
    /// [`MemDenied`]; the permit keeps its current reservation.
    pub fn grow(&mut self, extra: usize) -> Result<(), MemDenied> {
        let more = self
            .budget
            .try_reserve(self.tenant.as_deref(), extra)?
            .into_raw();
        self.bytes += more;
        Ok(())
    }

    /// Releases `by` bytes (clamped to the current reservation).
    pub fn shrink(&mut self, by: usize) {
        let by = by.min(self.bytes);
        self.budget.release(self.tenant.as_deref(), by);
        self.bytes -= by;
    }

    /// Disarms the permit, returning its byte count without releasing —
    /// the caller takes over the accounting (used by [`grow`]).
    ///
    /// [`grow`]: MemPermit::grow
    fn into_raw(mut self) -> usize {
        std::mem::replace(&mut self.bytes, 0)
    }
}

impl Drop for MemPermit {
    fn drop(&mut self) {
        self.budget.release(self.tenant.as_deref(), self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_and_gauges() {
        let b = MemBudget::new(1000);
        let p = b.try_reserve(Some("t"), 600).unwrap();
        assert_eq!(b.used(), 600);
        assert_eq!(b.peak(), 600);
        let q = b.try_reserve(Some("u"), 400).unwrap();
        assert_eq!(b.used(), 1000);
        drop(p);
        assert_eq!(b.used(), 400);
        assert_eq!(b.peak(), 1000, "peak is a high-water mark");
        drop(q);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn global_budget_refuses_with_typed_denial() {
        let b = MemBudget::new(100);
        let _p = b.try_reserve(None, 80).unwrap();
        let err = b.try_reserve(None, 30).unwrap_err();
        assert_eq!(err.tenant, None);
        assert_eq!((err.needed, err.limit, err.used), (30, 100, 80));
        assert_eq!(b.denied_global.load(Ordering::Relaxed), 1);
        // Nothing was charged by the refusal.
        assert_eq!(b.used(), 80);
    }

    #[test]
    fn tenant_cap_partitions_the_budget() {
        let b = MemBudget::with_tenant_cap(1000, 300);
        let _a = b.try_reserve(Some("alice"), 300).unwrap();
        let err = b.try_reserve(Some("alice"), 1).unwrap_err();
        assert_eq!(err.tenant.as_deref(), Some("alice"));
        assert_eq!(b.denied_tenant.load(Ordering::Relaxed), 1);
        // Another tenant still has room; untenanted charges ignore caps.
        let _c = b.try_reserve(Some("bob"), 300).unwrap();
        let _d = b.try_reserve(None, 400).unwrap();
        assert_eq!(b.used(), 1000);
    }

    #[test]
    fn unlimited_budget_tracks_but_never_refuses() {
        let b = MemBudget::unlimited();
        let p = b.try_reserve(Some("t"), usize::MAX / 4).unwrap();
        assert!(b.try_reserve(Some("t"), usize::MAX / 4).is_ok());
        assert!(b.peak() >= usize::MAX / 4);
        drop(p);
    }

    #[test]
    fn permits_grow_and_shrink() {
        let b = MemBudget::new(100);
        let mut p = b.try_reserve(Some("t"), 40).unwrap();
        p.grow(50).unwrap();
        assert_eq!(p.bytes(), 90);
        assert_eq!(b.used(), 90);
        let err = p.grow(20).unwrap_err();
        assert_eq!(err.needed, 20);
        assert_eq!(p.bytes(), 90, "failed grow leaves the permit intact");
        p.shrink(70);
        assert_eq!((p.bytes(), b.used()), (20, 20));
        // Shrink past the reservation clamps.
        p.shrink(1000);
        assert_eq!((p.bytes(), b.used()), (0, 0));
        drop(p);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn tenant_cap_is_clamped_to_budget() {
        let b = MemBudget::with_tenant_cap(100, 5000);
        assert_eq!(b.tenant_cap(), 100);
        // With an unlimited budget the cap stands alone.
        let b = MemBudget::with_tenant_cap(0, 5000);
        assert_eq!(b.tenant_cap(), 5000);
        assert!(b.try_reserve(Some("t"), 6000).is_err());
        assert!(b.try_reserve(None, 6000).is_ok());
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let b = MemBudget::new(10_000);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut peak_ok = true;
                    for _ in 0..500 {
                        if let Ok(p) = b.try_reserve(Some(&format!("t{i}")), 700) {
                            peak_ok &= b.used() <= 10_000;
                            drop(p);
                        }
                    }
                    peak_ok
                })
            })
            .collect();
        for t in threads {
            assert!(t.join().unwrap(), "tracked usage exceeded the budget");
        }
        assert_eq!(b.used(), 0);
        assert!(b.peak() <= 10_000);
    }
}
