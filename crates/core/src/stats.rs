//! Fast-forward accounting, reproducing the paper's Table 6 metric.

use std::fmt;
use std::ops::AddAssign;

/// The five fast-forward function groups of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// Fast-forward *to* a type-specific attribute or element.
    G1,
    /// Fast-forward *over* an unmatched attribute value / element.
    G2,
    /// Fast-forward over a value while outputting it.
    G3,
    /// Fast-forward to the end of the current object.
    G4,
    /// Fast-forward over out-of-range array elements.
    G5,
}

impl Group {
    /// All groups in order, for iteration.
    pub const ALL: [Group; 5] = [Group::G1, Group::G2, Group::G3, Group::G4, Group::G5];

    /// Dense index of the group (G1 → 0 … G5 → 4), used to address
    /// group-indexed counter arrays such as
    /// [`MetricsSnapshot::ff_skipped`](crate::MetricsSnapshot::ff_skipped).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Group::G1 => 0,
            Group::G2 => 1,
            Group::G3 => 2,
            Group::G4 => 3,
            Group::G5 => 4,
        }
    }
}

/// Characters fast-forwarded per function group, plus the stream length.
///
/// The *fast-forward ratio* (Section 5.3) is "the ratio between the
/// characters fast-forwarded and the total data stream length". Nested
/// fast-forward calls attribute their characters to the **outermost** group
/// entry point (e.g. an array skipped from within `goToObjAttr` counts as
/// G1), so the per-group counts partition the skipped characters like the
/// rows of Table 6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastForwardStats {
    g1: u64,
    g2: u64,
    g3: u64,
    g4: u64,
    g5: u64,
    /// Total characters in the processed stream.
    total: u64,
}

impl FastForwardStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` characters skipped under `group`.
    #[inline]
    pub fn record(&mut self, group: Group, n: u64) {
        match group {
            Group::G1 => self.g1 += n,
            Group::G2 => self.g2 += n,
            Group::G3 => self.g3 += n,
            Group::G4 => self.g4 += n,
            Group::G5 => self.g5 += n,
        }
    }

    /// Adds `n` to the total stream length.
    #[inline]
    pub fn add_total(&mut self, n: u64) {
        self.total += n;
    }

    /// Characters skipped by `group`.
    pub fn skipped(&self, group: Group) -> u64 {
        match group {
            Group::G1 => self.g1,
            Group::G2 => self.g2,
            Group::G3 => self.g3,
            Group::G4 => self.g4,
            Group::G5 => self.g5,
        }
    }

    /// Total stream length in characters.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fast-forward ratio of one group (0.0–1.0); 0 when the total is 0.
    pub fn ratio(&self, group: Group) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.skipped(group) as f64 / self.total as f64
        }
    }

    /// Overall fast-forward ratio across all groups (Table 6's last column).
    pub fn overall_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.g1 + self.g2 + self.g3 + self.g4 + self.g5) as f64 / self.total as f64
        }
    }
}

impl AddAssign for FastForwardStats {
    fn add_assign(&mut self, rhs: Self) {
        self.g1 += rhs.g1;
        self.g2 += rhs.g2;
        self.g3 += rhs.g3;
        self.g4 += rhs.g4;
        self.g5 += rhs.g5;
        self.total += rhs.total;
    }
}

impl fmt::Display for FastForwardStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "G1 {:.2}% | G2 {:.2}% | G3 {:.2}% | G4 {:.2}% | G5 {:.2}% | overall {:.2}%",
            100.0 * self.ratio(Group::G1),
            100.0 * self.ratio(Group::G2),
            100.0 * self.ratio(Group::G3),
            100.0 * self.ratio(Group::G4),
            100.0 * self.ratio(Group::G5),
            100.0 * self.overall_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_partition() {
        let mut s = FastForwardStats::new();
        s.add_total(100);
        s.record(Group::G1, 10);
        s.record(Group::G2, 20);
        s.record(Group::G4, 60);
        assert_eq!(s.ratio(Group::G1), 0.10);
        assert_eq!(s.ratio(Group::G2), 0.20);
        assert_eq!(s.ratio(Group::G4), 0.60);
        assert_eq!(s.ratio(Group::G3), 0.0);
        assert_eq!(s.overall_ratio(), 0.90);
        assert_eq!(s.skipped(Group::G5), 0);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FastForwardStats::new();
        assert_eq!(s.overall_ratio(), 0.0);
        assert_eq!(s.ratio(Group::G3), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = FastForwardStats::new();
        a.add_total(50);
        a.record(Group::G5, 25);
        let mut b = FastForwardStats::new();
        b.add_total(50);
        b.record(Group::G5, 25);
        a += b;
        assert_eq!(a.total(), 100);
        assert_eq!(a.ratio(Group::G5), 0.5);
    }

    #[test]
    fn display_mentions_all_groups() {
        let s = FastForwardStats::new();
        let text = s.to_string();
        for g in ["G1", "G2", "G3", "G4", "G5", "overall"] {
            assert!(text.contains(g), "{text}");
        }
    }
}
