//! Deterministic fault injection for torture-testing the ingestion path.
//!
//! Everything here is seeded and reproducible: the same [`FaultPlan`] over
//! the same input produces byte-identical behaviour on every run, so a
//! failing torture case is a bug report, not a flake. The module is
//! compiled only for tests and under the `faults` cargo feature — release
//! builds without the feature carry none of it.
//!
//! * [`FaultyReader`] wraps any [`Read`] and injects short reads,
//!   [`ErrorKind::Interrupted`], `WouldBlock`, early EOF (truncation), and
//!   byte corruption according to a [`FaultPlan`].
//! * [`FaultyConn`] wraps any [`Read`]`+`[`Write`] transport (a socket)
//!   and additionally injects *write-side* faults — short writes,
//!   mid-frame stalls, and hard disconnects — for torture-testing
//!   framed-protocol servers from the client side.
//! * [`FaultyFile`] stages a file write through the same tmp-then-rename
//!   discipline the durable formats use, while injecting *storage-level*
//!   faults — silent truncation (a torn write), bit corruption on the way
//!   to disk, short/interrupted writes, and rename failure — for
//!   torture-testing loaders of persistent artifacts (checkpoints, the
//!   structural-index cache).
//! * [`mutate`] applies one seeded structural mutation to a record, for
//!   building malformed-input corpora.
//! * [`SplitMix64`] is the tiny PRNG underneath both (no external
//!   dependency).
//!
//! [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted

use std::io::{Error, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// SplitMix64: a tiny, high-quality, seedable PRNG (public-domain
/// constants from Vigna's reference implementation). Deterministic across
/// platforms; not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A pseudo-random value in `0..n` (`n > 0`; modulo bias is irrelevant
    /// at test scale).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A seeded recipe for the faults a [`FaultyReader`] injects. All knobs
/// default to off; enable them builder-style.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    short_read_max: Option<usize>,
    interrupt_every: Option<u64>,
    would_block_every: Option<u64>,
    truncate_at: Option<u64>,
    corrupt_every: Option<u64>,
    panic_every: Option<u64>,
    short_write_max: Option<usize>,
    write_stall_every: Option<(u64, Duration)>,
    disconnect_after_writes: Option<u64>,
    rename_fails: bool,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            short_read_max: None,
            interrupt_every: None,
            would_block_every: None,
            truncate_at: None,
            corrupt_every: None,
            panic_every: None,
            short_write_max: None,
            write_stall_every: None,
            disconnect_after_writes: None,
            rename_fails: false,
        }
    }

    /// Caps every read at a pseudo-random `1..=max` bytes, exercising
    /// refill paths that full-buffer reads never reach.
    pub fn short_reads(mut self, max: usize) -> Self {
        self.short_read_max = Some(max.max(1));
        self
    }

    /// Makes every `n`-th read *attempt* fail with
    /// [`ErrorKind::Interrupted`] (the attempt after it proceeds, so
    /// progress is always possible).
    pub fn interrupt_every(mut self, n: u64) -> Self {
        self.interrupt_every = Some(n.max(1));
        self
    }

    /// Makes every `n`-th read *attempt* fail with
    /// [`ErrorKind::WouldBlock`]. With `n == 1` every attempt fails —
    /// useful for asserting that retry budgets are finite.
    pub fn would_block_every(mut self, n: u64) -> Self {
        self.would_block_every = Some(n.max(1));
        self
    }

    /// Ends the stream (clean EOF) after `offset` delivered bytes,
    /// simulating a connection cut mid-record.
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }

    /// Corrupts every `n`-th delivered byte (XOR with a nonzero seeded
    /// value, so the byte always actually changes).
    pub fn corrupt_every(mut self, n: u64) -> Self {
        self.corrupt_every = Some(n.max(1));
        self
    }

    /// Makes a [`PanicInjector`] panic on every `n`-th record (by record
    /// ordinal: records `n-1`, `2n-1`, … counting from zero). Ignored by
    /// [`FaultyReader`], which injects byte-level faults only.
    pub fn panic_every(mut self, n: u64) -> Self {
        self.panic_every = Some(n.max(1));
        self
    }

    /// Caps every [`FaultyConn`] write at a pseudo-random `1..=max` bytes,
    /// so a framed payload crosses the wire in many fragments and the
    /// peer's reassembly path is exercised. Ignored by [`FaultyReader`].
    pub fn short_writes(mut self, max: usize) -> Self {
        self.short_write_max = Some(max.max(1));
        self
    }

    /// Makes every `n`-th [`FaultyConn`] write *attempt* sleep for
    /// `stall` before proceeding — a slow-loris client. Pair with a
    /// server-side read timeout to prove the stall budget closes the
    /// connection. Ignored by [`FaultyReader`].
    pub fn write_stall_every(mut self, n: u64, stall: Duration) -> Self {
        self.write_stall_every = Some((n.max(1), stall));
        self
    }

    /// Hard-disconnects a [`FaultyConn`] after `bytes` written bytes:
    /// the write that crosses the threshold delivers the remainder up to
    /// the threshold and every later write fails with
    /// [`ErrorKind::ConnectionAborted`] — a client dying mid-frame.
    /// Ignored by [`FaultyReader`].
    pub fn disconnect_after_writes(mut self, bytes: u64) -> Self {
        self.disconnect_after_writes = Some(bytes);
        self
    }

    /// Makes [`FaultyFile::persist`] fail instead of renaming the staged
    /// file over the destination — the commit step dying between write
    /// and rename. The staged tmp file is left behind, exactly as a real
    /// crash would leave it. Ignored by the stream adapters.
    pub fn fail_rename(mut self) -> Self {
        self.rename_fails = true;
        self
    }
}

/// An [`Evaluate`] decorator that panics deterministically on the records
/// selected by [`FaultPlan::panic_every`], delegating every other record to
/// the wrapped engine. For torture-testing the pipeline's panic isolation:
/// the panic fires *inside* worker evaluation, exactly where a buggy engine
/// would fail in production.
///
/// [`Evaluate`]: crate::Evaluate
#[derive(Debug)]
pub struct PanicInjector<'a, E: ?Sized> {
    inner: &'a E,
    every: u64,
}

impl<'a, E: crate::Evaluate + ?Sized> PanicInjector<'a, E> {
    /// Wraps `inner`, panicking per `plan` (a plan without
    /// [`panic_every`](FaultPlan::panic_every) never panics).
    pub fn new(inner: &'a E, plan: &FaultPlan) -> Self {
        PanicInjector {
            inner,
            every: plan.panic_every.unwrap_or(u64::MAX),
        }
    }
}

impl<E: crate::Evaluate + ?Sized> crate::Evaluate for PanicInjector<'_, E> {
    fn name(&self) -> &'static str {
        "PanicInjector"
    }

    fn evaluate(
        &self,
        record: &[u8],
        record_idx: u64,
        sink: &mut dyn crate::MatchSink,
    ) -> crate::RecordOutcome {
        if (record_idx + 1).is_multiple_of(self.every) {
            panic!("injected panic on record {record_idx}");
        }
        self.inner.evaluate(record, record_idx, sink)
    }
}

/// A [`Read`] adapter that injects the faults described by a [`FaultPlan`];
/// see the [module docs](self).
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    rng: SplitMix64,
    /// Read attempts made so far (including ones that returned an error).
    attempts: u64,
    /// Bytes delivered to the caller so far.
    delivered: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultyReader {
            inner,
            plan,
            rng,
            attempts: 0,
            delivered: 0,
        }
    }

    /// Bytes delivered to the caller so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.attempts += 1;
        if let Some(n) = self.plan.interrupt_every {
            if self.attempts.is_multiple_of(n) {
                return Err(Error::new(ErrorKind::Interrupted, "injected interrupt"));
            }
        }
        if let Some(n) = self.plan.would_block_every {
            if self.attempts.is_multiple_of(n) {
                return Err(Error::new(ErrorKind::WouldBlock, "injected would-block"));
            }
        }
        let mut cap = buf.len();
        if let Some(max) = self.plan.short_read_max {
            cap = cap.min(1 + self.rng.below(max as u64) as usize);
        }
        if let Some(cut) = self.plan.truncate_at {
            let left = cut.saturating_sub(self.delivered);
            cap = cap.min(usize::try_from(left).unwrap_or(usize::MAX));
            if cap == 0 {
                return Ok(0); // injected truncation: clean early EOF
            }
        }
        let n = self.inner.read(&mut buf[..cap])?;
        if let Some(every) = self.plan.corrupt_every {
            for (i, byte) in buf.iter_mut().enumerate().take(n) {
                if (self.delivered + i as u64 + 1).is_multiple_of(every) {
                    *byte ^= 1 + (self.rng.next_u64() % 255) as u8;
                }
            }
        }
        self.delivered += n as u64;
        Ok(n)
    }
}

/// A [`Read`]`+`[`Write`] adapter that injects *socket-level* faults per a
/// [`FaultPlan`]: short writes ([`FaultPlan::short_writes`]), mid-frame
/// stalls ([`FaultPlan::write_stall_every`]), and hard disconnects
/// ([`FaultPlan::disconnect_after_writes`]) on the write side; short reads
/// ([`FaultPlan::short_reads`]), injected [`ErrorKind::Interrupted`]
/// ([`FaultPlan::interrupt_every`]), and byte corruption
/// ([`FaultPlan::corrupt_every`]) on the read side.
///
/// Wrap a *client's* connection in it to torture a framed-protocol
/// server: fragmented frames must still reassemble, a death mid-frame
/// must not corrupt any other connection, and stalls must trip the
/// server's slow-loris budget instead of pinning a thread. Like
/// everything in this module it is fully deterministic per seed.
#[derive(Debug)]
pub struct FaultyConn<T> {
    inner: T,
    plan: FaultPlan,
    rng: SplitMix64,
    write_attempts: u64,
    written: u64,
    read_attempts: u64,
    /// Bytes delivered to the reader so far (drives read-side corruption).
    read_delivered: u64,
}

impl<T: Read + Write> FaultyConn<T> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed ^ 0xC0A8_1337_5EED_F00D);
        FaultyConn {
            inner,
            plan,
            rng,
            write_attempts: 0,
            written: 0,
            read_attempts: 0,
            read_delivered: 0,
        }
    }

    /// Bytes actually written to the transport so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Consumes the wrapper, returning the underlying transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Shared access to the underlying transport (e.g. to set socket
    /// timeouts).
    pub fn get_ref(&self) -> &T {
        &self.inner
    }
}

impl<T: Read + Write> Read for FaultyConn<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.read_attempts += 1;
        if let Some(n) = self.plan.interrupt_every {
            if self.read_attempts.is_multiple_of(n) {
                return Err(Error::new(ErrorKind::Interrupted, "injected interrupt"));
            }
        }
        let mut cap = buf.len();
        if let Some(max) = self.plan.short_read_max {
            cap = cap.min(1 + self.rng.below(max as u64) as usize);
        }
        let n = self.inner.read(&mut buf[..cap])?;
        if let Some(every) = self.plan.corrupt_every {
            for (i, byte) in buf.iter_mut().enumerate().take(n) {
                if (self.read_delivered + i as u64 + 1).is_multiple_of(every) {
                    *byte ^= 1 + (self.rng.next_u64() % 255) as u8;
                }
            }
        }
        self.read_delivered += n as u64;
        Ok(n)
    }
}

impl<T: Read + Write> Write for FaultyConn<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_attempts += 1;
        if let Some((n, stall)) = self.plan.write_stall_every {
            if self.write_attempts.is_multiple_of(n) {
                std::thread::sleep(stall);
            }
        }
        let mut cap = buf.len();
        if let Some(cut) = self.plan.disconnect_after_writes {
            let left = cut.saturating_sub(self.written);
            if left == 0 {
                return Err(Error::new(
                    ErrorKind::ConnectionAborted,
                    "injected disconnect",
                ));
            }
            cap = cap.min(usize::try_from(left).unwrap_or(usize::MAX));
        }
        if let Some(max) = self.plan.short_write_max {
            cap = cap.min(1 + self.rng.below(max as u64) as usize);
        }
        let n = self.inner.write(&buf[..cap])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A [`Write`] adapter over a staged file that injects *storage-level*
/// faults per a [`FaultPlan`], for torture-testing loaders of durable
/// artifacts (checkpoints, the structural-index cache).
///
/// The faults model a lying disk rather than a failing syscall: with
/// [`FaultPlan::truncate_at`] every byte past the threshold is silently
/// discarded while the writer is told it was accepted (a torn write the
/// final `fsync` never saw), and [`FaultPlan::corrupt_every`] flips bytes
/// on their way to the platters. [`FaultPlan::short_writes`] and
/// [`FaultPlan::interrupt_every`] exercise the caller's `write_all`
/// retry loop, and [`FaultPlan::fail_rename`] kills the commit step.
///
/// The lifecycle mirrors the crates' atomic-save discipline: bytes go to
/// a staged sibling (`<dest>.ff-tmp`), then [`persist`](Self::persist)
/// syncs and renames over the destination. Dropping the value without
/// persisting — or calling [`abandon`](Self::abandon) — models a crash
/// before commit: the destination is never touched.
#[derive(Debug)]
pub struct FaultyFile {
    file: Option<std::fs::File>,
    tmp: PathBuf,
    dest: PathBuf,
    plan: FaultPlan,
    rng: SplitMix64,
    write_attempts: u64,
    /// Bytes the caller believes were accepted.
    accepted: u64,
    /// Bytes actually on disk (differs from `accepted` under truncation).
    durable: u64,
}

impl FaultyFile {
    /// Opens a staged sibling of `dest` for writing, injecting faults per
    /// `plan`. The destination itself is untouched until
    /// [`persist`](Self::persist) succeeds.
    pub fn create(dest: impl Into<PathBuf>, plan: FaultPlan) -> std::io::Result<Self> {
        let dest = dest.into();
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "faulty".into());
        name.push(".ff-tmp");
        let tmp = dest.with_file_name(name);
        let rng = SplitMix64::new(plan.seed ^ 0xF11E_5EED_0DD5_C0DE);
        Ok(FaultyFile {
            file: Some(std::fs::File::create(&tmp)?),
            tmp,
            dest,
            plan,
            rng,
            write_attempts: 0,
            accepted: 0,
            durable: 0,
        })
    }

    /// Bytes the caller was told were written (truncated bytes included).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Bytes actually persisted to the staged file.
    pub fn durable(&self) -> u64 {
        self.durable
    }

    /// The staged tmp path (useful for asserting crash leftovers).
    pub fn tmp_path(&self) -> &Path {
        &self.tmp
    }

    /// Commits the staged file: flush, sync, rename over the destination.
    /// Fails without renaming when the plan says
    /// [`fail_rename`](FaultPlan::fail_rename), leaving the tmp behind.
    pub fn persist(mut self) -> std::io::Result<PathBuf> {
        let file = self.file.take().expect("persist called once");
        file.sync_all()?;
        drop(file);
        if self.plan.rename_fails {
            return Err(Error::other("injected rename failure"));
        }
        std::fs::rename(&self.tmp, &self.dest)?;
        Ok(std::mem::take(&mut self.dest))
    }

    /// Abandons the write, deleting the staged file and leaving the
    /// destination exactly as it was — a clean model of "the process died
    /// before commit and someone swept the tmp".
    pub fn abandon(mut self) {
        self.file.take();
        let _ = std::fs::remove_file(&self.tmp);
    }
}

impl Drop for FaultyFile {
    fn drop(&mut self) {
        // An unpersisted drop models a crash: the staged file is left
        // exactly as written (torn, corrupt, or incomplete) for the
        // loader under test to trip over.
        self.file.take();
    }
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_attempts += 1;
        if let Some(n) = self.plan.interrupt_every {
            if self.write_attempts.is_multiple_of(n) {
                return Err(Error::new(ErrorKind::Interrupted, "injected interrupt"));
            }
        }
        let mut cap = buf.len();
        if let Some(max) = self.plan.short_write_max {
            cap = cap.min(1 + self.rng.below(max as u64) as usize);
        }
        if cap == 0 {
            return Ok(0);
        }
        // The lying-disk window: bytes past `truncate_at` are reported as
        // accepted but never reach the file.
        let keep = match self.plan.truncate_at {
            Some(cut) => {
                let left = cut.saturating_sub(self.accepted);
                cap.min(usize::try_from(left).unwrap_or(usize::MAX))
            }
            None => cap,
        };
        if keep > 0 {
            let file = self.file.as_mut().expect("file open until persist");
            if let Some(every) = self.plan.corrupt_every {
                let mut staged = buf[..keep].to_vec();
                for (i, byte) in staged.iter_mut().enumerate() {
                    if (self.durable + i as u64 + 1).is_multiple_of(every) {
                        *byte ^= 1 + (self.rng.next_u64() % 255) as u8;
                    }
                }
                file.write_all(&staged)?;
            } else {
                file.write_all(&buf[..keep])?;
            }
            self.durable += keep as u64;
        }
        self.accepted += cap as u64;
        Ok(cap)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self.file.as_mut() {
            Some(f) => f.flush(),
            None => Ok(()),
        }
    }
}

/// Applies one seeded mutation to `record`, returning the mutated copy.
/// Mutations are the classic malformed-input moves: truncate, delete a
/// byte, duplicate a byte, flip a byte, or clobber a structural character
/// with garbage. Empty input is returned unchanged.
pub fn mutate(record: &[u8], seed: u64) -> Vec<u8> {
    if record.is_empty() {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let mut out = record.to_vec();
    let at = rng.below(record.len() as u64) as usize;
    match rng.below(5) {
        0 => out.truncate(at.max(1)),
        1 => {
            out.remove(at);
        }
        2 => {
            let b = out[at];
            out.insert(at, b);
        }
        3 => out[at] ^= 1 + (rng.next_u64() % 255) as u8,
        _ => {
            // Find a structural byte to clobber (fall back to position
            // `at` when the record has none).
            let pos = record
                .iter()
                .enumerate()
                .cycle()
                .skip(at)
                .take(record.len())
                .find(|(_, b)| matches!(b, b'{' | b'}' | b'[' | b']' | b'"' | b':' | b','))
                .map(|(i, _)| i)
                .unwrap_or(at);
            out[pos] = b'@';
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_not_constant() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn faulty_reader_is_deterministic() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let run = || {
            let plan = FaultPlan::new(9).short_reads(7).corrupt_every(97);
            let mut r = FaultyReader::new(&data[..], plan);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            out
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.len(), data.len());
        assert_ne!(a, data, "corruption must have changed something");
    }

    #[test]
    fn truncation_cuts_the_stream_short() {
        let data = vec![7u8; 1000];
        let plan = FaultPlan::new(1).truncate_at(123).short_reads(50);
        let mut r = FaultyReader::new(&data[..], plan);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 123);
        assert_eq!(r.delivered(), 123);
    }

    #[test]
    fn interrupts_and_blocks_fire_on_schedule() {
        let data = [1u8; 64];
        let plan = FaultPlan::new(0).interrupt_every(2);
        let mut r = FaultyReader::new(&data[..], plan);
        let mut buf = [0u8; 8];
        assert!(r.read(&mut buf).is_ok());
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), ErrorKind::Interrupted);
        assert!(r.read(&mut buf).is_ok());
        let plan = FaultPlan::new(0).would_block_every(1);
        let mut r = FaultyReader::new(&data[..], plan);
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn panic_injector_fires_on_schedule() {
        use crate::Evaluate;
        let engine = crate::JsonSki::compile("$.a").unwrap();
        let plan = FaultPlan::new(0).panic_every(3);
        let injector = PanicInjector::new(&engine, &plan);
        let mut sink = crate::CountSink::default();
        assert!(!injector.evaluate(b"{\"a\": 1}", 0, &mut sink).is_failed());
        assert!(!injector.evaluate(b"{\"a\": 1}", 1, &mut sink).is_failed());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink = crate::CountSink::default();
            injector.evaluate(b"{\"a\": 1}", 2, &mut sink)
        }));
        assert!(caught.is_err(), "record 2 must panic");
        // A plan without the knob never panics.
        let quiet = PanicInjector::new(&engine, &FaultPlan::new(0));
        assert!(!quiet.evaluate(b"{\"a\": 1}", 2, &mut sink).is_failed());
    }

    /// An in-memory duplex stand-in for a socket: reads from one buffer,
    /// writes to another.
    struct MemConn {
        rx: std::io::Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Read for MemConn {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for MemConn {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn faulty_conn_short_writes_fragment_but_deliver_everything() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(2000).collect();
        let conn = MemConn {
            rx: std::io::Cursor::new(Vec::new()),
            tx: Vec::new(),
        };
        let mut fc = FaultyConn::new(conn, FaultPlan::new(5).short_writes(3));
        fc.write_all(&payload).unwrap();
        assert_eq!(fc.written(), payload.len() as u64);
        assert!(fc.write_attempts >= payload.len() as u64 / 3);
        assert_eq!(fc.into_inner().tx, payload, "fragments must reassemble");
    }

    #[test]
    fn faulty_conn_disconnect_cuts_mid_frame() {
        let conn = MemConn {
            rx: std::io::Cursor::new(Vec::new()),
            tx: Vec::new(),
        };
        let mut fc = FaultyConn::new(conn, FaultPlan::new(1).disconnect_after_writes(10));
        let err = fc.write_all(&[9u8; 64]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ConnectionAborted);
        assert_eq!(fc.written(), 10, "exactly the threshold leaks out");
        assert_eq!(fc.get_ref().tx.len(), 10);
    }

    #[test]
    fn faulty_conn_reads_honor_short_reads_and_interrupts() {
        let conn = MemConn {
            rx: std::io::Cursor::new((0..100u8).collect()),
            tx: Vec::new(),
        };
        let mut fc = FaultyConn::new(conn, FaultPlan::new(2).short_reads(4).interrupt_every(3));
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match fc.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(n <= 4, "short-read cap violated");
                    out.extend_from_slice(&buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(out, (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn faulty_conn_write_stall_fires_on_schedule() {
        let conn = MemConn {
            rx: std::io::Cursor::new(Vec::new()),
            tx: Vec::new(),
        };
        let stall = Duration::from_millis(30);
        let mut fc = FaultyConn::new(conn, FaultPlan::new(0).write_stall_every(2, stall));
        let start = std::time::Instant::now();
        fc.write_all(&[1u8; 4]).unwrap(); // attempt 1: no stall
        fc.write_all(&[2u8; 4]).unwrap(); // attempt 2: stalls
        assert!(start.elapsed() >= stall, "second write must have stalled");
    }

    fn faulty_file_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jsonski-ffile-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn faulty_file_truncation_is_silent() {
        let dir = faulty_file_dir("trunc");
        let dest = dir.join("artifact.bin");
        let mut f = FaultyFile::create(&dest, FaultPlan::new(3).truncate_at(100)).unwrap();
        f.write_all(&[0xAB; 1000]).unwrap();
        assert_eq!(f.accepted(), 1000, "writer must believe the write landed");
        assert_eq!(f.durable(), 100);
        f.persist().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap().len(), 100, "torn write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_file_corruption_is_deterministic() {
        let dir = faulty_file_dir("corrupt");
        let payload: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let run = |name: &str| {
            let dest = dir.join(name);
            let plan = FaultPlan::new(11).corrupt_every(53).short_writes(17);
            let mut f = FaultyFile::create(&dest, plan).unwrap();
            f.write_all(&payload).unwrap();
            f.persist().unwrap();
            std::fs::read(&dest).unwrap()
        };
        let a = run("a.bin");
        assert_eq!(a, run("b.bin"), "same seed, same damage");
        assert_eq!(a.len(), payload.len());
        assert_ne!(a, payload, "corruption must have changed something");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_file_rename_failure_preserves_old_destination() {
        let dir = faulty_file_dir("rename");
        let dest = dir.join("artifact.bin");
        std::fs::write(&dest, b"old-and-valid").unwrap();
        let mut f = FaultyFile::create(&dest, FaultPlan::new(0).fail_rename()).unwrap();
        let tmp = f.tmp_path().to_path_buf();
        f.write_all(b"new-but-doomed").unwrap();
        let err = f.persist().unwrap_err();
        assert!(err.to_string().contains("injected rename failure"));
        assert_eq!(std::fs::read(&dest).unwrap(), b"old-and-valid");
        assert!(tmp.exists(), "crash leftovers stay for the sweeper");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_file_abandon_and_interrupts() {
        let dir = faulty_file_dir("abandon");
        let dest = dir.join("artifact.bin");
        let plan = FaultPlan::new(4).short_writes(8).interrupt_every(2);
        let mut f = FaultyFile::create(&dest, plan).unwrap();
        // write_all retries through injected Interrupted errors.
        f.write_all(&[7u8; 64]).unwrap();
        assert!(f.write_attempts > 8, "interrupts must have fired");
        assert_eq!(f.durable(), 64);
        let tmp = f.tmp_path().to_path_buf();
        f.abandon();
        assert!(!dest.exists() && !tmp.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutate_changes_nonempty_records_deterministically() {
        let rec = br#"{"a": [1, 2, {"b": "c"}]}"#;
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..50 {
            let m = mutate(rec, seed);
            assert_eq!(m, mutate(rec, seed), "seed {seed} must be reproducible");
            assert!(!m.is_empty());
            distinct.insert(m);
        }
        assert!(distinct.len() > 10, "mutations should be diverse");
        assert!(mutate(b"", 1).is_empty());
    }
}
