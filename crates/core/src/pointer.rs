//! JSON Pointer (RFC 6901) extraction in one shared structural pass.
//!
//! [`get`] resolves a single pointer; [`get_many`] and the reusable
//! [`Extractor`] resolve *N* pointers against one record with exactly one
//! scan: the pointers are merged into a token trie, a single forward-only
//! [`Cursor`] walks the record once, and every subtree the trie does not
//! reference is hopped with the engine's fast-forward primitives
//! (`goOverObj`/`goToObjEnd`/`goToAryEnd`), never tokenized. This
//! generalizes [`MultiQuery`](crate::MultiQuery)'s shared-pass design from
//! JSONPath automata to the pointer lookups a serving layer issues
//! (sonic-rs's `pointer` module is the model).
//!
//! Resolved values come back as borrowed [`LazyValue`] handles — nothing is
//! copied or decoded until the caller asks.

use std::fmt;
use std::str::FromStr;

use simdbits::Kernel;

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::fastforward::{self, Span};
use crate::lazy::{decode_string_contents, LazyValue};
use crate::metrics::Metrics;
use crate::stats::{FastForwardStats, Group};
use crate::validate::ValidationMode;

/// Pointers deeper than this are rejected at parse time; the trie walk
/// recurses once per token, so the bound keeps crafted pointers from
/// exhausting the call stack.
pub const MAX_POINTER_DEPTH: usize = 1024;

/// Why a JSON Pointer string failed to parse (RFC 6901 §3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointerParseError {
    /// A non-empty pointer must start with `/`.
    MissingSlash,
    /// `~` was followed by something other than `0` or `1`.
    InvalidEscape {
        /// Byte offset of the `~` within the pointer string.
        pos: usize,
    },
    /// The pointer has more than [`MAX_POINTER_DEPTH`] tokens.
    TooDeep {
        /// Number of tokens in the rejected pointer.
        tokens: usize,
    },
}

impl fmt::Display for PointerParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointerParseError::MissingSlash => {
                f.write_str("a non-empty JSON pointer must start with `/`")
            }
            PointerParseError::InvalidEscape { pos } => {
                write!(
                    f,
                    "invalid `~` escape at byte {pos} (only `~0` and `~1` exist)"
                )
            }
            PointerParseError::TooDeep { tokens } => {
                write!(f, "pointer has {tokens} tokens (limit {MAX_POINTER_DEPTH})")
            }
        }
    }
}

impl std::error::Error for PointerParseError {}

/// Errors from the [`get`] / [`get_many`] conveniences: either the pointer
/// string is malformed or the record is.
#[derive(Clone, Debug, PartialEq)]
pub enum ExtractError {
    /// The pointer string failed to parse.
    Pointer(PointerParseError),
    /// The record is structurally malformed.
    Stream(StreamError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Pointer(e) => write!(f, "bad pointer: {e}"),
            ExtractError::Stream(e) => write!(f, "malformed record: {e}"),
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Pointer(e) => Some(e),
            ExtractError::Stream(e) => Some(e),
        }
    }
}

impl From<PointerParseError> for ExtractError {
    fn from(e: PointerParseError) -> Self {
        ExtractError::Pointer(e)
    }
}

impl From<StreamError> for ExtractError {
    fn from(e: StreamError) -> Self {
        ExtractError::Stream(e)
    }
}

/// One reference token: the unescaped member name, with its array-index
/// reading precomputed (RFC 6901 §4: digits without a leading zero).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Token {
    raw: String,
    index: Option<usize>,
}

impl Token {
    fn new(raw: String) -> Self {
        let bytes = raw.as_bytes();
        let numeric = !bytes.is_empty()
            && bytes.iter().all(u8::is_ascii_digit)
            && (bytes.len() == 1 || bytes[0] != b'0');
        let index = if numeric { raw.parse().ok() } else { None };
        Token { raw, index }
    }
}

/// A parsed RFC 6901 JSON Pointer.
///
/// ```
/// use jsonski::JsonPointer;
///
/// let ptr: JsonPointer = "/a~1b/~0/0".parse()?;
/// assert_eq!(ptr.tokens(), ["a/b", "~", "0"]);
/// assert_eq!(ptr.to_string(), "/a~1b/~0/0");
/// # Ok::<(), jsonski::PointerParseError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonPointer {
    tokens: Vec<Token>,
}

impl JsonPointer {
    /// The root pointer (the empty string), which addresses the whole
    /// record.
    pub fn root() -> Self {
        JsonPointer { tokens: Vec::new() }
    }

    /// The unescaped reference tokens, in order.
    pub fn tokens(&self) -> Vec<&str> {
        self.tokens.iter().map(|t| t.raw.as_str()).collect()
    }

    /// `true` for the root pointer.
    pub fn is_root(&self) -> bool {
        self.tokens.is_empty()
    }
}

impl FromStr for JsonPointer {
    type Err = PointerParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(Self::root());
        }
        if !s.starts_with('/') {
            return Err(PointerParseError::MissingSlash);
        }
        let mut tokens = Vec::new();
        // Track byte offsets for escape errors: walk segments manually.
        let bytes = s.as_bytes();
        let mut seg_start = 1;
        let mut i = 1;
        loop {
            if i == bytes.len() || bytes[i] == b'/' {
                tokens.push(unescape_token(&s[seg_start..i], seg_start)?);
                if i == bytes.len() {
                    break;
                }
                seg_start = i + 1;
            }
            i += 1;
        }
        if tokens.len() > MAX_POINTER_DEPTH {
            return Err(PointerParseError::TooDeep {
                tokens: tokens.len(),
            });
        }
        Ok(JsonPointer { tokens })
    }
}

fn unescape_token(seg: &str, seg_start: usize) -> Result<Token, PointerParseError> {
    if !seg.contains('~') {
        return Ok(Token::new(seg.to_owned()));
    }
    let mut out = String::with_capacity(seg.len());
    let mut chars = seg.char_indices();
    while let Some((off, c)) = chars.next() {
        if c != '~' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some((_, '0')) => out.push('~'),
            Some((_, '1')) => out.push('/'),
            _ => {
                return Err(PointerParseError::InvalidEscape {
                    pos: seg_start + off,
                })
            }
        }
    }
    Ok(Token::new(out))
}

impl fmt::Display for JsonPointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tokens {
            f.write_str("/")?;
            for c in t.raw.chars() {
                match c {
                    '~' => f.write_str("~0")?,
                    '/' => f.write_str("~1")?,
                    _ => write!(f, "{c}")?,
                }
            }
        }
        Ok(())
    }
}

/// A node of the merged pointer trie. `terminals` lists the indices of the
/// pointers that end here; `children` fan out by reference token.
#[derive(Clone, Debug, Default)]
struct Node {
    children: Vec<(Token, Node)>,
    terminals: Vec<usize>,
}

impl Node {
    fn insert(&mut self, tokens: &[Token], pointer_idx: usize) {
        match tokens.split_first() {
            None => self.terminals.push(pointer_idx),
            Some((head, rest)) => {
                let child = match self.children.iter_mut().position(|(t, _)| t == head) {
                    Some(i) => &mut self.children[i].1,
                    None => {
                        self.children.push((head.clone(), Node::default()));
                        &mut self.children.last_mut().expect("just pushed").1
                    }
                };
                child.insert(rest, pointer_idx);
            }
        }
    }
}

/// A compiled batch of JSON pointers that resolves against each record in
/// **one** structural pass, however many pointers it holds.
///
/// ```
/// use jsonski::Extractor;
///
/// let ex = Extractor::compile(&["/user/name", "/user/id", "/tags/1"])?;
/// let record = br#"{"user": {"id": 7, "name": "kim"}, "tags": ["a", "b"]}"#;
/// let found = ex.extract(record)?;
/// assert_eq!(found.get(0).unwrap().as_str()?, "kim");
/// assert_eq!(found.get(1).unwrap().as_i64(), Some(7));
/// assert_eq!(found.get(2).unwrap().as_raw(), b"\"b\"");
/// // One pass: no more words were classified than the record holds.
/// assert!(found.words_classified() <= record.len().div_ceil(64));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Extractor {
    pointers: Vec<JsonPointer>,
    root: Node,
    kernel: Option<Kernel>,
    validation: ValidationMode,
}

impl Extractor {
    /// Builds an extractor from already-parsed pointers.
    pub fn new(pointers: Vec<JsonPointer>) -> Self {
        let mut root = Node::default();
        for (i, p) in pointers.iter().enumerate() {
            root.insert(&p.tokens, i);
        }
        Extractor {
            pointers,
            root,
            kernel: None,
            validation: ValidationMode::Permissive,
        }
    }

    /// Parses and compiles a batch of pointer strings.
    ///
    /// # Errors
    ///
    /// [`PointerParseError`] if any pointer string is malformed.
    pub fn compile<S: AsRef<str>>(pointers: &[S]) -> Result<Self, PointerParseError> {
        let parsed = pointers
            .iter()
            .map(|s| s.as_ref().parse())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(parsed))
    }

    /// Forces a specific classification kernel (`None` = auto-detect).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Option<Kernel>) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the validation mode for the shared pass (strict mode
    /// validates the whole record, including skipped subtrees and the tail
    /// after the last resolved pointer).
    #[must_use]
    pub fn with_validation(mut self, validation: ValidationMode) -> Self {
        self.validation = validation;
        self
    }

    /// The compiled pointers, in the order [`extract`](Self::extract)
    /// reports them.
    pub fn pointers(&self) -> &[JsonPointer] {
        &self.pointers
    }

    /// Resolves every pointer against `record` in a single structural pass.
    ///
    /// Pointers that address nothing (missing key, index past the end)
    /// come back as `None` — that is a miss, not an error. When the same
    /// key appears twice in an object, the first occurrence wins.
    ///
    /// # Errors
    ///
    /// [`StreamError`] if the record is malformed on the examined path (or
    /// anywhere, in strict mode).
    pub fn extract<'a>(&self, record: &'a [u8]) -> Result<Extraction<'a>, StreamError> {
        let mut walk = Walk {
            cur: Cursor::with_options(record, self.kernel, self.validation),
            stats: FastForwardStats::new(),
            spans: vec![None; self.pointers.len()],
        };
        walk.stats.add_total(record.len() as u64);
        match walk.value(&self.root) {
            Ok(_) => walk.cur.finish_strict()?,
            Err(e) => {
                // Prefer the validator's typed verdict, as the engine does:
                // a structural error in strict mode is often the echo of a
                // validity fault.
                if let Err(invalid @ StreamError::Invalid { .. }) = walk.cur.finish_strict() {
                    return Err(invalid);
                }
                return Err(e);
            }
        }
        Ok(Extraction {
            values: walk
                .spans
                .iter()
                .map(|s| s.map(|span| LazyValue::new(record, span)))
                .collect(),
            stats: walk.stats,
            words_classified: walk.cur.words_classified(),
            word_cache_hits: walk.cur.word_cache_hits(),
            consumed: walk.cur.pos(),
        })
    }

    /// Like [`extract`](Self::extract), recording bitmap-construction and
    /// evaluation counters into `metrics`.
    ///
    /// # Errors
    ///
    /// As [`extract`](Self::extract).
    pub fn extract_metered<'a>(
        &self,
        record: &'a [u8],
        metrics: &Metrics,
    ) -> Result<Extraction<'a>, StreamError> {
        let watch = metrics.stopwatch();
        let result = self.extract(record);
        metrics.add_eval_ns(watch.elapsed_ns());
        if let Ok(found) = &result {
            metrics.record_bitmap(found.words_classified as u64, found.word_cache_hits);
        }
        result
    }
}

/// The result of one [`Extractor::extract`] pass: a lazy value per pointer
/// plus the pass's structural accounting.
#[derive(Clone, Debug)]
pub struct Extraction<'a> {
    values: Vec<Option<LazyValue<'a>>>,
    stats: FastForwardStats,
    words_classified: usize,
    word_cache_hits: u64,
    consumed: usize,
}

impl<'a> Extraction<'a> {
    /// One entry per compiled pointer, in compile order; `None` when the
    /// pointer addressed nothing.
    pub fn values(&self) -> &[Option<LazyValue<'a>>] {
        &self.values
    }

    /// The resolved value for pointer `i`, if any.
    pub fn get(&self, i: usize) -> Option<LazyValue<'a>> {
        self.values.get(i).copied().flatten()
    }

    /// Consumes the extraction, yielding the per-pointer values.
    pub fn into_values(self) -> Vec<Option<LazyValue<'a>>> {
        self.values
    }

    /// Fast-forward accounting for the pass (paper Table 6 grouping).
    pub fn stats(&self) -> &FastForwardStats {
        &self.stats
    }

    /// 64-byte words classified during the pass. A single shared pass
    /// classifies each word at most once, so this never exceeds
    /// `record.len().div_ceil(64)` regardless of how many pointers were
    /// resolved.
    pub fn words_classified(&self) -> usize {
        self.words_classified
    }

    /// Words served from the cursor's single-word cache.
    pub fn word_cache_hits(&self) -> u64 {
        self.word_cache_hits
    }

    /// Bytes of the record consumed by the pass (the record length only
    /// when the last pointer forced a scan to the end or strict validation
    /// ran).
    pub fn consumed(&self) -> usize {
        self.consumed
    }
}

/// Resolves one JSON pointer against a record.
///
/// Returns `Ok(None)` when the pointer addresses nothing.
///
/// ```
/// let record = br#"{"a": {"b": [10, 20]}}"#;
/// assert_eq!(jsonski::get(record, "/a/b/1")?.unwrap().as_i64(), Some(20));
/// assert!(jsonski::get(record, "/a/missing")?.is_none());
/// # Ok::<(), jsonski::ExtractError>(())
/// ```
///
/// # Errors
///
/// [`ExtractError`] when the pointer string or the record is malformed.
pub fn get<'a>(record: &'a [u8], pointer: &str) -> Result<Option<LazyValue<'a>>, ExtractError> {
    Ok(get_many(record, &[pointer])?.pop().flatten())
}

/// Resolves N JSON pointers against a record in **one** structural pass.
///
/// The result has one entry per pointer, in order; misses are `None`.
///
/// ```
/// let record = br#"{"user": {"name": "kim"}, "n": 3}"#;
/// let got = jsonski::get_many(record, &["/user/name", "/n", "/missing"])?;
/// assert_eq!(got[0].unwrap().as_str().unwrap(), "kim");
/// assert_eq!(got[1].unwrap().as_i64(), Some(3));
/// assert!(got[2].is_none());
/// # Ok::<(), jsonski::ExtractError>(())
/// ```
///
/// # Errors
///
/// [`ExtractError`] when a pointer string or the record is malformed.
pub fn get_many<'a, S: AsRef<str>>(
    record: &'a [u8],
    pointers: &[S],
) -> Result<Vec<Option<LazyValue<'a>>>, ExtractError> {
    let extractor = Extractor::compile(pointers)?;
    Ok(extractor.extract(record)?.into_values())
}

/// The single-pass trie walker.
struct Walk<'a> {
    cur: Cursor<'a>,
    stats: FastForwardStats,
    spans: Vec<Option<Span>>,
}

impl Walk<'_> {
    /// Consumes the value at the cursor, descending where the trie demands
    /// and fast-forwarding everywhere else. Records the value's span for
    /// every pointer terminating at `node`.
    fn value(&mut self, node: &Node) -> Result<Span, StreamError> {
        let t = self.cur.peek_token("value")?;
        let span = match t {
            b'{' if !node.children.is_empty() => self.object(node)?,
            b'{' => fastforward::go_over_obj(&mut self.cur, &mut self.stats, Group::G2)?,
            b'[' if node.children.iter().any(|(tok, _)| tok.index.is_some()) => self.array(node)?,
            b'[' => fastforward::go_over_ary(&mut self.cur, &mut self.stats, Group::G2)?,
            _ => fastforward::go_over_primitive(&mut self.cur, &mut self.stats, Group::G2)?,
        };
        for &i in &node.terminals {
            self.spans[i] = Some(span);
        }
        Ok(span)
    }

    /// Skips a value the trie has no interest in.
    fn skip_value(&mut self) -> Result<Span, StreamError> {
        match self.cur.peek_token("value")? {
            b'{' => fastforward::go_over_obj(&mut self.cur, &mut self.stats, Group::G2),
            b'[' => fastforward::go_over_ary(&mut self.cur, &mut self.stats, Group::G2),
            _ => fastforward::go_over_primitive(&mut self.cur, &mut self.stats, Group::G2),
        }
    }

    fn object(&mut self, node: &Node) -> Result<Span, StreamError> {
        let start = self.cur.pos();
        self.cur.bump(); // consume `{`
        let mut matched = vec![false; node.children.len()];
        let mut remaining = node.children.len();
        let mut first = true;
        loop {
            let t = self.cur.peek_token("attribute or `}`")?;
            if t == b'}' {
                self.cur.bump();
                return Ok((start, self.cur.pos()));
            }
            if std::mem::replace(&mut first, false) {
                // First attribute: no separator to consume.
            } else {
                self.cur.expect(b',', "`,` or `}`")?;
            }
            let a = self.cur.peek_token("attribute")?;
            if a != b'"' {
                return Err(StreamError::Unexpected {
                    expected: "attribute",
                    found: a,
                    pos: self.cur.pos(),
                });
            }
            let (ks, ke) = self.cur.read_string()?;
            self.cur.expect(b':', "`:`")?;
            let key = &self.cur.input()[ks..ke];
            let hit = node
                .children
                .iter()
                .position(|(tok, _)| key_matches(key, &tok.raw));
            match hit {
                // First occurrence wins; a repeated key is skipped like any
                // unmatched attribute.
                Some(i) if !matched[i] => {
                    matched[i] = true;
                    remaining -= 1;
                    self.value(&node.children[i].1)?;
                    if remaining == 0 {
                        // Every referenced attribute resolved: fast-forward
                        // to the object end (the G4 opportunity).
                        fastforward::go_to_obj_end(&mut self.cur, &mut self.stats, Group::G4)?;
                        self.cur.bump(); // consume `}`
                        return Ok((start, self.cur.pos()));
                    }
                }
                _ => {
                    self.skip_value()?;
                }
            }
        }
    }

    fn array(&mut self, node: &Node) -> Result<Span, StreamError> {
        let start = self.cur.pos();
        self.cur.bump(); // consume `[`
        let max_index = node
            .children
            .iter()
            .filter_map(|(tok, _)| tok.index)
            .max()
            .expect("caller checked for an indexed child");
        let mut index = 0usize;
        let mut first = true;
        loop {
            let t = self.cur.peek_token("element or `]`")?;
            if t == b']' {
                self.cur.bump();
                return Ok((start, self.cur.pos()));
            }
            if std::mem::replace(&mut first, false) {
                // First element: no separator to consume.
            } else {
                self.cur.expect(b',', "`,` or `]`")?;
            }
            match node
                .children
                .iter()
                .find(|(tok, _)| tok.index == Some(index))
            {
                Some((_, child)) => {
                    self.value(child)?;
                }
                None => {
                    self.skip_value()?;
                }
            }
            if index == max_index {
                // All referenced indices visited: fast-forward to the array
                // end (the G5 opportunity).
                fastforward::go_to_ary_end(&mut self.cur, &mut self.stats, Group::G5)?;
                self.cur.bump(); // consume `]`
                return Ok((start, self.cur.pos()));
            }
            index += 1;
        }
    }
}

/// Compares a raw (still-escaped) object key against an unescaped pointer
/// token. The fast path is a straight byte comparison; keys containing
/// escapes are decoded with the same routine [`LazyValue::as_str`] uses.
fn key_matches(raw_key: &[u8], token: &str) -> bool {
    if !raw_key.contains(&b'\\') {
        return raw_key == token.as_bytes();
    }
    matches!(decode_string_contents(raw_key, 0), Ok(decoded) if decoded == token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_parsing_and_display_round_trip() {
        let ptr: JsonPointer = "/a~1b/~0/x y/".parse().unwrap();
        assert_eq!(ptr.tokens(), ["a/b", "~", "x y", ""]);
        assert_eq!(ptr.to_string(), "/a~1b/~0/x y/");
        assert!(JsonPointer::from_str("").unwrap().is_root());
        assert_eq!(
            JsonPointer::from_str("a/b"),
            Err(PointerParseError::MissingSlash)
        );
        assert_eq!(
            JsonPointer::from_str("/a/~2"),
            Err(PointerParseError::InvalidEscape { pos: 3 })
        );
        assert_eq!(
            JsonPointer::from_str("/~"),
            Err(PointerParseError::InvalidEscape { pos: 1 })
        );
    }

    #[test]
    fn numeric_tokens_follow_rfc_6901() {
        let t = |s: &str| Token::new(s.to_owned());
        assert_eq!(t("0").index, Some(0));
        assert_eq!(t("12").index, Some(12));
        assert_eq!(t("01").index, None, "leading zero is not an index");
        assert_eq!(t("-").index, None);
        assert_eq!(t("1x").index, None);
        assert_eq!(t("").index, None);
    }

    #[test]
    fn root_pointer_addresses_whole_record() {
        let record = br#"  {"a": 1}  "#;
        let got = get(record, "").unwrap().unwrap();
        assert_eq!(got.as_raw(), br#"{"a": 1}"#);
    }

    #[test]
    fn nested_object_and_array_lookup() {
        let record = br#"{"a": {"b": [10, {"c": true}, 30]}, "z": null}"#;
        assert_eq!(get(record, "/a/b/0").unwrap().unwrap().as_i64(), Some(10));
        assert_eq!(
            get(record, "/a/b/1/c").unwrap().unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(get(record, "/a/b/2").unwrap().unwrap().as_i64(), Some(30));
        assert!(get(record, "/z").unwrap().unwrap().is_null());
        assert!(get(record, "/a/b/3").unwrap().is_none());
        assert!(get(record, "/a/x").unwrap().is_none());
        assert!(get(record, "/a/b/0/deeper").unwrap().is_none());
    }

    #[test]
    fn escaped_keys_match_unescaped_tokens() {
        let record = br#"{"a/b": 1, "~": 2, "new\nline": 3}"#;
        assert_eq!(get(record, "/a~1b").unwrap().unwrap().as_i64(), Some(1));
        assert_eq!(get(record, "/~0").unwrap().unwrap().as_i64(), Some(2));
        // The document key is escaped; the pointer token holds the decoded
        // form.
        assert_eq!(
            get(record, "/new\nline").unwrap().unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn numeric_token_matches_object_key_too() {
        let record = br#"{"0": "as-key"}"#;
        assert_eq!(
            get(record, "/0").unwrap().unwrap().as_str().unwrap(),
            "as-key"
        );
    }

    #[test]
    fn first_occurrence_wins_on_duplicate_keys() {
        let record = br#"{"k": 1, "k": 2}"#;
        assert_eq!(get(record, "/k").unwrap().unwrap().as_i64(), Some(1));
    }

    #[test]
    fn get_many_resolves_all_in_order() {
        let record = br#"{"u": {"id": 7, "roles": ["a", "b"]}, "n": 1.5}"#;
        let got = get_many(record, &["/n", "/u/roles/1", "/u/id", "/nope"]).unwrap();
        assert_eq!(got[0].unwrap().as_f64(), Some(1.5));
        assert_eq!(got[1].unwrap().as_raw(), b"\"b\"");
        assert_eq!(got[2].unwrap().as_i64(), Some(7));
        assert!(got[3].is_none());
    }

    #[test]
    fn shared_pass_classifies_each_word_at_most_once() {
        // A record long enough to span many 64-byte words.
        let mut record = b"{\"head\": 0, \"pad\": [".to_vec();
        for i in 0..200 {
            if i > 0 {
                record.push(b',');
            }
            record.extend_from_slice(format!("{{\"x\": {i}}}").as_bytes());
        }
        record.extend_from_slice(b"], \"tail\": {\"deep\": [1, 2, 3]}}");

        let pointers = [
            "/head",
            "/tail/deep/0",
            "/tail/deep/2",
            "/pad/0/x",
            "/pad/199/x",
            "/missing",
        ];
        let ex = Extractor::compile(&pointers).unwrap();
        let found = ex.extract(&record).unwrap();
        assert_eq!(found.get(0).unwrap().as_i64(), Some(0));
        assert_eq!(found.get(1).unwrap().as_i64(), Some(1));
        assert_eq!(found.get(2).unwrap().as_i64(), Some(3));
        assert_eq!(found.get(3).unwrap().as_i64(), Some(0));
        assert_eq!(found.get(4).unwrap().as_i64(), Some(199));
        assert!(found.get(5).is_none());

        // One pass over the record: however many pointers were resolved,
        // no word is ever classified twice.
        let words_available = record.len().div_ceil(simdbits::BLOCK);
        assert!(
            found.words_classified() <= words_available,
            "{} words classified for a {}-word record",
            found.words_classified(),
            words_available
        );
    }

    #[test]
    fn early_exit_fast_forwards_remaining_siblings() {
        // Once `/a` resolves, the huge sibling object is hopped (G4), not
        // tokenized — visible as fast-forwarded bytes in the stats.
        let mut record = b"{\"a\": 1, \"big\": [".to_vec();
        record.extend_from_slice(&b"9,".repeat(5000));
        record.extend_from_slice(b"9]}");
        let ex = Extractor::compile(&["/a"]).unwrap();
        let found = ex.extract(&record).unwrap();
        assert_eq!(found.get(0).unwrap().as_i64(), Some(1));
        assert!(
            found.stats().overall_ratio() > 0.9,
            "sibling tail should be fast-forwarded"
        );
    }

    #[test]
    fn strict_mode_validates_skipped_subtrees() {
        // The malformed escape hides in a subtree no pointer touches.
        let record = br#"{"a": 1, "skipped": "bad \q escape"}"#;
        let permissive = Extractor::compile(&["/a"]).unwrap();
        assert!(permissive.extract(record).is_ok());
        let strict = Extractor::compile(&["/a"])
            .unwrap()
            .with_validation(ValidationMode::Strict);
        assert!(matches!(
            strict.extract(record),
            Err(StreamError::Invalid { .. })
        ));
    }

    #[test]
    fn malformed_record_is_a_stream_error() {
        let record = br#"{"a": [1, 2"#;
        assert!(matches!(get(record, "/a/5"), Err(ExtractError::Stream(_))));
        assert!(matches!(
            get(record, "/bad~9"),
            Err(ExtractError::Pointer(
                PointerParseError::InvalidEscape { .. }
            ))
        ));
    }

    #[test]
    fn forced_kernels_agree() {
        let record = br#"{"a": {"b": ["x", "y", {"z": 42}]}, "c": "d"}"#;
        let pointers = ["/a/b/2/z", "/c", "/a/b/0"];
        let reference = get_many(record, &pointers).unwrap();
        for kernel in Kernel::all().iter().copied().filter(|k| k.is_supported()) {
            let ex = Extractor::compile(&pointers)
                .unwrap()
                .with_kernel(Some(kernel));
            let found = ex.extract(record).unwrap();
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(
                    found.get(i).map(|v| v.as_raw().to_vec()),
                    want.map(|v| v.as_raw().to_vec()),
                    "kernel {kernel:?} pointer {}",
                    pointers[i]
                );
            }
        }
    }
}
