//! Parallel record-batch pipeline with backpressure.
//!
//! The paper's small-records scenario assigns "each thread ... to process
//! one small record each time" (Figure 12). [`Pipeline`] generalizes that
//! runner into a subsystem usable with *any* engine ([`Evaluate`]) and *any*
//! record source ([`RecordSource`] — in-memory slices via [`SliceRecords`]
//! or bounded-memory readers via [`ChunkedRecords`]):
//!
//! * the caller thread reads records and shards them across a scoped worker
//!   pool through a **bounded queue** — when workers fall behind, the reader
//!   blocks instead of buffering the stream, so peak memory is
//!   `O(workers × queue_depth × record size)` regardless of stream length;
//! * workers evaluate records concurrently, collecting match spans;
//! * the caller merges results back **in record order**, so the sink
//!   observes exactly the sequence a serial loop would deliver, for any
//!   worker count.
//!
//! Early exit ([`ControlFlow::Break`] from the sink) and the
//! [`ErrorPolicy`] are honoured at the merge point: a break stops the
//! stream (records already dispatched may be evaluated speculatively, but
//! their matches are never delivered), and a failed record either aborts
//! the run ([`ErrorPolicy::FailFast`], in record order) or is reported to
//! [`MatchSink::on_record_error`] and skipped
//! ([`ErrorPolicy::SkipMalformed`]).
//!
//! # Fault tolerance
//!
//! Under [`ErrorPolicy::SkipMalformed`] the pipeline also survives *source*
//! errors, provided the source can resynchronize
//! ([`RecordSource::resync`]): the broken span is skipped, reported to
//! [`MatchSink::on_resync`] in the same merge-ordered position a serial run
//! would report it, counted in [`PipelineSummary::resyncs`], and the stream
//! continues. I/O errors are never recoverable. A [`ResourceLimits`]
//! attached with [`Pipeline::limits`] rejects oversized records before they
//! reach a worker, as ordinary per-record failures.
//!
//! With `workers <= 1` the pipeline degenerates to a serial loop. Matches
//! are still staged per record and replayed to the sink only after the
//! record evaluates cleanly, so a malformed record delivers *nothing* —
//! byte-identical to the parallel merge for every worker count and both
//! error policies. (Callers that want true mid-record early exit on a
//! single record should use [`JsonSki::stream`] directly.)
//!
//! # Observability
//!
//! Attach a shared [`Metrics`] registry with [`Pipeline::metrics`] and the
//! run records queue occupancy, producer backpressure stalls, worker idle
//! waits, per-worker records/bytes, skipped-record counts, and — through
//! [`Evaluate::evaluate_metered`] — the engine's own byte-level and
//! fast-forward counters.
//!
//! # Crash safety
//!
//! Three mechanisms make a run survivable end-to-end:
//!
//! * **Panic isolation** — each record's evaluation runs inside
//!   [`std::panic::catch_unwind`], on both the worker and the serial
//!   path. A panic becomes an ordinary [`EngineError::Panic`] carrying
//!   the record's ordinal, flowing through the [`ErrorPolicy`] like any
//!   other per-record failure: [`ErrorPolicy::SkipMalformed`] skips it,
//!   [`ErrorPolicy::FailFast`] drains earlier results in order and
//!   aborts. One poisoned record never deadlocks the bounded queues or
//!   kills a worker thread.
//! * **Cooperative cancellation** — attach a
//!   [`CancellationToken`](crate::CancellationToken) with
//!   [`Pipeline::cancel_token`] and the producer stops reading at the
//!   next record boundary, workers finish what was already dispatched,
//!   the merge flushes every delivered result, and the summary reports
//!   [`cancelled`](PipelineSummary::cancelled) with the exact committed
//!   byte offset.
//! * **Checkpoints** — attach a
//!   [`CheckpointCadence`](crate::CheckpointCadence) with
//!   [`Pipeline::checkpoints`] and the in-order merge periodically calls
//!   [`MatchSink::on_checkpoint`] with the summary-so-far. Because the
//!   call sits *behind* the merge point, a checkpoint never claims work
//!   that was not already delivered to the sink.
//!
//! [`ChunkedRecords`]: crate::ChunkedRecords
//! [`JsonSki::stream`]: crate::JsonSki::stream

use std::collections::{BTreeMap, VecDeque};
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::cancel::CancellationToken;
use crate::checkpoint::CheckpointCadence;
use crate::evaluate::{
    panic_payload, EngineError, ErrorPolicy, Evaluate, Match, MatchSink, RecordOutcome,
};
use crate::limits::{LimitExceeded, ResourceLimits};
use crate::metrics::Metrics;
use crate::records::RecordSplitter;

/// A pull-based source of complete JSON records.
///
/// The returned slice borrows the source and is valid until the next call
/// (a lending iterator). Sources are consumed by [`Pipeline::run`] on the
/// caller thread, so they need not be `Send`.
pub trait RecordSource {
    /// Returns the next record's bytes, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when the source cannot produce the next record
    /// (I/O failure, a record boundary that cannot be located, or a
    /// resource-limit rejection). Under [`ErrorPolicy::SkipMalformed`] the
    /// pipeline answers a recoverable source error
    /// ([`EngineError::is_resyncable`]) with [`resync`](Self::resync) and
    /// keeps going; I/O errors, and any error on a source that cannot
    /// resynchronize, abort the run.
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError>;

    /// After [`next_record`](Self::next_record) returned an error, skips
    /// forward to the next record boundary so the stream can continue,
    /// returning the global byte span `(start, end)` that was abandoned.
    /// `Ok(None)` means the source cannot resynchronize (the default) and
    /// the pipeline propagates the original error.
    ///
    /// # Errors
    ///
    /// [`EngineError`] when the skip-ahead itself fails (e.g. I/O).
    fn resync(&mut self) -> Result<Option<(u64, u64)>, EngineError> {
        Ok(None)
    }

    /// The global byte offset just past the most recently returned record
    /// (or resynchronized span) — how far into the stream the source has
    /// consumed. `None` (the default) means the source cannot report
    /// offsets, which leaves [`PipelineSummary::committed_offset`] at 0
    /// and makes checkpoints carry counters only.
    fn consumed_offset(&self) -> Option<u64> {
        None
    }
}

/// [`RecordSource`] over an in-memory stream, using the bit-parallel
/// [`RecordSplitter`] to discover record boundaries.
#[derive(Debug)]
pub struct SliceRecords<'a> {
    splitter: RecordSplitter<'a>,
}

impl<'a> SliceRecords<'a> {
    /// Wraps `stream` (whitespace/newline-separated JSON values).
    pub fn new(stream: &'a [u8]) -> Self {
        SliceRecords {
            splitter: RecordSplitter::new(stream),
        }
    }
}

impl RecordSource for SliceRecords<'_> {
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
        match self.splitter.next() {
            None => Ok(None),
            Some(Ok((s, e))) => Ok(Some(&self.splitter.stream()[s..e])),
            Some(Err(e)) => Err(EngineError::Stream(e)),
        }
    }

    fn resync(&mut self) -> Result<Option<(u64, u64)>, EngineError> {
        Ok(self.splitter.resync().map(|(s, e)| (s as u64, e as u64)))
    }

    fn consumed_offset(&self) -> Option<u64> {
        Some(self.splitter.pos() as u64)
    }
}

impl<R: std::io::Read> RecordSource for crate::ChunkedRecords<R> {
    fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
        crate::ChunkedRecords::next_record(self).map_err(EngineError::from)
    }

    fn resync(&mut self) -> Result<Option<(u64, u64)>, EngineError> {
        crate::ChunkedRecords::resync(self).map_err(EngineError::from)
    }

    fn consumed_offset(&self) -> Option<u64> {
        Some(crate::ChunkedRecords::consumed_offset(self))
    }
}

/// Aggregate result of a [`Pipeline::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineSummary {
    /// Records whose outcome was merged (evaluated or skipped-as-failed).
    pub records: u64,
    /// Matches delivered to the sink, across all records (including the
    /// match the sink broke on, if any).
    pub matches: usize,
    /// Records skipped under [`ErrorPolicy::SkipMalformed`].
    pub failed: u64,
    /// Whether the sink stopped the stream early.
    pub stopped: bool,
    /// Mid-stream resynchronizations: broken spans the source skipped over
    /// under [`ErrorPolicy::SkipMalformed`].
    pub resyncs: u64,
    /// Total bytes abandoned by those resynchronizations.
    pub resync_bytes: u64,
    /// Whether the run was ended early by cooperative cancellation (see
    /// [`Pipeline::cancel_token`]). Everything counted above was still
    /// fully delivered before the run returned.
    pub cancelled: bool,
    /// High-water committed input offset: the global byte offset just past
    /// the last record (or resynchronized span) whose outcome was merged.
    /// Stays 0 when the source does not report offsets
    /// ([`RecordSource::consumed_offset`]).
    pub committed_offset: u64,
}

/// Parallel record-batch runner; see the module docs (source of `pipeline.rs`).
///
/// # Example
///
/// ```
/// use jsonski::{CountSink, JsonSki, Pipeline, SliceRecords};
///
/// let stream = b"{\"a\": 1}\n{\"b\": 2}\n{\"a\": 3}\n";
/// let engine = JsonSki::compile("$.a")?;
/// let mut sink = CountSink::default();
/// let summary = Pipeline::new()
///     .workers(4)
///     .run(&engine, &mut SliceRecords::new(stream), &mut sink)?;
/// assert_eq!(summary.records, 3);
/// assert_eq!(sink.matches, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    workers: usize,
    queue_depth: usize,
    policy: ErrorPolicy,
    limits: ResourceLimits,
    metrics: Option<Arc<Metrics>>,
    cancel: Option<CancellationToken>,
    checkpoints: Option<CheckpointCadence>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// A pipeline with one worker per available core, queue depth 4,
    /// [`ErrorPolicy::FailFast`], and no metrics registry.
    pub fn new() -> Self {
        Pipeline {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_depth: 4,
            policy: ErrorPolicy::default(),
            limits: ResourceLimits::default(),
            metrics: None,
            cancel: None,
            checkpoints: None,
        }
    }

    /// Sets the worker count. `0` or `1` selects the serial path.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-worker bound on in-flight records (min 1). Total
    /// buffered records never exceed `workers × queue_depth`.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the policy for records that fail to evaluate.
    pub fn error_policy(mut self, policy: ErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the resource limits the pipeline enforces *before* dispatching
    /// a record to a worker (currently
    /// [`max_record_bytes`](ResourceLimits::max_record_bytes); depth and
    /// deadline guards run inside the engine via
    /// [`EngineConfig::limits`](crate::EngineConfig)). An over-limit record
    /// is a per-record failure and respects the [`ErrorPolicy`].
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches a shared observability registry; see the
    /// module docs (§Observability) for what gets recorded.
    pub fn metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a cooperative cancellation token. When it trips, the run
    /// stops reading at the next record boundary, finishes records already
    /// dispatched, delivers them in order, and returns `Ok` with
    /// [`PipelineSummary::cancelled`] set — never an error, never a
    /// half-delivered record.
    pub fn cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables checkpointing at the given cadence:
    /// [`MatchSink::on_checkpoint`] is called from the in-order merge with
    /// the summary of everything delivered so far, plus once more when the
    /// run ends cleanly (complete, stopped, or cancelled). An error from
    /// the callback aborts the run — a checkpoint that cannot be persisted
    /// is an operational failure, not a per-record one.
    pub fn checkpoints(mut self, cadence: CheckpointCadence) -> Self {
        self.checkpoints = Some(cadence);
        self
    }

    /// The attached registry, only when it actually records.
    fn live_metrics(&self) -> Option<&Metrics> {
        self.metrics.as_deref().filter(|m| m.is_enabled())
    }

    /// Whether the attached token (if any) has requested cancellation.
    fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
    }

    /// Runs `engine` over every record of `source`, delivering matches to
    /// `sink` in record order.
    ///
    /// # Errors
    ///
    /// Source errors always; evaluation errors under
    /// [`ErrorPolicy::FailFast`] (the first in record order).
    pub fn run(
        &self,
        engine: &dyn Evaluate,
        source: &mut dyn RecordSource,
        sink: &mut dyn MatchSink,
    ) -> Result<PipelineSummary, EngineError> {
        if self.workers <= 1 {
            self.run_serial(engine, source, sink)
        } else {
            self.run_parallel(engine, source, sink)
        }
    }

    fn run_serial(
        &self,
        engine: &dyn Evaluate,
        source: &mut dyn RecordSource,
        sink: &mut dyn MatchSink,
    ) -> Result<PipelineSummary, EngineError> {
        let metrics = self.live_metrics();
        let mut summary = PipelineSummary::default();
        let mut tracker = self.checkpoints.map(CheckpointTracker::new);
        let mut idx = 0u64;
        let mut staged = Collector::new();
        loop {
            if self.is_cancelled() {
                summary.cancelled = true;
                break;
            }
            // The record borrow must die inside the match so the paths
            // below can use the source again (resync, consumed_offset).
            let step = match source.next_record() {
                Ok(None) => Step::Done,
                Err(e) => Step::SourceErr(e),
                Ok(Some(record)) => {
                    let len = record.len() as u64;
                    let outcome = if record.len() > self.limits.max_record_bytes {
                        // Rejected before dispatch: no evaluation work.
                        if let Some(m) = metrics {
                            m.record_limit_rejection();
                        }
                        RecordOutcome::Failed(EngineError::Limit(LimitExceeded::RecordBytes {
                            len: record.len(),
                            limit: self.limits.max_record_bytes,
                        }))
                    } else {
                        staged.clear();
                        // Unwind safety: see `worker_loop` — engines hold no
                        // cross-record state, and `staged` is cleared before
                        // the next use so a torn stage is never replayed.
                        catch_unwind(AssertUnwindSafe(|| match metrics {
                            Some(m) => {
                                m.record_worker(0, len);
                                engine.evaluate_metered(record, idx, &mut staged, m)
                            }
                            None => engine.evaluate(record, idx, &mut staged),
                        }))
                        .unwrap_or_else(|p| {
                            if let Some(m) = metrics {
                                m.record_worker_panic();
                            }
                            RecordOutcome::Failed(EngineError::Panic {
                                record_idx: idx,
                                payload: panic_payload(p.as_ref()),
                            })
                        })
                    };
                    Step::Evaluated { len, outcome }
                }
            };
            match step {
                Step::Done => break,
                Step::SourceErr(e) => match self.try_resync(source, sink, &e, &mut summary)? {
                    Resynced::Continue => {}
                    Resynced::Stopped => {
                        self.final_checkpoint(&tracker, sink, &summary)?;
                        return Ok(summary);
                    }
                    Resynced::Unrecoverable => return Err(e),
                },
                Step::Evaluated { len, outcome } => {
                    summary.records += 1;
                    if let Some(end) = source.consumed_offset() {
                        summary.committed_offset = summary.committed_offset.max(end);
                    }
                    match outcome {
                        RecordOutcome::Complete { .. } | RecordOutcome::Stopped { .. } => {
                            let (delivered, broke) =
                                replay(&staged.record, &staged.spans, idx, sink);
                            summary.matches += delivered;
                            if let Some(m) = metrics {
                                m.record_delivered(delivered as u64, len);
                            }
                            if broke {
                                summary.stopped = true;
                                self.final_checkpoint(&tracker, sink, &summary)?;
                                return Ok(summary);
                            }
                        }
                        RecordOutcome::Failed(e) => match self.policy {
                            ErrorPolicy::FailFast => return Err(e),
                            ErrorPolicy::SkipMalformed => {
                                summary.failed += 1;
                                if let Some(m) = metrics {
                                    m.record_skipped_record();
                                }
                                if sink.on_record_error(idx, &e).is_break() {
                                    summary.stopped = true;
                                    self.final_checkpoint(&tracker, sink, &summary)?;
                                    return Ok(summary);
                                }
                            }
                        },
                    }
                    idx += 1;
                    if let Some(t) = tracker.as_mut() {
                        if t.due(len) {
                            self.emit_checkpoint(sink, &summary)?;
                        }
                    }
                }
            }
        }
        self.final_checkpoint(&tracker, sink, &summary)?;
        Ok(summary)
    }

    /// Delivers one checkpoint callback, recording it in metrics.
    fn emit_checkpoint(
        &self,
        sink: &mut dyn MatchSink,
        summary: &PipelineSummary,
    ) -> Result<(), EngineError> {
        if let Some(m) = self.live_metrics() {
            m.record_checkpoint();
        }
        sink.on_checkpoint(summary)
    }

    /// The closing checkpoint of a cleanly ending run (complete, stopped,
    /// or cancelled), so the caller's last durable state matches the
    /// returned summary. No-op when checkpointing is off.
    fn final_checkpoint(
        &self,
        tracker: &Option<CheckpointTracker>,
        sink: &mut dyn MatchSink,
        summary: &PipelineSummary,
    ) -> Result<(), EngineError> {
        if tracker.is_some() {
            self.emit_checkpoint(sink, summary)?;
        }
        Ok(())
    }

    /// Shared source-error recovery: under [`ErrorPolicy::SkipMalformed`],
    /// asks a resyncable source to skip past the broken span and reports it
    /// to the sink.
    fn try_resync(
        &self,
        source: &mut dyn RecordSource,
        sink: &mut dyn MatchSink,
        error: &EngineError,
        summary: &mut PipelineSummary,
    ) -> Result<Resynced, EngineError> {
        if !matches!(self.policy, ErrorPolicy::SkipMalformed) || !error.is_resyncable() {
            return Ok(Resynced::Unrecoverable);
        }
        match source.resync()? {
            None => Ok(Resynced::Unrecoverable),
            Some(span) => {
                summary.resyncs += 1;
                summary.resync_bytes += span.1 - span.0;
                summary.committed_offset = summary.committed_offset.max(span.1);
                if let Some(m) = self.live_metrics() {
                    m.record_resync(span.1 - span.0);
                }
                if sink.on_resync(span, error).is_break() {
                    summary.stopped = true;
                    Ok(Resynced::Stopped)
                } else {
                    Ok(Resynced::Continue)
                }
            }
        }
    }

    fn run_parallel(
        &self,
        engine: &dyn Evaluate,
        source: &mut dyn RecordSource,
        sink: &mut dyn MatchSink,
    ) -> Result<PipelineSummary, EngineError> {
        let capacity = self.workers * self.queue_depth;
        let shared = Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                results: BTreeMap::new(),
                in_flight: 0,
                producer_done: false,
                stop: false,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
        };
        let metrics = self.live_metrics();
        std::thread::scope(|scope| {
            for worker in 0..self.workers {
                let shared = &shared;
                scope.spawn(move || worker_loop(engine, shared, worker, metrics));
            }
            // Guard, not epilogue: the merge loop runs sink callbacks, and
            // a panicking sink would otherwise skip the release and leave
            // the scope join deadlocked on workers waiting for work. By
            // drop time every result the run will ever deliver has been
            // merged, so `stop` abandons nothing.
            let _release = ReleaseWorkers(&shared);
            self.produce_and_merge(source, sink, &shared, capacity)
        })
    }

    /// The caller thread's half of the parallel pipeline: reads records
    /// while queue capacity allows (backpressure), merges worker results in
    /// record order, applies early exit and the error policy at the merge
    /// point. Resynchronizations and pre-dispatch limit rejections enter
    /// the merge sequence as ordinary entries, so the sink observes the
    /// exact callback order of a serial run for any worker count.
    fn produce_and_merge(
        &self,
        source: &mut dyn RecordSource,
        sink: &mut dyn MatchSink,
        shared: &Shared,
        capacity: usize,
    ) -> Result<PipelineSummary, EngineError> {
        let metrics = self.live_metrics();
        let mut summary = PipelineSummary::default();
        let mut tracker = self.checkpoints.map(CheckpointTracker::new);
        let mut next_read = 0u64; // next merge ordinal to assign
        let mut next_merge = 0u64; // next merge ordinal to deliver
        let mut record_idx = 0u64; // record ordinal (excludes resync events)
        let mut source_done = false;
        loop {
            // Merge every in-order result that is ready, without holding
            // the lock across sink callbacks.
            loop {
                let item = {
                    let mut state = shared.state.lock().unwrap();
                    match state.results.remove(&next_merge) {
                        Some(item) => {
                            state.in_flight -= 1;
                            item
                        }
                        None => break,
                    }
                };
                shared.work_ready.notify_all();
                match item {
                    MergeItem::Resync(span, e) => {
                        summary.resyncs += 1;
                        summary.resync_bytes += span.1 - span.0;
                        summary.committed_offset = summary.committed_offset.max(span.1);
                        if let Some(m) = metrics {
                            m.record_resync(span.1 - span.0);
                        }
                        if sink.on_resync(span, &e).is_break() {
                            summary.stopped = true;
                            self.stop(shared);
                            self.final_checkpoint(&tracker, sink, &summary)?;
                            return Ok(summary);
                        }
                    }
                    MergeItem::Record { len, end, result } => {
                        summary.records += 1;
                        if let Some(end) = end {
                            summary.committed_offset = summary.committed_offset.max(end);
                        }
                        match result {
                            Ok((record, spans)) => {
                                let (delivered, broke) = replay(&record, &spans, record_idx, sink);
                                summary.matches += delivered;
                                if let Some(m) = metrics {
                                    m.record_delivered(delivered as u64, len as u64);
                                }
                                if broke {
                                    summary.stopped = true;
                                    self.stop(shared);
                                    self.final_checkpoint(&tracker, sink, &summary)?;
                                    return Ok(summary);
                                }
                            }
                            Err(mut e) => {
                                // Workers only know merge ordinals; stamp
                                // the true record ordinal at the merge,
                                // where it is known.
                                if let EngineError::Panic { record_idx: ri, .. } = &mut e {
                                    *ri = record_idx;
                                }
                                match self.policy {
                                    ErrorPolicy::FailFast => {
                                        self.stop(shared);
                                        return Err(e);
                                    }
                                    ErrorPolicy::SkipMalformed => {
                                        summary.failed += 1;
                                        if let Some(m) = metrics {
                                            m.record_skipped_record();
                                        }
                                        if sink.on_record_error(record_idx, &e).is_break() {
                                            summary.stopped = true;
                                            self.stop(shared);
                                            self.final_checkpoint(&tracker, sink, &summary)?;
                                            return Ok(summary);
                                        }
                                    }
                                }
                            }
                        }
                        record_idx += 1;
                        if let Some(t) = tracker.as_mut() {
                            if t.due(len as u64) {
                                if let Err(e) = self.emit_checkpoint(sink, &summary) {
                                    self.stop(shared);
                                    return Err(e);
                                }
                            }
                        }
                    }
                }
                next_merge += 1;
            }
            // Refill the queue up to the in-flight bound (backpressure).
            while !source_done {
                if self.is_cancelled() {
                    // Stop producing; everything already dispatched still
                    // drains through the merge above before we return.
                    summary.cancelled = true;
                    source_done = true;
                    break;
                }
                {
                    let state = shared.state.lock().unwrap();
                    if state.in_flight >= capacity {
                        if let Some(m) = metrics {
                            m.record_producer_stall();
                        }
                        break;
                    }
                }
                // The record borrow must die before `consumed_offset`, so
                // classify the read first and dispatch after.
                let got = match source.next_record() {
                    Ok(None) => Fetched::End,
                    Err(e) => Fetched::Fail(e),
                    Ok(Some(record)) => {
                        if record.len() > self.limits.max_record_bytes {
                            Fetched::Oversized(record.len())
                        } else {
                            Fetched::Dispatch(record.to_vec())
                        }
                    }
                };
                let end = source.consumed_offset();
                match got {
                    Fetched::End => {
                        source_done = true;
                    }
                    Fetched::Oversized(len) => {
                        // Rejected before dispatch: deposit a pre-failed
                        // result directly into the merge sequence,
                        // skipping the workers entirely.
                        if let Some(m) = metrics {
                            m.record_limit_rejection();
                        }
                        let e = EngineError::Limit(LimitExceeded::RecordBytes {
                            len,
                            limit: self.limits.max_record_bytes,
                        });
                        let mut state = shared.state.lock().unwrap();
                        state.results.insert(
                            next_read,
                            MergeItem::Record {
                                len,
                                end,
                                result: Err(e),
                            },
                        );
                        state.in_flight += 1;
                        next_read += 1;
                    }
                    Fetched::Dispatch(owned) => {
                        let mut state = shared.state.lock().unwrap();
                        state.queue.push_back((next_read, end, owned));
                        state.in_flight += 1;
                        if let Some(m) = metrics {
                            m.record_queue_occupancy(state.in_flight as u64);
                        }
                        next_read += 1;
                        drop(state);
                        shared.work_ready.notify_one();
                    }
                    Fetched::Fail(e) => {
                        if matches!(self.policy, ErrorPolicy::SkipMalformed) && e.is_resyncable() {
                            match source.resync() {
                                Ok(Some(span)) => {
                                    // Enters the merge sequence so the sink
                                    // sees it after all earlier records.
                                    let mut state = shared.state.lock().unwrap();
                                    state.results.insert(next_read, MergeItem::Resync(span, e));
                                    state.in_flight += 1;
                                    next_read += 1;
                                    continue;
                                }
                                Ok(None) => {
                                    self.stop(shared);
                                    return Err(e);
                                }
                                Err(resync_err) => {
                                    self.stop(shared);
                                    return Err(resync_err);
                                }
                            }
                        }
                        self.stop(shared);
                        return Err(e);
                    }
                }
            }
            // Done when everything read has been merged.
            if source_done && next_merge == next_read {
                self.final_checkpoint(&tracker, sink, &summary)?;
                return Ok(summary);
            }
            // Otherwise wait until the next in-order result lands.
            let mut state = shared.state.lock().unwrap();
            while !state.results.contains_key(&next_merge) {
                state = shared.result_ready.wait(state).unwrap();
            }
        }
    }

    fn stop(&self, shared: &Shared) {
        let mut state = shared.state.lock().unwrap();
        state.stop = true;
        drop(state);
        shared.work_ready.notify_all();
    }
}

/// Replays staged match spans to the real sink as borrowed [`Match`]
/// handles over the staged record copy; returns how many were delivered
/// (including the one the sink broke on) and whether the sink broke.
fn replay(
    record: &[u8],
    spans: &[(usize, usize)],
    record_idx: u64,
    sink: &mut dyn MatchSink,
) -> (usize, bool) {
    for (i, &span) in spans.iter().enumerate() {
        if sink
            .on_match(Match::new(record_idx, record, span))
            .is_break()
        {
            return (i + 1, true);
        }
    }
    (spans.len(), false)
}

/// Outcome of a serial-path [`Pipeline::try_resync`] attempt.
enum Resynced {
    /// The broken span was skipped; keep consuming the source.
    Continue,
    /// The sink broke on the resync report; end the run cleanly.
    Stopped,
    /// Policy or source cannot recover; propagate the original error.
    Unrecoverable,
}

/// One step of the serial loop, computed while the record borrow is live
/// so the source can be used again (offset, resync) once it is dropped.
enum Step {
    Done,
    SourceErr(EngineError),
    Evaluated { len: u64, outcome: RecordOutcome },
}

/// One read of the parallel producer, classified while the record borrow
/// is live; dispatching happens after, so the producer can also ask the
/// source for its consumed offset.
enum Fetched {
    End,
    Fail(EngineError),
    Oversized(usize),
    Dispatch(Vec<u8>),
}

/// Counts merged records/bytes against a [`CheckpointCadence`].
struct CheckpointTracker {
    cadence: CheckpointCadence,
    records: u64,
    bytes: u64,
}

impl CheckpointTracker {
    fn new(cadence: CheckpointCadence) -> Self {
        CheckpointTracker {
            cadence,
            records: 0,
            bytes: 0,
        }
    }

    /// Accounts one merged record; `true` when a checkpoint is due (and
    /// the counters reset).
    fn due(&mut self, record_bytes: u64) -> bool {
        self.records += 1;
        self.bytes = self.bytes.saturating_add(record_bytes);
        if self.records >= self.cadence.every_records || self.bytes >= self.cadence.every_bytes {
            self.records = 0;
            self.bytes = 0;
            true
        } else {
            false
        }
    }
}

/// A worker's output for one record: the record's bytes (moved back out of
/// the worker) plus the match spans collected into them.
type StagedMatches = (Vec<u8>, Vec<(usize, usize)>);

/// One entry in the in-order merge sequence.
enum MergeItem {
    /// A dispatched (or pre-rejected) record.
    Record {
        /// The record's byte length.
        len: usize,
        /// Global offset just past the record in the input stream, when
        /// the source reports offsets.
        end: Option<u64>,
        /// The record's bytes plus the collected match spans into them,
        /// or the failure. The worker moves its already-owned record out
        /// so replay can hand the sink borrowed [`Match`] handles.
        result: Result<StagedMatches, EngineError>,
    },
    /// A source resynchronization: the skipped global span and the error
    /// that caused it.
    Resync((u64, u64), EngineError),
}

struct State {
    /// FIFO of records awaiting a worker: merge ordinal, end offset,
    /// record bytes.
    queue: VecDeque<(u64, Option<u64>, Vec<u8>)>,
    /// Completed records awaiting in-order merging.
    results: BTreeMap<u64, MergeItem>,
    /// Records read from the source but not yet merged (queued, executing,
    /// or completed) — bounded by `workers × queue_depth`.
    in_flight: usize,
    producer_done: bool,
    stop: bool,
}

/// Drop guard that releases all workers: set the end flags and wake
/// everyone, tolerating a poisoned lock (the flags it writes are sound to
/// set whatever state the panic interrupted).
struct ReleaseWorkers<'a>(&'a Shared);

impl Drop for ReleaseWorkers<'_> {
    fn drop(&mut self) {
        let mut state = match self.0.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.producer_done = true;
        state.stop = true;
        drop(state);
        self.0.work_ready.notify_all();
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives, capacity frees up, or the run ends.
    work_ready: Condvar,
    /// Signalled when a worker deposits a result.
    result_ready: Condvar,
}

/// Stages matches as spans plus (at most) one copy of the record they
/// borrow from; never stops the engine (early exit is decided at replay
/// time, where record order is known). The record is copied lazily on the
/// first match, so records without matches stage nothing.
struct Collector {
    record: Vec<u8>,
    spans: Vec<(usize, usize)>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            record: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.record.clear();
        self.spans.clear();
    }
}

impl MatchSink for Collector {
    fn on_match(&mut self, m: Match<'_>) -> ControlFlow<()> {
        if self.spans.is_empty() {
            self.record.clear();
            self.record.extend_from_slice(m.record());
        }
        self.spans.push(m.span());
        ControlFlow::Continue(())
    }
}

fn worker_loop(engine: &dyn Evaluate, shared: &Shared, worker: usize, metrics: Option<&Metrics>) {
    let mut state = shared.state.lock().unwrap();
    loop {
        if state.stop {
            return;
        }
        if let Some((idx, end, record)) = state.queue.pop_front() {
            drop(state);
            // Unwind safety: the engine is `&dyn Evaluate` with no
            // cross-record mutable state (evaluation state is rebuilt per
            // record), the collector is local to this closure and
            // discarded on unwind, and metrics counters are monotone
            // saturating adds — a torn update is at worst an off-by-one
            // count, never a broken invariant.
            let len = record.len();
            let unwind = catch_unwind(AssertUnwindSafe(|| {
                let mut collector = Collector::new();
                let outcome = match metrics {
                    Some(m) => {
                        m.record_worker(worker, record.len() as u64);
                        engine.evaluate_metered(&record, idx, &mut collector, m)
                    }
                    None => engine.evaluate(&record, idx, &mut collector),
                };
                (outcome, record, collector.spans)
            }));
            let result = match unwind {
                Ok((RecordOutcome::Failed(e), _, _)) => Err(e),
                Ok((_, record, spans)) => Ok((record, spans)),
                Err(p) => {
                    if let Some(m) = metrics {
                        m.record_worker_panic();
                    }
                    // `idx` is a merge ordinal; the merge loop stamps the
                    // true record ordinal before the sink sees it.
                    Err(EngineError::Panic {
                        record_idx: idx,
                        payload: panic_payload(p.as_ref()),
                    })
                }
            };
            state = shared.state.lock().unwrap();
            state
                .results
                .insert(idx, MergeItem::Record { len, end, result });
            shared.result_ready.notify_all();
        } else if state.producer_done {
            return;
        } else {
            if let Some(m) = metrics {
                m.record_worker_wait();
            }
            state = shared.work_ready.wait(state).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{CountSink, FnSink};
    use crate::JsonSki;

    fn stream_of(n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend_from_slice(format!("{{\"a\": {i}, \"pad\": [{i}, {i}]}}\n").as_bytes());
        }
        out
    }

    /// A record source over a fixed list of slices; unlike
    /// [`SliceRecords`] it can feed records an unbalanced stream could
    /// never be split into.
    struct Fixed<'a>(std::vec::IntoIter<&'a [u8]>);

    impl RecordSource for Fixed<'_> {
        fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
            Ok(self.0.next())
        }
    }

    #[test]
    fn parallel_matches_serial_counts() {
        let stream = stream_of(100);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 2, 4, 16] {
            let mut sink = CountSink::default();
            let summary = Pipeline::new()
                .workers(workers)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert_eq!(summary.records, 100, "workers={workers}");
            assert_eq!(sink.matches, 100, "workers={workers}");
            assert_eq!(summary.matches, 100, "workers={workers}");
        }
    }

    #[test]
    fn merge_order_is_record_order_for_any_worker_count() {
        let stream = stream_of(60);
        let engine = JsonSki::compile("$.a").unwrap();
        let mut reference: Vec<(u64, Vec<u8>)> = Vec::new();
        {
            let mut sink = FnSink::new(|m: Match<'_>| {
                reference.push((m.record_idx(), m.bytes().to_vec()));
                ControlFlow::Continue(())
            });
            Pipeline::new()
                .workers(1)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
        }
        for workers in [4, 16] {
            let mut got: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut sink = FnSink::new(|m: Match<'_>| {
                got.push((m.record_idx(), m.bytes().to_vec()));
                ControlFlow::Continue(())
            });
            Pipeline::new()
                .workers(workers)
                .queue_depth(2)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn early_exit_stops_the_stream() {
        let stream = stream_of(50);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let mut seen = 0usize;
            let mut sink = FnSink::new(|_m: Match<'_>| {
                seen += 1;
                if seen == 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            let summary = Pipeline::new()
                .workers(workers)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert!(summary.stopped, "workers={workers}");
            assert_eq!(seen, 3, "workers={workers}");
            assert_eq!(summary.matches, 3, "workers={workers}");
        }
    }

    #[test]
    fn fail_fast_aborts_in_record_order() {
        let mut stream = stream_of(10);
        stream.extend_from_slice(b"{\"a\" 1}\n"); // record 10: missing colon
        stream.extend_from_slice(&stream_of(5));
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let mut sink = CountSink::default();
            let err = Pipeline::new()
                .workers(workers)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap_err();
            assert!(matches!(err, EngineError::Stream(_)), "workers={workers}");
            assert_eq!(sink.matches, 10, "workers={workers}");
        }
    }

    #[test]
    fn skip_malformed_reports_and_continues() {
        let mut stream = stream_of(10);
        stream.extend_from_slice(b"{\"a\" 1}\n");
        stream.extend_from_slice(&stream_of(5));
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            struct Recorder {
                matches: usize,
                errors: Vec<u64>,
            }
            impl MatchSink for Recorder {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    self.matches += 1;
                    ControlFlow::Continue(())
                }
                fn on_record_error(&mut self, idx: u64, _e: &EngineError) -> ControlFlow<()> {
                    self.errors.push(idx);
                    ControlFlow::Continue(())
                }
            }
            let mut sink = Recorder {
                matches: 0,
                errors: Vec::new(),
            };
            let summary = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert_eq!(sink.matches, 15, "workers={workers}");
            assert_eq!(sink.errors, vec![10], "workers={workers}");
            assert_eq!(summary.failed, 1, "workers={workers}");
            assert_eq!(summary.records, 16, "workers={workers}");
        }
    }

    #[test]
    fn serial_stages_partial_matches_of_failed_records() {
        // `$[*]` delivers `3` from the malformed record before the missing
        // `]` is discovered; staging must withhold it under SkipMalformed,
        // exactly as the parallel merge does.
        let engine = JsonSki::compile("$[*]").unwrap();
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut sink = FnSink::new(|m: Match<'_>| {
            delivered.push(m.bytes().to_vec());
            ControlFlow::Continue(())
        });
        let records: Vec<&[u8]> = vec![b"[1, 2]", b"[3, 4", b"[5]"];
        let summary = Pipeline::new()
            .workers(1)
            .error_policy(ErrorPolicy::SkipMalformed)
            .run(&engine, &mut Fixed(records.into_iter()), &mut sink)
            .unwrap();
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.matches, 3);
        assert_eq!(
            delivered,
            vec![b"1".to_vec(), b"2".to_vec(), b"5".to_vec()],
            "partial matches of the failed record must not be delivered"
        );
    }

    #[test]
    fn chunked_reader_source_works_in_parallel() {
        let stream = stream_of(40);
        let engine = JsonSki::compile("$.a").unwrap();
        let mut source = crate::ChunkedRecords::with_buffer_size(&stream[..], 32);
        let mut sink = CountSink::default();
        let summary = Pipeline::new()
            .workers(4)
            .run(&engine, &mut source, &mut sink)
            .unwrap();
        assert_eq!(summary.records, 40);
        assert_eq!(sink.matches, 40);
    }

    #[test]
    fn source_errors_abort_under_fail_fast() {
        let stream = b"{\"a\": 1}\n{\"a\": ";
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let err = Pipeline::new()
                .workers(workers)
                .run(
                    &engine,
                    &mut SliceRecords::new(stream),
                    &mut CountSink::default(),
                )
                .unwrap_err();
            assert!(matches!(err, EngineError::Stream(_)), "workers={workers}");
        }
    }

    #[test]
    fn source_errors_resync_when_skipping() {
        // A truncated trailing record breaks the *splitter*; SkipMalformed
        // resynchronizes past it and finishes the run cleanly.
        let stream = b"{\"a\": 1}\n{\"a\": ";
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let mut spans = Vec::new();
            struct Recorder<'a> {
                matches: usize,
                spans: &'a mut Vec<(u64, u64)>,
            }
            impl MatchSink for Recorder<'_> {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    self.matches += 1;
                    ControlFlow::Continue(())
                }
                fn on_resync(&mut self, span: (u64, u64), _e: &EngineError) -> ControlFlow<()> {
                    self.spans.push(span);
                    ControlFlow::Continue(())
                }
            }
            let mut sink = Recorder {
                matches: 0,
                spans: &mut spans,
            };
            let summary = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .run(&engine, &mut SliceRecords::new(stream), &mut sink)
                .unwrap();
            assert_eq!(sink.matches, 1, "workers={workers}");
            assert_eq!(summary.records, 1, "workers={workers}");
            assert_eq!(summary.resyncs, 1, "workers={workers}");
            assert_eq!(summary.resync_bytes, 6, "workers={workers}");
            assert_eq!(spans, vec![(9, 15)], "workers={workers}");
        }
    }

    #[test]
    fn io_errors_never_resync() {
        // Fixed sources can't resync (default), and I/O errors must abort
        // even on sources that can.
        struct Broken(bool);
        impl RecordSource for Broken {
            fn next_record(&mut self) -> Result<Option<&[u8]>, EngineError> {
                if self.0 {
                    self.0 = false;
                    Ok(Some(b"{\"a\": 1}"))
                } else {
                    Err(EngineError::Io(std::io::Error::other("gone")))
                }
            }
            fn resync(&mut self) -> Result<Option<(u64, u64)>, EngineError> {
                panic!("resync must not be attempted for I/O errors");
            }
        }
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let err = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .run(&engine, &mut Broken(true), &mut CountSink::default())
                .unwrap_err();
            assert!(matches!(err, EngineError::Io(_)), "workers={workers}");
        }
    }

    #[test]
    fn oversized_records_are_rejected_before_dispatch() {
        let engine = JsonSki::compile("$.a").unwrap();
        let records: Vec<&[u8]> = vec![
            b"{\"a\": 1}",
            b"{\"a\": 2, \"pad\": \"xxxxxxxxxxxxxxxx\"}",
            b"{\"a\": 3}",
        ];
        for workers in [1, 4] {
            let mut errors = Vec::new();
            struct Recorder<'a>(usize, &'a mut Vec<u64>);
            impl MatchSink for Recorder<'_> {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    self.0 += 1;
                    ControlFlow::Continue(())
                }
                fn on_record_error(&mut self, idx: u64, e: &EngineError) -> ControlFlow<()> {
                    assert!(matches!(e, EngineError::Limit(_)));
                    self.1.push(idx);
                    ControlFlow::Continue(())
                }
            }
            let mut sink = Recorder(0, &mut errors);
            let metrics = Arc::new(Metrics::new());
            let summary = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .limits(crate::ResourceLimits::default().max_record_bytes(16))
                .metrics(Arc::clone(&metrics))
                .run(&engine, &mut Fixed(records.clone().into_iter()), &mut sink)
                .unwrap();
            assert_eq!(sink.0, 2, "workers={workers}");
            assert_eq!(*sink.1, vec![1], "workers={workers}");
            assert_eq!(summary.failed, 1, "workers={workers}");
            assert_eq!(summary.records, 3, "workers={workers}");
            let s = metrics.snapshot();
            assert_eq!(s.limit_rejections, 1, "workers={workers}");
            // Rejected before dispatch: the engine never evaluated it.
            assert_eq!(s.records_evaluated, 2, "workers={workers}");
        }
    }

    #[test]
    fn empty_stream_is_a_clean_run() {
        let engine = JsonSki::compile("$.a").unwrap();
        let mut sink = CountSink::default();
        let summary = Pipeline::new()
            .workers(4)
            .run(&engine, &mut SliceRecords::new(b"  \n "), &mut sink)
            .unwrap();
        assert_eq!(summary, PipelineSummary::default());
    }

    #[test]
    fn metrics_track_delivery_and_workers() {
        let stream = stream_of(50);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let metrics = Arc::new(Metrics::new());
            let mut sink = CountSink::default();
            let summary = Pipeline::new()
                .workers(workers)
                .metrics(Arc::clone(&metrics))
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            let s = metrics.snapshot();
            assert_eq!(s.records_delivered, 50, "workers={workers}");
            assert_eq!(s.matches_delivered, 50, "workers={workers}");
            assert_eq!(s.records_evaluated, 50, "workers={workers}");
            assert_eq!(s.matches_emitted, 50, "workers={workers}");
            assert_eq!(
                s.bytes_delivered,
                stream.len() as u64 - 50, // newline separators are not record bytes
                "workers={workers}"
            );
            assert_eq!(s.worker_records.iter().sum::<u64>(), 50);
            assert!(s.overall_ff_ratio() > 0.0, "workers={workers}");
            assert_eq!(summary.matches, 50);
        }
    }

    #[test]
    fn skipped_record_contributes_zero_to_match_and_ff_counters() {
        // The same stream with and without a malformed record injected
        // must yield identical delivered-match and fast-forward byte
        // counters: a skipped record contributes exactly zero.
        let engine = JsonSki::compile("$[*]").unwrap();
        let clean: Vec<&[u8]> = vec![b"[1, 2]", b"[5, 6, 7]"];
        let bad: Vec<&[u8]> = vec![b"[1, 2]", b"[3, 4", b"[5, 6, 7]"];
        for workers in [1, 4] {
            let run = |records: Vec<&[u8]>| {
                let metrics = Arc::new(Metrics::new());
                let mut sink = CountSink::default();
                Pipeline::new()
                    .workers(workers)
                    .error_policy(ErrorPolicy::SkipMalformed)
                    .metrics(Arc::clone(&metrics))
                    .run(&engine, &mut Fixed(records.into_iter()), &mut sink)
                    .unwrap();
                (metrics.snapshot(), sink.matches)
            };
            let (s_clean, m_clean) = run(clean.clone());
            let (s_bad, m_bad) = run(bad.clone());
            assert_eq!(m_bad, m_clean, "workers={workers}");
            assert_eq!(
                s_bad.matches_delivered, s_clean.matches_delivered,
                "workers={workers}"
            );
            assert_eq!(s_bad.ff_skipped, s_clean.ff_skipped, "workers={workers}");
            assert_eq!(
                s_bad.bytes_evaluated, s_clean.bytes_evaluated,
                "workers={workers}"
            );
            assert_eq!(s_bad.records_skipped, 1, "workers={workers}");
            assert_eq!(s_bad.records_failed, 1, "workers={workers}");
            assert_eq!(s_bad.bytes_failed, 5, "workers={workers}");
        }
    }

    #[test]
    fn worker_panics_become_typed_errors_at_the_right_index() {
        let stream = stream_of(12);
        let engine = JsonSki::compile("$.a").unwrap();
        let plan = crate::faults::FaultPlan::new(0).panic_every(5); // records 4 and 9
        let injector = crate::faults::PanicInjector::new(&engine, &plan);
        for workers in [1, 2, 8] {
            let mut panics = Vec::new();
            struct Recorder<'a> {
                matches: usize,
                panics: &'a mut Vec<(u64, u64)>,
            }
            impl MatchSink for Recorder<'_> {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    self.matches += 1;
                    ControlFlow::Continue(())
                }
                fn on_record_error(&mut self, idx: u64, e: &EngineError) -> ControlFlow<()> {
                    match e {
                        EngineError::Panic { record_idx, .. } => {
                            self.panics.push((idx, *record_idx));
                        }
                        other => panic!("expected Panic, got {other}"),
                    }
                    ControlFlow::Continue(())
                }
            }
            let mut sink = Recorder {
                matches: 0,
                panics: &mut panics,
            };
            let metrics = Arc::new(Metrics::new());
            let summary = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .metrics(Arc::clone(&metrics))
                .run(&injector, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert_eq!(summary.records, 12, "workers={workers}");
            assert_eq!(summary.failed, 2, "workers={workers}");
            assert_eq!(sink.matches, 10, "workers={workers}");
            // The error's own record_idx must agree with the callback's.
            assert_eq!(*sink.panics, vec![(4, 4), (9, 9)], "workers={workers}");
            assert_eq!(metrics.snapshot().worker_panics, 2, "workers={workers}");
        }
    }

    #[test]
    fn fail_fast_panic_drains_in_order_then_aborts() {
        let stream = stream_of(10);
        let engine = JsonSki::compile("$.a").unwrap();
        let plan = crate::faults::FaultPlan::new(0).panic_every(6); // record 5
        let injector = crate::faults::PanicInjector::new(&engine, &plan);
        for workers in [1, 4] {
            let mut sink = CountSink::default();
            let err = Pipeline::new()
                .workers(workers)
                .run(&injector, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap_err();
            match err {
                EngineError::Panic { record_idx, .. } => {
                    assert_eq!(record_idx, 5, "workers={workers}")
                }
                other => panic!("expected Panic, got {other} (workers={workers})"),
            }
            // Everything before the panicked record was still delivered.
            assert_eq!(sink.matches, 5, "workers={workers}");
        }
    }

    #[test]
    fn sink_panic_joins_workers_instead_of_deadlocking() {
        // Without the ReleaseWorkers drop guard this test never returns:
        // the scope join waits on workers parked on the work condvar.
        let stream = stream_of(64);
        let engine = JsonSki::compile("$.a").unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut sink = FnSink::new(|m: Match<'_>| {
                let idx = m.record_idx();
                if idx == 3 {
                    panic!("sink exploded");
                }
                ControlFlow::Continue(())
            });
            Pipeline::new().workers(4).queue_depth(2).run(
                &engine,
                &mut SliceRecords::new(&stream),
                &mut sink,
            )
        }));
        assert!(result.is_err(), "the sink panic must propagate");
    }

    #[test]
    fn early_break_joins_workers_before_returning() {
        // `run` returns through `thread::scope`, which joins every worker;
        // observing an in-flight evaluation after `run` returned would mean
        // a leaked thread. The gauge engine counts entries and exits.
        use std::sync::atomic::{AtomicI64, Ordering};
        struct Gauge<'a> {
            inner: &'a JsonSki,
            active: &'a AtomicI64,
        }
        impl Evaluate for Gauge<'_> {
            fn name(&self) -> &'static str {
                "gauge"
            }
            fn evaluate(
                &self,
                record: &[u8],
                record_idx: u64,
                sink: &mut dyn MatchSink,
            ) -> RecordOutcome {
                self.active.fetch_add(1, Ordering::SeqCst);
                let out = self.inner.evaluate(record, record_idx, sink);
                self.active.fetch_sub(1, Ordering::SeqCst);
                out
            }
        }
        let stream = stream_of(200);
        let engine = JsonSki::compile("$.a").unwrap();
        let active = AtomicI64::new(0);
        let gauge = Gauge {
            inner: &engine,
            active: &active,
        };
        let mut sink = FnSink::new(|_m: Match<'_>| ControlFlow::Break(()));
        let summary = Pipeline::new()
            .workers(8)
            .run(&gauge, &mut SliceRecords::new(&stream), &mut sink)
            .unwrap();
        assert!(summary.stopped);
        assert_eq!(
            active.load(Ordering::SeqCst),
            0,
            "no worker may outlive the run"
        );
    }

    #[test]
    fn cancellation_drains_and_reports_committed_offset() {
        let stream = stream_of(30);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let token = crate::CancellationToken::new();
            let trip = token.clone();
            let mut sink = FnSink::new(move |m: Match<'_>| {
                let idx = m.record_idx();
                if idx == 2 {
                    trip.cancel();
                }
                ControlFlow::Continue(())
            });
            let summary = Pipeline::new()
                .workers(workers)
                .cancel_token(token)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert!(summary.cancelled, "workers={workers}");
            assert!(!summary.stopped, "workers={workers}");
            assert!(
                summary.records >= 3 && summary.records < 30,
                "workers={workers}, records={}",
                summary.records
            );
            // Everything dispatched was still delivered in order...
            assert_eq!(summary.matches as u64, summary.records, "workers={workers}");
            // ...and a second run from the committed offset covers the rest
            // of the stream exactly once.
            let rest = &stream[summary.committed_offset as usize..];
            let mut tail_sink = CountSink::default();
            let tail = Pipeline::new()
                .workers(workers)
                .run(&engine, &mut SliceRecords::new(rest), &mut tail_sink)
                .unwrap();
            assert_eq!(summary.records + tail.records, 30, "workers={workers}");
            assert_eq!(summary.matches + tail_sink.matches, 30, "workers={workers}");
        }
    }

    #[test]
    fn pre_cancelled_run_delivers_nothing() {
        let stream = stream_of(10);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let token = crate::CancellationToken::new();
            token.cancel();
            let mut sink = CountSink::default();
            let summary = Pipeline::new()
                .workers(workers)
                .cancel_token(token)
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            assert!(summary.cancelled, "workers={workers}");
            assert_eq!(summary.records, 0, "workers={workers}");
            assert_eq!(sink.matches, 0, "workers={workers}");
        }
    }

    #[test]
    fn checkpoints_report_only_delivered_work() {
        let stream = stream_of(10);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            struct Recorder {
                matches: usize,
                checkpoints: Vec<PipelineSummary>,
            }
            impl MatchSink for Recorder {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    self.matches += 1;
                    ControlFlow::Continue(())
                }
                fn on_checkpoint(&mut self, summary: &PipelineSummary) -> Result<(), EngineError> {
                    // Invariant: a checkpoint never claims undelivered work.
                    assert_eq!(summary.matches, self.matches);
                    self.checkpoints.push(*summary);
                    Ok(())
                }
            }
            let mut sink = Recorder {
                matches: 0,
                checkpoints: Vec::new(),
            };
            let metrics = Arc::new(Metrics::new());
            let summary = Pipeline::new()
                .workers(workers)
                .metrics(Arc::clone(&metrics))
                .checkpoints(CheckpointCadence::default().every_records(3))
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap();
            // Cadence checkpoints at records 3, 6, 9 plus the final one.
            assert_eq!(sink.checkpoints.len(), 4, "workers={workers}");
            let records: Vec<u64> = sink.checkpoints.iter().map(|s| s.records).collect();
            assert_eq!(records, vec![3, 6, 9, 10], "workers={workers}");
            assert!(
                sink.checkpoints
                    .windows(2)
                    .all(|w| w[0].committed_offset <= w[1].committed_offset),
                "workers={workers}"
            );
            assert_eq!(*sink.checkpoints.last().unwrap(), summary);
            assert_eq!(metrics.snapshot().checkpoints, 4, "workers={workers}");
        }
    }

    #[test]
    fn checkpoint_failure_aborts_the_run() {
        let stream = stream_of(20);
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            struct Failing(usize);
            impl MatchSink for Failing {
                fn on_match(&mut self, _m: Match<'_>) -> ControlFlow<()> {
                    ControlFlow::Continue(())
                }
                fn on_checkpoint(&mut self, _s: &PipelineSummary) -> Result<(), EngineError> {
                    self.0 += 1;
                    Err(EngineError::Io(std::io::Error::other("disk full")))
                }
            }
            let mut sink = Failing(0);
            let err = Pipeline::new()
                .workers(workers)
                .checkpoints(CheckpointCadence::default().every_records(5))
                .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
                .unwrap_err();
            assert!(matches!(err, EngineError::Io(_)), "workers={workers}");
            assert_eq!(sink.0, 1, "workers={workers}");
        }
    }

    #[test]
    fn committed_offset_spans_resyncs_and_records() {
        let stream = b"{\"a\": 1}\n{\"a\": \n{\"a\": 2}\n";
        let engine = JsonSki::compile("$.a").unwrap();
        for workers in [1, 4] {
            let mut sink = CountSink::default();
            let summary = Pipeline::new()
                .workers(workers)
                .error_policy(ErrorPolicy::SkipMalformed)
                .run(&engine, &mut SliceRecords::new(stream), &mut sink)
                .unwrap();
            assert_eq!(summary.records, 2, "workers={workers}");
            assert_eq!(summary.resyncs, 1, "workers={workers}");
            // The high-water mark covers the final record.
            assert_eq!(
                summary.committed_offset,
                stream.len() as u64 - 1, // the trailing newline is never consumed
                "workers={workers}"
            );
        }
    }

    #[test]
    fn disabled_metrics_leave_no_trace() {
        let stream = stream_of(20);
        let engine = JsonSki::compile("$.a").unwrap();
        let metrics = Arc::new(Metrics::disabled());
        let mut sink = CountSink::default();
        Pipeline::new()
            .workers(4)
            .metrics(Arc::clone(&metrics))
            .run(&engine, &mut SliceRecords::new(&stream), &mut sink)
            .unwrap();
        assert_eq!(metrics.snapshot(), crate::MetricsSnapshot::default());
        assert_eq!(sink.matches, 20);
    }
}
