//! On-demand value handles: borrowed [`LazyValue`] spans that decode only
//! what the caller touches.
//!
//! A [`LazyValue`] is a `(record, span)` pair — no bytes are copied and no
//! tree is materialized when a match is delivered. Typed accessors
//! (`as_i64`, `as_f64`, `as_str`, …) decode the span on demand, and the
//! [`iter_array`](LazyValue::iter_array) /
//! [`iter_object`](LazyValue::iter_object) iterators hop between siblings
//! with the same counting-based fast-forward machinery the engine uses, so
//! touching one element of a large container never parses its neighbors.
//! This is the On-Demand JSON design (Keiser & Lemire) applied to JSONSki
//! match delivery: the structural work the engine already did is preserved,
//! and each byte is re-examined only when the caller asks for it.
//!
//! String decoding is cow-style: escape-free contents borrow straight from
//! the input buffer, and only strings that actually contain `\` escapes
//! allocate.

use std::borrow::Cow;
use std::fmt;

use crate::cursor::Cursor;
use crate::error::StreamError;
use crate::fastforward::{self, Span};
use crate::stats::{FastForwardStats, Group};

/// The JSON type of a [`LazyValue`], judged from its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool,
    /// A number literal.
    Number,
    /// A quoted string literal.
    String,
    /// A `[...]` array.
    Array,
    /// A `{...}` object.
    Object,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Number => "number",
            ValueKind::String => "string",
            ValueKind::Array => "array",
            ValueKind::Object => "object",
        })
    }
}

/// Why on-demand decoding of a [`LazyValue`] failed.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// The accessor expected one JSON type but the span holds another.
    Kind {
        /// The kind the accessor decodes.
        expected: ValueKind,
        /// The kind actually found (`None` when the span is empty or starts
        /// with a byte no JSON value starts with).
        found: Option<ValueKind>,
    },
    /// A `\` escape sequence is malformed at the given record offset.
    Escape {
        /// Byte offset (into the record) of the offending escape.
        pos: usize,
    },
    /// A `\uXXXX` escape encodes an unpaired or invalid surrogate.
    Surrogate {
        /// Byte offset (into the record) of the offending escape.
        pos: usize,
    },
    /// Raw string bytes are not valid UTF-8.
    Utf8 {
        /// Byte offset (into the record) of the first invalid byte.
        pos: usize,
    },
    /// The span is not a structurally complete value (lazy iteration hit a
    /// syntax error while hopping siblings).
    Syntax(StreamError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Kind {
                expected,
                found: Some(found),
            } => {
                write!(f, "expected a {expected} value, found {found}")
            }
            DecodeError::Kind {
                expected,
                found: None,
            } => {
                write!(
                    f,
                    "expected a {expected} value, found an empty or unrecognized span"
                )
            }
            DecodeError::Escape { pos } => write!(f, "invalid escape sequence at byte {pos}"),
            DecodeError::Surrogate { pos } => {
                write!(f, "unpaired or invalid \\u surrogate at byte {pos}")
            }
            DecodeError::Utf8 { pos } => write!(f, "invalid UTF-8 in string at byte {pos}"),
            DecodeError::Syntax(e) => write!(f, "malformed value: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Syntax(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for DecodeError {
    fn from(e: StreamError) -> Self {
        DecodeError::Syntax(e)
    }
}

fn is_json_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r')
}

/// Clamps `span` to `record` and trims JSON whitespace from both ends.
///
/// This is the single span-normalization point shared by [`Match`]
/// construction (every engine) and [`LazyValue`] construction, so all five
/// engines emit byte-identical spans for the same value.
///
/// [`Match`]: crate::Match
pub(crate) fn normalize_span(record: &[u8], span: Span) -> Span {
    let (mut s, mut e) = span;
    e = e.min(record.len());
    s = s.min(e);
    while s < e && is_json_ws(record[s]) {
        s += 1;
    }
    while e > s && is_json_ws(record[e - 1]) {
        e -= 1;
    }
    (s, e)
}

/// A borrowed, zero-copy handle to one JSON value inside a record.
///
/// Obtained from [`Match::value`](crate::Match::value), from
/// [`get`](crate::get) / [`get_many`](crate::get_many), or from this type's
/// own container iterators. Nothing is parsed until an accessor is called;
/// [`as_raw`](Self::as_raw) is always free.
///
/// ```
/// use jsonski::LazyValue;
///
/// let record = br#"{"id": 42, "name": "caf\u00e9", "tags": [1, 2, 3]}"#;
/// let id = jsonski::get(record, "/id")?.expect("present");
/// assert_eq!(id.as_raw(), b"42");
/// assert_eq!(id.as_i64(), Some(42));
///
/// let name = jsonski::get(record, "/name")?.expect("present");
/// assert_eq!(name.as_str()?, "café"); // owned: the \u escape forces a decode
///
/// let tags = jsonski::get(record, "/tags")?.expect("present");
/// let sum: i64 = tags
///     .iter_array()?
///     .map(|v| v.unwrap().as_i64().unwrap())
///     .sum();
/// assert_eq!(sum, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy)]
pub struct LazyValue<'a> {
    record: &'a [u8],
    span: Span,
}

impl fmt::Debug for LazyValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyValue")
            .field("span", &self.span)
            .field("raw", &String::from_utf8_lossy(self.as_raw()))
            .finish()
    }
}

impl<'a> LazyValue<'a> {
    /// Wraps the `span` of `record` as a lazy value, normalizing the span
    /// (clamped to the record, whitespace trimmed from both ends).
    pub fn new(record: &'a [u8], span: Span) -> Self {
        LazyValue {
            record,
            span: normalize_span(record, span),
        }
    }

    /// Wraps a whole byte slice as a single lazy value.
    pub fn from_bytes(bytes: &'a [u8]) -> Self {
        Self::new(bytes, (0, bytes.len()))
    }

    /// The record buffer this value borrows from.
    pub fn record(&self) -> &'a [u8] {
        self.record
    }

    /// The value's byte span within [`record`](Self::record).
    pub fn span(&self) -> Span {
        self.span
    }

    /// The value's raw bytes, zero-copy (for a string this includes the
    /// surrounding quotes; use [`as_str`](Self::as_str) to decode).
    pub fn as_raw(&self) -> &'a [u8] {
        &self.record[self.span.0..self.span.1]
    }

    /// The JSON type, judged from the first byte (`None` for an empty span
    /// or a byte no JSON value can start with).
    pub fn kind(&self) -> Option<ValueKind> {
        match self.as_raw().first()? {
            b'{' => Some(ValueKind::Object),
            b'[' => Some(ValueKind::Array),
            b'"' => Some(ValueKind::String),
            b't' | b'f' => Some(ValueKind::Bool),
            b'n' => Some(ValueKind::Null),
            b'-' | b'0'..=b'9' => Some(ValueKind::Number),
            _ => None,
        }
    }

    /// `true` iff the value is the literal `null`.
    pub fn is_null(&self) -> bool {
        self.as_raw() == b"null"
    }

    /// Decodes `true`/`false`; `None` for any other value.
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_raw() {
            b"true" => Some(true),
            b"false" => Some(false),
            _ => None,
        }
    }

    /// Decodes an integer number; `None` for non-numbers, numbers with a
    /// fraction or exponent, and integers outside the `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        self.number_text()?.parse().ok()
    }

    /// Decodes a non-negative integer number; `None` for non-numbers,
    /// numbers with a fraction or exponent, and values outside `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.number_text()?.parse().ok()
    }

    /// Decodes any number as `f64` (matching how the DOM baseline stores
    /// numbers); `None` for non-numbers. Values whose magnitude exceeds
    /// `f64` overflow to infinity, exactly as `str::parse::<f64>` does.
    pub fn as_f64(&self) -> Option<f64> {
        self.number_text()?.parse().ok()
    }

    fn number_text(&self) -> Option<&'a str> {
        if self.kind()? != ValueKind::Number {
            return None;
        }
        std::str::from_utf8(self.as_raw()).ok()
    }

    /// Decodes a string value, cow-style: escape-free contents are returned
    /// as a borrow of the input buffer; contents with `\` escapes (including
    /// `\uXXXX` and surrogate pairs) are decoded into an owned `String`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Kind`] if the value is not a string, and the other
    /// [`DecodeError`] variants for malformed escapes or invalid UTF-8.
    pub fn as_str(&self) -> Result<Cow<'a, str>, DecodeError> {
        let raw = self.as_raw();
        if raw.len() < 2 || raw[0] != b'"' || raw[raw.len() - 1] != b'"' {
            return Err(DecodeError::Kind {
                expected: ValueKind::String,
                found: self.kind(),
            });
        }
        decode_string_contents(&raw[1..raw.len() - 1], self.span.0 + 1)
    }

    /// Iterates the elements of an array without materializing them: each
    /// step fast-forwards over one sibling and yields its lazy handle.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Kind`] if the value is not an array. Structural errors
    /// encountered *while iterating* surface as [`DecodeError::Syntax`]
    /// items.
    pub fn iter_array(&self) -> Result<ArrayIter<'a>, DecodeError> {
        if self.kind() != Some(ValueKind::Array) {
            return Err(DecodeError::Kind {
                expected: ValueKind::Array,
                found: self.kind(),
            });
        }
        Ok(ArrayIter {
            hop: Hopper::new(self.record, self.span),
            first: true,
        })
    }

    /// Iterates the `(key, value)` entries of an object without
    /// materializing them. Keys are yielded as lazy string values (call
    /// [`as_str`](Self::as_str) to decode them).
    ///
    /// # Errors
    ///
    /// [`DecodeError::Kind`] if the value is not an object. Structural
    /// errors encountered *while iterating* surface as
    /// [`DecodeError::Syntax`] items.
    pub fn iter_object(&self) -> Result<ObjectIter<'a>, DecodeError> {
        if self.kind() != Some(ValueKind::Object) {
            return Err(DecodeError::Kind {
                expected: ValueKind::Object,
                found: self.kind(),
            });
        }
        Ok(ObjectIter {
            hop: Hopper::new(self.record, self.span),
            first: true,
        })
    }
}

impl PartialEq for LazyValue<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.as_raw() == other.as_raw()
    }
}

impl Eq for LazyValue<'_> {}

impl PartialEq<[u8]> for LazyValue<'_> {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_raw() == other
    }
}

impl PartialEq<&[u8]> for LazyValue<'_> {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_raw() == *other
    }
}

impl PartialEq<LazyValue<'_>> for &[u8] {
    fn eq(&self, other: &LazyValue<'_>) -> bool {
        *self == other.as_raw()
    }
}

/// Decodes the contents of a JSON string literal (quotes already stripped).
/// `base` is the record offset of `contents[0]`, used for error positions.
pub(crate) fn decode_string_contents(
    contents: &[u8],
    base: usize,
) -> Result<Cow<'_, str>, DecodeError> {
    if !contents.contains(&b'\\') {
        return match std::str::from_utf8(contents) {
            Ok(s) => Ok(Cow::Borrowed(s)),
            Err(e) => Err(DecodeError::Utf8 {
                pos: base + e.valid_up_to(),
            }),
        };
    }
    let mut out = String::with_capacity(contents.len());
    let mut i = 0;
    while i < contents.len() {
        if contents[i] != b'\\' {
            // Copy the longest escape-free run in one UTF-8 validation.
            let run_end = contents[i..]
                .iter()
                .position(|&c| c == b'\\')
                .map_or(contents.len(), |p| i + p);
            match std::str::from_utf8(&contents[i..run_end]) {
                Ok(s) => out.push_str(s),
                Err(e) => {
                    return Err(DecodeError::Utf8 {
                        pos: base + i + e.valid_up_to(),
                    })
                }
            }
            i = run_end;
            continue;
        }
        let esc_pos = base + i;
        let esc = *contents
            .get(i + 1)
            .ok_or(DecodeError::Escape { pos: esc_pos })?;
        i += 2;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = read_hex4(contents, i, base)?;
                i += 4;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uDC00..\uDFFF low half must follow.
                    let lo =
                        if contents.get(i) == Some(&b'\\') && contents.get(i + 1) == Some(&b'u') {
                            read_hex4(contents, i + 2, base)?
                        } else {
                            return Err(DecodeError::Surrogate { pos: esc_pos });
                        };
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(DecodeError::Surrogate { pos: esc_pos });
                    }
                    i += 6;
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or(DecodeError::Surrogate { pos: esc_pos })?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(DecodeError::Surrogate { pos: esc_pos });
                } else {
                    char::from_u32(hi).ok_or(DecodeError::Escape { pos: esc_pos })?
                };
                out.push(ch);
            }
            _ => return Err(DecodeError::Escape { pos: esc_pos }),
        }
    }
    Ok(Cow::Owned(out))
}

fn read_hex4(contents: &[u8], at: usize, base: usize) -> Result<u32, DecodeError> {
    let hex = contents
        .get(at..at + 4)
        .ok_or(DecodeError::Escape { pos: base + at })?;
    let mut v = 0u32;
    for &b in hex {
        let d = (b as char)
            .to_digit(16)
            .ok_or(DecodeError::Escape { pos: base + at })?;
        v = v * 16 + d;
    }
    Ok(v)
}

/// Shared sibling-hopping state for the container iterators: a fresh
/// forward-only [`Cursor`] over the container's span, reusing the engine's
/// fast-forward primitives to go over each value.
struct Hopper<'a> {
    record: &'a [u8],
    base: usize,
    cur: Cursor<'a>,
    stats: FastForwardStats,
    done: bool,
}

impl<'a> Hopper<'a> {
    fn new(record: &'a [u8], span: Span) -> Self {
        let mut cur = Cursor::new(&record[span.0..span.1]);
        cur.bump(); // consume the opener; the span is normalized so it is first
        Hopper {
            record,
            base: span.0,
            cur,
            stats: FastForwardStats::default(),
            done: false,
        }
    }

    /// Fast-forwards over the value at the cursor, returning its lazy
    /// handle (span re-based onto the full record).
    fn hop_value(&mut self) -> Result<LazyValue<'a>, StreamError> {
        let span = match self.cur.peek_token("value")? {
            b'{' => fastforward::go_over_obj(&mut self.cur, &mut self.stats, Group::G2)?,
            b'[' => fastforward::go_over_ary(&mut self.cur, &mut self.stats, Group::G2)?,
            _ => fastforward::go_over_primitive(&mut self.cur, &mut self.stats, Group::G2)?,
        };
        Ok(LazyValue::new(
            self.record,
            (self.base + span.0, self.base + span.1),
        ))
    }

    /// Consumes the separator before the next entry. Returns `false` when
    /// the closer was reached instead.
    fn next_separator(&mut self, first: bool, closer: u8) -> Result<bool, StreamError> {
        let t = self.cur.peek_token("`,` or closing delimiter")?;
        if t == closer {
            self.cur.bump();
            return Ok(false);
        }
        if !first {
            self.cur.expect(b',', "`,`")?;
        }
        Ok(true)
    }
}

/// Lazy iterator over array elements; see
/// [`LazyValue::iter_array`].
pub struct ArrayIter<'a> {
    hop: Hopper<'a>,
    first: bool,
}

impl<'a> Iterator for ArrayIter<'a> {
    type Item = Result<LazyValue<'a>, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.hop.done {
            return None;
        }
        let first = std::mem::replace(&mut self.first, false);
        let step = (|| -> Result<Option<LazyValue<'a>>, StreamError> {
            if !self.hop.next_separator(first, b']')? {
                return Ok(None);
            }
            self.hop.hop_value().map(Some)
        })();
        match step {
            Ok(Some(v)) => Some(Ok(v)),
            Ok(None) => {
                self.hop.done = true;
                None
            }
            Err(e) => {
                self.hop.done = true;
                Some(Err(DecodeError::Syntax(e)))
            }
        }
    }
}

/// Lazy iterator over object `(key, value)` entries; see
/// [`LazyValue::iter_object`].
pub struct ObjectIter<'a> {
    hop: Hopper<'a>,
    first: bool,
}

impl<'a> Iterator for ObjectIter<'a> {
    type Item = Result<(LazyValue<'a>, LazyValue<'a>), DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.hop.done {
            return None;
        }
        let first = std::mem::replace(&mut self.first, false);
        let step = (|| -> Result<Option<(LazyValue<'a>, LazyValue<'a>)>, StreamError> {
            if !self.hop.next_separator(first, b'}')? {
                return Ok(None);
            }
            let t = self.hop.cur.peek_token("attribute")?;
            if t != b'"' {
                // Consume-or-error: the byte is not a quote, so this errors.
                self.hop.cur.expect(b'"', "attribute")?;
            }
            let (ks, ke) = self.hop.cur.read_string()?;
            let key = LazyValue::new(
                self.hop.record,
                (self.hop.base + ks - 1, self.hop.base + ke + 1),
            );
            self.hop.cur.expect(b':', "`:`")?;
            let value = self.hop.hop_value()?;
            Ok(Some((key, value)))
        })();
        match step {
            Ok(Some(kv)) => Some(Ok(kv)),
            Ok(None) => {
                self.hop.done = true;
                None
            }
            Err(e) => {
                self.hop.done = true;
                Some(Err(DecodeError::Syntax(e)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bytes: &[u8]) -> LazyValue<'_> {
        LazyValue::from_bytes(bytes)
    }

    #[test]
    fn kinds_and_scalars() {
        assert_eq!(v(b"null").kind(), Some(ValueKind::Null));
        assert!(v(b"null").is_null());
        assert_eq!(v(b"true").as_bool(), Some(true));
        assert_eq!(v(b"false").as_bool(), Some(false));
        assert_eq!(v(b"42").as_i64(), Some(42));
        assert_eq!(v(b"-7").as_i64(), Some(-7));
        assert_eq!(v(b"42").as_u64(), Some(42));
        assert_eq!(v(b"-7").as_u64(), None);
        assert_eq!(v(b"2.5").as_f64(), Some(2.5));
        assert_eq!(v(b"2.5").as_i64(), None);
        assert_eq!(v(b"1e3").as_f64(), Some(1000.0));
        assert_eq!(v(b"\"x\"").as_i64(), None);
        assert_eq!(v(b"true").as_f64(), None);
    }

    #[test]
    fn integer_overflow_is_none() {
        assert_eq!(v(b"9223372036854775807").as_i64(), Some(i64::MAX));
        assert_eq!(v(b"9223372036854775808").as_i64(), None);
        assert_eq!(v(b"18446744073709551615").as_u64(), Some(u64::MAX));
        assert_eq!(v(b"18446744073709551616").as_u64(), None);
    }

    #[test]
    fn span_normalization_trims_whitespace() {
        let record = b"  {\"a\": 1}  ";
        let lv = LazyValue::new(record, (0, record.len()));
        assert_eq!(lv.as_raw(), b"{\"a\": 1}");
        assert_eq!(lv.span(), (2, 10));
    }

    #[test]
    fn escape_free_strings_borrow() {
        let val = v(b"\"hello\"");
        match val.as_str().unwrap() {
            Cow::Borrowed(s) => assert_eq!(s, "hello"),
            Cow::Owned(_) => panic!("escape-free string should borrow"),
        }
    }

    #[test]
    fn escaped_strings_allocate() {
        let val = v(br#""a\nb\t\"c\"A""#);
        match val.as_str().unwrap() {
            Cow::Owned(s) => assert_eq!(s, "a\nb\t\"c\"A"),
            Cow::Borrowed(_) => panic!("escaped string should allocate"),
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(v(br#""\ud83d\ude00""#).as_str().unwrap(), "\u{1F600}");
        assert_eq!(v(br#""\ud834\udd1e""#).as_str().unwrap(), "\u{1D11E}");
        // Raw (unescaped) multi-byte UTF-8 stays on the borrowed fast path.
        let smiley = "\"\u{1F600}\"".to_owned();
        match v(smiley.as_bytes()).as_str().unwrap() {
            Cow::Borrowed(s) => assert_eq!(s, "\u{1F600}"),
            Cow::Owned(_) => panic!("escape-free string should borrow"),
        }
    }

    #[test]
    fn lone_surrogates_error() {
        assert!(matches!(
            v(br#""\ud83d""#).as_str(),
            Err(DecodeError::Surrogate { .. })
        ));
        assert!(matches!(
            v(br#""\ude00x""#).as_str(),
            Err(DecodeError::Surrogate { .. })
        ));
        assert!(matches!(
            v(br#""\ud83dA""#).as_str(),
            Err(DecodeError::Surrogate { .. })
        ));
    }

    #[test]
    fn bad_escapes_error() {
        assert!(matches!(
            v(br#""\q""#).as_str(),
            Err(DecodeError::Escape { .. })
        ));
        assert!(matches!(
            v(br#""\u12""#).as_str(),
            Err(DecodeError::Escape { .. })
        ));
        assert!(matches!(
            v(br#""\uZZZZ""#).as_str(),
            Err(DecodeError::Escape { .. })
        ));
        assert!(matches!(v(b"42").as_str(), Err(DecodeError::Kind { .. })));
    }

    #[test]
    fn invalid_utf8_errors_with_position() {
        let raw = [b'"', 0xFF, b'"'];
        match v(&raw).as_str() {
            Err(DecodeError::Utf8 { pos }) => assert_eq!(pos, 1),
            other => panic!("expected Utf8 error, got {other:?}"),
        }
    }

    #[test]
    fn array_iteration_is_lazy_and_complete() {
        let val = v(br#"[1, "two", [3, 4], {"five": 5}, null]"#);
        let items: Vec<_> = val.iter_array().unwrap().map(Result::unwrap).collect();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[1].as_str().unwrap(), "two");
        assert_eq!(items[2].as_raw(), b"[3, 4]");
        assert_eq!(items[3].as_raw(), br#"{"five": 5}"#);
        assert!(items[4].is_null());
    }

    #[test]
    fn empty_containers_iterate_empty() {
        assert_eq!(v(b"[]").iter_array().unwrap().count(), 0);
        assert_eq!(v(b"[ ]").iter_array().unwrap().count(), 0);
        assert_eq!(v(b"{}").iter_object().unwrap().count(), 0);
        assert!(v(b"{}").iter_array().is_err());
        assert!(v(b"[]").iter_object().is_err());
    }

    #[test]
    fn object_iteration_yields_lazy_keys() {
        let val = v(br#"{"a": 1, "b\n": {"c": [2]}, "d": "e"}"#);
        let entries: Vec<_> = val.iter_object().unwrap().map(Result::unwrap).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].0.as_str().unwrap(), "a");
        assert_eq!(entries[0].1.as_i64(), Some(1));
        assert_eq!(entries[1].0.as_str().unwrap(), "b\n");
        assert_eq!(entries[1].1.as_raw(), br#"{"c": [2]}"#);
        assert_eq!(entries[2].1.as_str().unwrap(), "e");
    }

    #[test]
    fn nested_spans_rebase_onto_the_record() {
        let record = br#"{"outer": [10, 20]}"#;
        let arr = LazyValue::new(record, (10, 18));
        let items: Vec<_> = arr.iter_array().unwrap().map(Result::unwrap).collect();
        let (s, e) = items[1].span();
        assert_eq!(&record[s..e], b"20");
    }

    #[test]
    fn malformed_containers_yield_syntax_errors() {
        let items: Vec<_> = v(b"[1, 2").iter_array().unwrap().collect();
        assert!(items.last().unwrap().is_err());
        let items: Vec<_> = v(b"{\"a\" 1}").iter_object().unwrap().collect();
        assert!(matches!(items[0], Err(DecodeError::Syntax(_))));
    }

    #[test]
    fn comparisons_use_raw_bytes() {
        let record = br#"  7  "#;
        let a = LazyValue::new(record, (0, record.len()));
        assert_eq!(a, &b"7"[..]);
        assert_eq!(a, LazyValue::from_bytes(b"7"));
    }
}
