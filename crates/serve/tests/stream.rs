//! End-to-end behavior of chunked streaming responses over real sockets:
//! the differential oracle (streamed and single-frame responses
//! byte-identical after reassembly, for every kernel × both validation
//! modes), the fault matrix (trailer/body corruption → typed checksum
//! errors, a reader that dies mid-chunk harms only itself), and
//! interleave freedom under 2× saturation load.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jsonski::faults::{FaultPlan, FaultyConn};
use jsonski::{EngineConfig, JsonSki, Kernel, ValidationMode};
use jsonski_serve::{
    encode_frame, encode_request_opts, parse_response, parse_stream_frame, read_frame,
    BodyChecksum, Client, ClientError, Op, ProtocolError, Response, ServeConfig, Server,
    StreamFrame, DEFAULT_MAX_FRAME_BYTES,
};

fn start(
    config: ServeConfig,
) -> (
    String,
    jsonski::CancellationToken,
    std::thread::JoinHandle<std::io::Result<jsonski_serve::ServeSummary>>,
) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    (addr, token, handle)
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

/// A hand-rolled streaming client over an arbitrary fault-injecting
/// transport: sends one stream-opted query and reassembles the response
/// exactly the way [`Client::request_raw`] does (including trailer
/// checksum verification), so the fault matrix can corrupt the read side.
fn streamed_query_via<T: std::io::Read + Write>(
    conn: &mut T,
    id: &str,
    query: &str,
    body: &[u8],
) -> Result<Response, ProtocolError> {
    let payload = encode_request_opts(Op::Query, id, "t", query, Some(30_000), false, true, body);
    conn.write_all(&encode_frame(&payload))?;
    conn.flush()?;
    let first = read_frame(conn, DEFAULT_MAX_FRAME_BYTES)?
        .ok_or_else(|| ProtocolError::BadStream("no response frame".into()))?;
    let resp = parse_response(&first)?;
    if !resp.stream {
        return Ok(resp);
    }
    let mut acc = Vec::new();
    let mut checksum = BodyChecksum::new();
    loop {
        let frame = read_frame(conn, DEFAULT_MAX_FRAME_BYTES)?
            .ok_or_else(|| ProtocolError::BadStream("eof between chunks".into()))?;
        match parse_stream_frame(&frame)? {
            StreamFrame::Chunk(bytes) => {
                checksum.update(&bytes);
                acc.extend_from_slice(&bytes);
            }
            StreamFrame::Trailer {
                mut response,
                checksum: declared,
            } => {
                response.stream = true;
                if response.is_ok() {
                    let got = checksum.finish();
                    if got != declared {
                        return Err(ProtocolError::ChecksumMismatch {
                            expected: declared,
                            got,
                        });
                    }
                    response.body = acc;
                }
                return Ok(response);
            }
        }
    }
}

/// The differential oracle: for every supported kernel × both validation
/// modes, a streamed response (reassembled from many small chunks) must
/// be byte-identical to the single-frame response for the same request,
/// and both to a serial engine run.
#[test]
fn streamed_and_single_frame_are_byte_identical_for_every_kernel() {
    let body = ndjson(400);
    let mut kernels: Vec<Option<Kernel>> = vec![None];
    for name in ["scalar", "swar", "sse2", "avx2"] {
        if let Some(k) = Kernel::from_name(name) {
            if k.is_supported() {
                kernels.push(Some(k));
            }
        }
    }
    for kernel in kernels {
        for validation in [ValidationMode::Permissive, ValidationMode::Strict] {
            let config = ServeConfig {
                // Far below the response size, so streams really chunk.
                chunk_bytes: 512,
                engine_config: EngineConfig::builder()
                    .validation(validation)
                    .kernel(kernel)
                    .build(),
                ..ServeConfig::default()
            };
            let (addr, token, handle) = start(config);
            for query in ["$.items[*].price", "$..price"] {
                let reference = serial_reference(query, &body);
                let mut plain = Client::connect_tcp(&addr).unwrap();
                let single = plain.query("s", "t", query, None, &body).unwrap();
                assert_eq!(single.code, 200, "{:?}", single.reason);
                assert!(!single.stream);

                let mut chunked = Client::connect_tcp(&addr).unwrap();
                chunked.stream = true;
                let streamed = chunked.query("c", "t", query, None, &body).unwrap();
                assert_eq!(streamed.code, 200, "{:?}", streamed.reason);
                assert!(
                    streamed.stream,
                    "a multi-chunk response must arrive streamed ({kernel:?}/{validation:?})"
                );
                assert_eq!(
                    streamed.body, single.body,
                    "delivery mode changed bytes ({kernel:?}/{validation:?}/{query})"
                );
                assert_eq!(single.body, reference);
                assert_eq!(streamed.matches, single.matches);
                assert_eq!(streamed.records, single.records);
            }
            token.cancel();
            handle.join().unwrap().unwrap();
        }
    }
}

/// A stream-opted request whose response produces no chunks (here: zero
/// matches) falls back to the single-frame wire default.
#[test]
fn zero_chunk_streamed_request_is_a_single_frame() {
    let (addr, token, handle) = start(ServeConfig::default());
    let mut c = Client::connect_tcp(&addr).unwrap();
    c.stream = true;
    let resp = c.query("z", "t", "$.nope", None, &ndjson(50)).unwrap();
    assert_eq!(resp.code, 200, "{:?}", resp.reason);
    assert!(!resp.stream, "an empty body needs no stream");
    assert!(resp.body.is_empty());
    token.cancel();
    handle.join().unwrap().unwrap();
}

/// Read-side corruption (bit flips on the wire) must surface as a typed
/// protocol error — never a silently wrong body. At least one seed must
/// hit the body bytes and produce the checksum-mismatch error
/// specifically.
#[test]
fn corrupted_stream_is_a_typed_error_never_a_wrong_body() {
    let config = ServeConfig {
        chunk_bytes: 1024,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let body = ndjson(2000);
    let query = "$.items[*].price";
    let reference = serial_reference(query, &body);
    let mut mismatches = 0;
    for seed in 0..6u64 {
        let stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        // Corrupt one response byte every ~8 KiB: the request (a few
        // hundred KiB of writes) is untouched — FaultyConn corruption is
        // read-side only.
        let plan = FaultPlan::new(seed).corrupt_every(8 * 1024 + seed * 17);
        let mut conn = FaultyConn::new(stream, plan);
        match streamed_query_via(&mut conn, &format!("x{seed}"), query, &body) {
            Ok(resp) => {
                // Corruption that happened to miss every delivered frame:
                // the body must still be exact.
                assert_eq!(resp.code, 200, "{:?}", resp.reason);
                assert_eq!(resp.body, reference, "undetected corruption (seed {seed})");
            }
            Err(ProtocolError::ChecksumMismatch { expected, got }) => {
                assert_ne!(expected, got);
                mismatches += 1;
            }
            // A flip that landed in a length prefix or header line is a
            // different — but still typed — protocol error.
            Err(_) => {}
        }
    }
    assert!(
        mismatches > 0,
        "no seed produced a checksum mismatch — corruption not detected"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
}

/// A client that requests a stream and then dies mid-chunk harms nothing
/// but its own connection: the worker is cancelled and drained, and
/// concurrent healthy clients keep getting exact streamed answers.
#[test]
fn reader_dying_mid_chunk_harms_only_itself() {
    let config = ServeConfig {
        chunk_bytes: 2048,
        workers: 2,
        // A dead peer's socket buffer absorbs writes for a while; a tight
        // write-stall clock bounds how long the worker can stay pinned.
        write_timeout: Duration::from_millis(50),
        write_stall_budget: 2,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let body = Arc::new(ndjson(30_000));
    let query = "$.items[*].price";
    let reference = Arc::new(serial_reference(query, &body));
    let stop = Arc::new(AtomicUsize::new(0));
    let mut healthy = Vec::new();
    for t in 0..2 {
        let addr = addr.clone();
        let (body, reference, stop) =
            (Arc::clone(&body), Arc::clone(&reference), Arc::clone(&stop));
        healthy.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while stop.load(Ordering::SeqCst) == 0 {
                let mut c = Client::connect_tcp(&addr).unwrap();
                c.stream = true;
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let resp = c
                    .query(&format!("h{t}n{n}"), "healthy", query, None, &body)
                    .unwrap();
                assert_eq!(resp.code, 200, "{:?}", resp.reason);
                assert_eq!(*resp.body, *reference, "healthy stream corrupted");
                n += 1;
            }
            n
        }));
    }
    // Saboteurs: request a large stream, read only the header frame,
    // vanish. The server's guarded chunk writes hit the dead socket,
    // the worker is cancelled and drained, nothing leaks.
    for i in 0..4 {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let payload = encode_request_opts(
            Op::Query,
            &format!("sab{i}"),
            "saboteur",
            query,
            Some(30_000),
            false,
            true,
            &body,
        );
        stream.write_all(&encode_frame(&payload)).unwrap();
        stream.flush().unwrap();
        let first = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("stream header");
        let resp = parse_response(&first).unwrap();
        assert!(resp.stream, "large response must stream");
        drop(stream); // die mid-chunk
    }
    // Healthy clients must still be making progress after the carnage.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(1, Ordering::SeqCst);
    let mut completed = 0;
    for h in healthy {
        completed += h.join().unwrap();
    }
    assert!(completed > 0, "healthy clients must have made progress");
    token.cancel();
    handle.join().unwrap().unwrap();
}

/// 2× saturation with a mix of streamed and single-frame clients: every
/// 200 reassembles to the exact serial bytes (no cross-request
/// interleaving — chunk frames of one response can never carry another's
/// bytes without tripping the checksum), overload sheds typed.
#[test]
fn saturated_streams_never_interleave() {
    let config = ServeConfig {
        workers: 1,
        max_queue: 2,
        tenant_quota: 64,
        chunk_bytes: 1024,
        default_deadline: Duration::from_secs(60),
        max_deadline: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let heavy_body = Arc::new(ndjson(40_000));
    let light_body = Arc::new(ndjson(30));
    let heavy_ref = Arc::new(serial_reference("$..price", &heavy_body));
    let light_ref = Arc::new(serial_reference("$.items[*].price", &light_body));
    let sheds = Arc::new(AtomicUsize::new(0));
    let oks = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for t in 0..16 {
        let addr = addr.clone();
        let (heavy_body, light_body) = (Arc::clone(&heavy_body), Arc::clone(&light_body));
        let (heavy_ref, light_ref) = (Arc::clone(&heavy_ref), Arc::clone(&light_ref));
        let (sheds, oks) = (Arc::clone(&sheds), Arc::clone(&oks));
        threads.push(std::thread::spawn(move || {
            let heavy = t % 2 == 0;
            let (query, body, reference) = if heavy {
                ("$..price", &*heavy_body, &*heavy_ref)
            } else {
                ("$.items[*].price", &*light_body, &*light_ref)
            };
            let mut c = Client::connect_tcp(&addr).unwrap();
            c.stream = heavy; // heavy responses stream, light ones don't
            c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
            match c.query(
                &format!("s{t}"),
                &format!("t{t}"),
                query,
                Some(60_000),
                body,
            ) {
                Ok(resp) => match resp.code {
                    200 => {
                        assert_eq!(
                            resp.body, *reference,
                            "completed response under load diverged from serial run"
                        );
                        oks.fetch_add(1, Ordering::SeqCst);
                    }
                    429 => {
                        assert_eq!(resp.reason.as_deref(), Some("queue_full"));
                        assert!(resp.body.is_empty(), "shed frames carry no body");
                        sheds.fetch_add(1, Ordering::SeqCst);
                    }
                    408 => assert!(resp.body.is_empty(), "timeout responses carry no body"),
                    other => panic!("unexpected status {other}: {:?}", resp.reason),
                },
                Err(ClientError::Timeout) => panic!("server never answered"),
                Err(e) => panic!("protocol failure under load: {e}"),
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    assert!(
        sheds.load(Ordering::SeqCst) > 0,
        "2x saturation must produce typed sheds"
    );
    assert!(
        oks.load(Ordering::SeqCst) > 0,
        "admitted requests must complete exactly"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
}
