//! Adversarial memory-budget torture (ISSUE 10 acceptance): wildcard
//! queries over a stored corpus ≥ 8× the configured memory budget, at 2×
//! saturation with socket faults on — every 200 must reassemble to the
//! exact serial-oracle bytes, peak *tracked* memory must stay within the
//! budget, and overflow must shed as typed `429 memory`, never OOM.
//! Plus: the degradation ladder's eviction rung, per-tenant isolation,
//! and the `mem_*` gauge schema.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jsonski::faults::{FaultPlan, FaultyConn};
use jsonski::JsonSki;
use jsonski_serve::{
    encode_corpus_request_opts, encode_frame, parse_response, parse_stream_frame, read_frame,
    BodyChecksum, Client, ProtocolError, Response, ServeConfig, Server, StreamFrame,
    DEFAULT_MAX_FRAME_BYTES,
};

const QUERY: &str = "$.items[*]";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jsonski-memtort-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("corpora")).unwrap();
    dir
}

/// ~100-byte records so corpus sizing is predictable.
fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"pad\": \"{:=>40}\", \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i, i * 2, i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

fn start(
    config: ServeConfig,
) -> (
    String,
    jsonski::CancellationToken,
    std::thread::JoinHandle<std::io::Result<jsonski_serve::ServeSummary>>,
) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    (addr, token, handle)
}

fn scrape_counter(addr: &str, name: &str) -> u64 {
    let mut c = Client::connect_tcp(addr).unwrap();
    let scrape = String::from_utf8(c.metrics(false).unwrap().body).unwrap();
    scrape
        .lines()
        .find(|l| l.starts_with(&format!("{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("counter {name} missing from scrape:\n{scrape}"))
}

/// Streamed corpus query through an arbitrary (fault-injecting)
/// transport, reassembled with trailer-checksum verification.
fn streamed_corpus_query<T: std::io::Read + Write>(
    conn: &mut T,
    id: &str,
    tenant: &str,
    corpus: &str,
    stream: bool,
) -> Result<Response, ProtocolError> {
    let payload = encode_corpus_request_opts(id, tenant, QUERY, corpus, Some(60_000), stream);
    conn.write_all(&encode_frame(&payload))?;
    conn.flush()?;
    let first = read_frame(conn, DEFAULT_MAX_FRAME_BYTES)?
        .ok_or_else(|| ProtocolError::BadStream("no response frame".into()))?;
    let resp = parse_response(&first)?;
    if !resp.stream {
        return Ok(resp);
    }
    let mut acc = Vec::new();
    let mut checksum = BodyChecksum::new();
    loop {
        let frame = read_frame(conn, DEFAULT_MAX_FRAME_BYTES)?
            .ok_or_else(|| ProtocolError::BadStream("eof between chunks".into()))?;
        match parse_stream_frame(&frame)? {
            StreamFrame::Chunk(bytes) => {
                checksum.update(&bytes);
                acc.extend_from_slice(&bytes);
            }
            StreamFrame::Trailer {
                mut response,
                checksum: declared,
            } => {
                response.stream = true;
                if response.is_ok() {
                    let got = checksum.finish();
                    if got != declared {
                        return Err(ProtocolError::ChecksumMismatch {
                            expected: declared,
                            got,
                        });
                    }
                    response.body = acc;
                }
                return Ok(response);
            }
        }
    }
}

/// Peak resident set of this process in bytes (Linux), from VmHWM.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .expect("VmHWM in /proc/self/status")
}

/// The headline torture: a corpus more than 8× the memory budget,
/// hammered by streamed + materialized clients (some through socket
/// fault plans) at 2× worker saturation.
#[test]
fn wildcard_over_corpus_8x_budget_stays_bounded_and_exact() {
    const BUDGET: usize = 512 * 1024;
    let dir = scratch("8x");
    let corpus = ndjson(48_000);
    assert!(
        corpus.len() >= 8 * BUDGET,
        "corpus must dwarf the budget ({} < {})",
        corpus.len(),
        8 * BUDGET
    );
    std::fs::write(dir.join("corpora/big.ndjson"), &corpus).unwrap();
    let reference = Arc::new(serial_reference(QUERY, &corpus));
    let config = ServeConfig {
        corpus_dir: Some(dir.join("corpora")),
        memory_budget: BUDGET,
        chunk_bytes: 16 * 1024,
        workers: 2,
        max_queue: 64,
        tenant_quota: 64,
        default_deadline: Duration::from_secs(60),
        max_deadline: Duration::from_secs(60),
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let oks = Arc::new(AtomicUsize::new(0));
    let memory_sheds = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    // 12 concurrent clients against 2 workers: 2×+ saturation. Even
    // threads stream (and must complete exactly); odd threads ask for a
    // materialized body larger than the whole budget (and must either
    // complete exactly or shed as typed 429 memory). Every third
    // connection routes through a write-fragmenting fault plan.
    for t in 0..12usize {
        let addr = addr.clone();
        let reference = Arc::clone(&reference);
        let (oks, memory_sheds) = (Arc::clone(&oks), Arc::clone(&memory_sheds));
        threads.push(std::thread::spawn(move || {
            for r in 0..2 {
                let id = format!("t{t}r{r}");
                let stream = TcpStream::connect(&addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let want_stream = t % 2 == 0;
                let resp = if t % 3 == 0 {
                    let plan = FaultPlan::new(t as u64 * 31 + r)
                        .short_writes(9)
                        .interrupt_every(7);
                    let mut conn = FaultyConn::new(stream, plan);
                    streamed_corpus_query(
                        &mut conn,
                        &id,
                        &format!("t{t}"),
                        "big.ndjson",
                        want_stream,
                    )
                } else {
                    let mut conn = stream;
                    streamed_corpus_query(
                        &mut conn,
                        &id,
                        &format!("t{t}"),
                        "big.ndjson",
                        want_stream,
                    )
                }
                .expect("request must complete with typed frames");
                match resp.code {
                    200 => {
                        assert_eq!(
                            resp.body, *reference,
                            "response under memory pressure diverged from serial oracle"
                        );
                        oks.fetch_add(1, Ordering::SeqCst);
                    }
                    429 => {
                        let reason = resp.reason.as_deref().unwrap_or("");
                        assert!(
                            reason == "memory" || reason == "queue_full",
                            "untyped shed: {reason:?}"
                        );
                        assert!(resp.body.is_empty(), "shed frames carry no body");
                        if reason == "memory" {
                            memory_sheds.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    408 => assert!(resp.body.is_empty()),
                    other => panic!("unexpected status {other}: {:?}", resp.reason),
                }
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    assert!(
        oks.load(Ordering::SeqCst) > 0,
        "streamed requests must complete under an 8x-undersized budget"
    );
    assert!(
        memory_sheds.load(Ordering::SeqCst) > 0,
        "materialized wildcard bodies larger than the budget must shed typed"
    );
    // The ledger never over-committed, and the corpus was demonstrably
    // served from disk rather than resident.
    let peak = scrape_counter(&addr, "mem_peak_bytes");
    assert!(
        peak <= BUDGET as u64,
        "tracked peak {peak} exceeded the {BUDGET}-byte budget"
    );
    assert!(
        scrape_counter(&addr, "mem_corpus_stream_fallbacks") > 0,
        "an 8x-oversized corpus must fall back to disk streaming"
    );
    assert_eq!(scrape_counter(&addr, "mem_budget_bytes"), BUDGET as u64);
    // RSS tripwire (not a tracked-memory assertion): if buffering were
    // quietly unbounded, 24 concurrent ~5 MB responses would blow far
    // past this. Generous headroom for allocator slack and test harness.
    #[cfg(target_os = "linux")]
    {
        let rss = peak_rss_bytes();
        assert!(
            rss < 768 * 1024 * 1024,
            "peak RSS {rss} suggests unbounded buffering"
        );
    }
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-tenant budget shares: the tenant pushing oversized request bodies
/// sheds with typed `429 memory`; other tenants' requests proceed.
#[test]
fn tenant_share_sheds_only_the_hog() {
    let config = ServeConfig {
        memory_budget: 16 * 1024 * 1024,
        tenant_memory_budget: 64 * 1024,
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let big = ndjson(3000); // ~300 KB body, far over the 64 KB share
    let small = ndjson(50);
    let mut hog = Client::connect_tcp(&addr).unwrap();
    let resp = hog.query("hog", "hog", QUERY, None, &big).unwrap();
    assert_eq!(resp.code, 429, "{:?}", resp.reason);
    assert_eq!(resp.reason.as_deref(), Some("memory"));
    let mut other = Client::connect_tcp(&addr).unwrap();
    let resp = other.query("ok", "polite", QUERY, None, &small).unwrap();
    assert_eq!(resp.code, 200, "{:?}", resp.reason);
    assert_eq!(resp.body, serial_reference(QUERY, &small));
    assert!(scrape_counter(&addr, "mem_denied_tenant") >= 1);
    assert_eq!(scrape_counter(&addr, "mem_denied_global"), 0);
    token.cancel();
    handle.join().unwrap().unwrap();
}

/// The ladder's first rung: under pressure the server evicts compiled
/// queries and resident corpora/indexes *before* shedding, and the
/// request that triggered the eviction succeeds.
#[test]
fn pressure_evicts_residents_before_shedding() {
    let dir = scratch("evict");
    let small_corpus = ndjson(600); // ~60 KB resident once queried
    std::fs::write(dir.join("corpora/small.ndjson"), &small_corpus).unwrap();
    let config = ServeConfig {
        corpus_dir: Some(dir.join("corpora")),
        memory_budget: 256 * 1024,
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    // Park the corpus (and a few compiled queries) in resident memory.
    let mut c = Client::connect_tcp(&addr).unwrap();
    let warm = c
        .query_corpus("w", "t", QUERY, "small.ndjson", None)
        .unwrap();
    assert_eq!(warm.code, 200, "{:?}", warm.reason);
    for q in ["$.id", "$.pad", "$..price"] {
        assert_eq!(c.query("q", "t", q, None, &ndjson(5)).unwrap().code, 200);
    }
    assert!(scrape_counter(&addr, "mem_used_bytes") > 0);
    // A request whose body needs most of the budget: admitting it
    // requires evicting the residents — and then it must succeed. The
    // query is low-fanout so body + response still fit post-eviction.
    let big_body = ndjson(2100); // ~210 KB of a 256 KB budget
    let resp = c.query("big", "t", "$.id", None, &big_body).unwrap();
    assert_eq!(resp.code, 200, "{:?}", resp.reason);
    assert_eq!(resp.body, serial_reference("$.id", &big_body));
    assert!(
        scrape_counter(&addr, "mem_evictions") >= 1,
        "relief must evict residents, not shed"
    );
    // The evicted corpus still answers exactly (reloaded from disk).
    let again = c
        .query_corpus("a", "t", QUERY, "small.ndjson", None)
        .unwrap();
    assert_eq!(again.code, 200, "{:?}", again.reason);
    assert_eq!(again.body, warm.body);
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `mem_*` gauge schema is stable in both scrape renderings, and an
/// unlimited budget still tracks usage.
#[test]
fn mem_gauges_have_a_stable_schema() {
    let config = ServeConfig {
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let mut c = Client::connect_tcp(&addr).unwrap();
    assert_eq!(
        c.query("q", "t", QUERY, None, &ndjson(20)).unwrap().code,
        200
    );
    let text = String::from_utf8(c.metrics(false).unwrap().body).unwrap();
    for key in [
        "mem_budget_bytes",
        "mem_tenant_cap_bytes",
        "mem_used_bytes",
        "mem_peak_bytes",
        "mem_denied_global",
        "mem_denied_tenant",
        "mem_evictions",
        "mem_forced_streams",
        "mem_corpus_stream_fallbacks",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(&format!("{key} "))),
            "{key} missing from text scrape:\n{text}"
        );
    }
    // Budget 0 = unlimited, but the ledger still measures.
    assert!(
        scrape_counter(&addr, "mem_peak_bytes") > 0,
        "an unlimited budget must still track peak usage"
    );
    let json = String::from_utf8(c.metrics(true).unwrap().body).unwrap();
    assert!(
        json.contains("\"memory\": {\"mem_budget_bytes\": 0"),
        "memory section missing from JSON scrape:\n{json}"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
}

/// `index_warm` builds every stored corpus's index before the first
/// request: the very first corpus query is answered from the index
/// (`index_hit` moves with no prior misses for that corpus).
#[test]
fn index_warm_makes_the_first_query_hit() {
    let dir = scratch("warm");
    std::fs::write(dir.join("corpora/a.ndjson"), ndjson(200)).unwrap();
    std::fs::write(dir.join("corpora/b.ndjson"), ndjson(300)).unwrap();
    let config = ServeConfig {
        corpus_dir: Some(dir.join("corpora")),
        index_warm: true,
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let corpus_a = std::fs::read(dir.join("corpora/a.ndjson")).unwrap();
    let mut c = Client::connect_tcp(&addr).unwrap();
    let resp = c.query_corpus("w", "t", QUERY, "a.ndjson", None).unwrap();
    assert_eq!(resp.code, 200, "{:?}", resp.reason);
    assert_eq!(resp.body, serial_reference(QUERY, &corpus_a));
    assert!(
        scrape_counter(&addr, "index_hit") >= 1,
        "warmed index must serve the first query"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
