//! End-to-end behavior of the daemon over real sockets: correct results,
//! typed shedding, deadlines, quotas, the metrics scrape, the query
//! cache, and graceful drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jsonski::JsonSki;
use jsonski_serve::{Client, ServeConfig, Server};

/// Starts a server on an ephemeral port; returns (addr, shutdown, join).
fn start(
    config: ServeConfig,
) -> (
    String,
    jsonski::CancellationToken,
    std::thread::JoinHandle<std::io::Result<jsonski_serve::ServeSummary>>,
) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    (addr, token, handle)
}

/// The serial one-shot reference: what a `jsonski run` of the same query
/// over the same body would produce, one match per line.
fn serial_reference(query: &str, body: &[u8]) -> Vec<u8> {
    let engine = JsonSki::compile(query).unwrap();
    let mut out = Vec::new();
    for record in body.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
        for m in engine.matches(record).unwrap() {
            out.extend_from_slice(m.as_raw());
            out.push(b'\n');
        }
    }
    out
}

fn ndjson(n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend_from_slice(
            format!(
                "{{\"id\": {i}, \"items\": [{{\"price\": {}}}, {{\"price\": {}}}]}}\n",
                i * 2,
                i * 2 + 1
            )
            .as_bytes(),
        );
    }
    out
}

#[test]
fn query_response_is_byte_identical_to_serial_run() {
    let (addr, token, handle) = start(ServeConfig::default());
    let body = ndjson(50);
    let mut client = Client::connect_tcp(&addr).unwrap();
    for query in [
        "$.items[*].price",
        "$.id",
        "$..price",
        "$.items[?(@.price > 50)]",
    ] {
        let resp = client.query("q", "t", query, None, &body).unwrap();
        assert!(resp.is_ok(), "{query}: {:?}", resp.reason);
        assert_eq!(
            resp.body,
            serial_reference(query, &body),
            "{query}: served body diverges from serial one-shot run"
        );
        assert_eq!(resp.records, 50);
        assert_eq!(
            resp.matches as usize,
            resp.body
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .count()
        );
    }
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn ping_and_bad_requests() {
    let (addr, token, handle) = start(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(pong.code, 200);
    assert_eq!(pong.reason.as_deref(), Some("pong"));
    // Unparseable query → 400 with a reason, connection still usable.
    let resp = client.query("q", "t", "$.[", None, b"{}\n").unwrap();
    assert_eq!(resp.code, 400);
    assert!(resp.reason.unwrap().contains("parse"));
    // Malformed header → 400.
    let resp = client.request_raw(b"not json\n").unwrap();
    assert_eq!(resp.code, 400);
    // Still healthy afterwards.
    assert!(client.ping().unwrap().is_ok());
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn eval_failure_is_typed_and_carries_no_partial_output() {
    let (addr, token, handle) = start(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    // Second record is malformed; FailFast (the default) must report 422
    // and discard the matches staged from the first record.
    let body = b"{\"a\": [1]}\n{\"a\": [2}\n{\"a\": [3]}\n";
    let resp = client.query("q", "t", "$.a[*]", None, body).unwrap();
    assert_eq!(resp.code, 422, "{:?}", resp.reason);
    assert!(
        resp.body.is_empty(),
        "non-ok response must carry no partial output"
    );
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn skip_malformed_policy_skips_and_counts() {
    let config = ServeConfig {
        error_policy: jsonski::ErrorPolicy::SkipMalformed,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let body = b"{\"a\": [1]}\n{\"a\": [2}\n{\"a\": [3]}\n";
    let resp = client.query("q", "t", "$.a[*]", None, body).unwrap();
    assert!(resp.is_ok(), "{:?}", resp.reason);
    assert_eq!(resp.body, b"1\n3\n");
    assert_eq!(resp.skipped, 1);
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn deadline_produces_typed_timeout() {
    let (addr, token, handle) = start(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // A deadline of 0 ms expires before evaluation can finish; the
    // pipeline observes the cancelled token at a record boundary.
    let body = ndjson(2000);
    let resp = client
        .query("q", "t", "$.items[*].price", Some(0), &body)
        .unwrap();
    assert_eq!(resp.code, 408, "{:?}", resp.reason);
    assert!(
        resp.body.is_empty(),
        "timed-out response must carry no partial output"
    );
    assert_eq!(resp.reason.as_deref(), Some("deadline exceeded"));
    // The server survives and still answers.
    let resp = client
        .query("q", "t", "$.id", None, b"{\"id\": 1}\n")
        .unwrap();
    assert!(resp.is_ok());
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn overload_sheds_with_typed_reason_and_never_hangs() {
    // One worker, a queue of 2, and requests that hold the worker: the
    // third+ concurrent request must shed immediately with queue_full.
    let config = ServeConfig {
        workers: 1,
        max_queue: 2,
        tenant_quota: 64,
        default_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let body = Arc::new(ndjson(8000));
    let sheds = Arc::new(AtomicUsize::new(0));
    let oks = Arc::new(AtomicUsize::new(0));
    let mut clients = Vec::new();
    for i in 0..8 {
        let addr = addr.clone();
        let body = Arc::clone(&body);
        let sheds = Arc::clone(&sheds);
        let oks = Arc::clone(&oks);
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect_tcp(&addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let resp = c
                .query(&format!("r{i}"), "t", "$.items[*].price", None, &body)
                .unwrap();
            match resp.code {
                200 => {
                    oks.fetch_add(1, Ordering::SeqCst);
                }
                429 => {
                    assert_eq!(resp.reason.as_deref(), Some("queue_full"));
                    assert!(resp.body.is_empty());
                    sheds.fetch_add(1, Ordering::SeqCst);
                }
                408 => {} // deadline while queued also counts as not-hanging
                other => panic!("unexpected code {other}"),
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    assert!(
        sheds.load(Ordering::SeqCst) > 0,
        "2x saturation load must shed"
    );
    assert!(
        oks.load(Ordering::SeqCst) > 0,
        "admitted requests must complete"
    );
    token.cancel();
    let summary = handle.join().unwrap().unwrap();
    assert!(summary.shed > 0);
}

#[test]
fn tenant_quota_sheds_only_the_greedy_tenant() {
    let config = ServeConfig {
        workers: 1,
        max_queue: 64,
        tenant_quota: 1,
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    // Deterministic permit hold: tenant "greedy" sends a request whose
    // response is far larger than any socket buffer, then does not read
    // it. The server's single `write_all` blocks on the full client
    // socket, and since the tenant slot is held until the response write
    // finishes, greedy provably stays at quota — no timing assumptions.
    let body = Arc::new(ndjson(120_000)); // ~9 MiB request; `$..*` response is ~2x larger
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let holder = {
        use jsonski_serve::{encode_frame, encode_request, parse_response, read_frame, Op};
        let addr = addr.clone();
        let body = Arc::clone(&body);
        std::thread::spawn(move || {
            use std::io::Write as _;
            let mut s = std::net::TcpStream::connect(&addr).unwrap();
            let payload = encode_request(
                Op::Query,
                "hold",
                "greedy",
                "$..*",
                Some(60_000),
                false,
                &body,
            );
            s.write_all(&encode_frame(&payload)).unwrap();
            // Leave the response unread until the main thread says so.
            release_rx.recv().unwrap();
            let frame = read_frame(&mut s, 256 * 1024 * 1024).unwrap().unwrap();
            parse_response(&frame).unwrap()
        })
    };
    // Poll until greedy's second request sheds on tenant quota (it may
    // briefly see 200 before the holder's frame is admitted).
    let mut c = Client::connect_tcp(&addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let shed = loop {
        let resp = c
            .query("again", "greedy", "$.id", Some(60_000), b"{\"id\": 1}\n")
            .unwrap();
        if resp.code == 429 {
            break resp;
        }
        assert!(resp.is_ok(), "{:?}", (resp.code, resp.reason));
        assert!(
            std::time::Instant::now() < deadline,
            "greedy tenant never hit its quota"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(shed.reason.as_deref(), Some("tenant_quota"));
    // A different tenant is unaffected even while greedy is pinned.
    let resp = c
        .query("other", "polite", "$.id", Some(60_000), b"{\"id\": 1}\n")
        .unwrap();
    assert!(resp.is_ok(), "{:?}", (resp.code, resp.reason));
    // Let the holder drain its response; it must be complete and correct.
    release_tx.send(()).unwrap();
    let held = holder.join().unwrap();
    assert!(held.is_ok(), "{:?}", (held.code, held.reason));
    assert_eq!(held.body, serial_reference("$..*", &body));
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn metrics_scrape_requires_opt_in_and_reports_counters() {
    // Disabled by default.
    let (addr, token, handle) = start(ServeConfig::default());
    let mut client = Client::connect_tcp(&addr).unwrap();
    let resp = client.metrics(false).unwrap();
    assert_eq!(resp.code, 400);
    token.cancel();
    handle.join().unwrap().unwrap();

    // Enabled: text scrape carries serve counters, cache counters, and
    // the engine registry.
    let config = ServeConfig {
        metrics_endpoint: true,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let body = ndjson(10);
    for _ in 0..3 {
        assert!(client.query("q", "t", "$.id", None, &body).unwrap().is_ok());
    }
    let resp = client.metrics(false).unwrap();
    assert!(resp.is_ok());
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("serve_requests"), "scrape:\n{text}");
    assert!(text.contains("serve_ok 3"), "scrape:\n{text}");
    assert!(text.contains("cache_hits 2"), "scrape:\n{text}");
    assert!(text.contains("cache_misses 1"), "scrape:\n{text}");
    // Engine-side registry rides along (records flowed through it).
    assert!(text.contains("records"), "scrape:\n{text}");

    let resp = client.metrics(true).unwrap();
    let json = String::from_utf8(resp.body).unwrap();
    assert!(json.contains("\"serve\""), "json scrape:\n{json}");
    assert!(json.contains("\"cache\""), "json scrape:\n{json}");
    assert!(json.contains("\"engine\""), "json scrape:\n{json}");
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[test]
fn drain_rejects_new_requests_but_finishes_in_flight() {
    let config = ServeConfig {
        workers: 2,
        default_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let body = Arc::new(ndjson(20000));
    let reference = serial_reference("$.items[*].price", &body);
    // Launch an in-flight request, then immediately drain.
    let inflight = {
        let addr = addr.clone();
        let body = Arc::clone(&body);
        std::thread::spawn(move || {
            let mut c = Client::connect_tcp(&addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            c.query("inflight", "t", "$.items[*].price", None, &body)
                .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    token.cancel();
    // The in-flight request completes with full, correct output.
    let resp = inflight.join().unwrap();
    assert!(resp.is_ok(), "{:?}", (resp.code, resp.reason));
    assert_eq!(
        resp.body, reference,
        "drained request must deliver complete output"
    );
    handle.join().unwrap().unwrap();
    // After drain the listener is gone.
    assert!(
        Client::connect_tcp(&addr).is_err() || {
            // Accept raced: a connect may succeed before the OS reaps the
            // socket, but no frame will ever be answered.
            true
        }
    );
}

#[test]
fn cached_and_uncached_queries_agree() {
    let config = ServeConfig {
        cache_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, token, handle) = start(config);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let body = ndjson(25);
    // Alternate two queries through a 1-entry cache: every request is a
    // miss+evict except repeats; outputs must stay identical either way.
    for _ in 0..3 {
        for query in ["$.items[*].price", "$.id"] {
            let resp = client.query("q", "t", query, None, &body).unwrap();
            assert!(resp.is_ok());
            assert_eq!(resp.body, serial_reference(query, &body));
        }
    }
    token.cancel();
    handle.join().unwrap().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let dir = std::env::temp_dir().join(format!("jsonski-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");
    let path_str = path.to_str().unwrap().to_string();
    let server = Server::bind_unix(&path_str, ServeConfig::default()).expect("bind unix");
    let token = server.shutdown_token();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect_unix(&path_str).unwrap();
    let body = ndjson(5);
    let resp = client.query("q", "t", "$.id", None, &body).unwrap();
    assert!(resp.is_ok());
    assert_eq!(resp.body, serial_reference("$.id", &body));
    token.cancel();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
